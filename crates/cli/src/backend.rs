//! Loading a checkpoint file back into a serving backend.
//!
//! The CLI auto-detects what a `.pfes` file holds by peeking the frame
//! header: a whole-stream snapshot resumes into an [`Engine`], a window
//! ring resumes into a [`pfe_window::WindowedEngine`]. Either way the
//! engine flags on the command line must match the ones the checkpoint
//! was built with — resume verifies them against the stored summaries.

use std::sync::Arc;

use pfe_engine::{Engine, EngineConfig, Recorder};
use pfe_server::proto::Backend;
use pfe_window::WindowedEngine;

/// Resume `path` into whichever backend kind it holds, returning the
/// backend and the stream's alphabet `Q` (needed to decode patterns in
/// answers).
pub fn resume_backend(
    path: &str,
    cfg: EngineConfig,
    recorder: Arc<Recorder>,
) -> Result<(Backend, u32), String> {
    let kind = pfe_persist::peek_kind(path).map_err(|e| format!("{path}: {e}"))?;
    match kind {
        pfe_persist::kind::SNAPSHOT => {
            let engine = Engine::resume_with_recorder(path, cfg, recorder)
                .map_err(|e| format!("{path}: {e}"))?;
            let q = engine
                .snapshot()
                .expect("resume publishes a snapshot")
                .sample()
                .alphabet();
            Ok((Backend::Plain(engine), q))
        }
        pfe_persist::kind::WINDOW => {
            let engine = WindowedEngine::resume_with_recorder(path, cfg, recorder)
                .map_err(|e| format!("{path}: {e}"))?;
            let q = engine.alphabet();
            Ok((Backend::Windowed(engine), q))
        }
        other => Err(format!(
            "{path}: checkpoint kind {other} is not servable (want a snapshot or window ring)"
        )),
    }
}
