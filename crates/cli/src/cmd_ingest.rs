//! `pfe ingest` and `pfe resume` — bulk-load a file into an engine and
//! checkpoint the result.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pfe_engine::{Engine, Json, Recorder};
use pfe_ingest::{FileIngester, IngestError, IngestReport};
use pfe_server::proto::Backend;
use pfe_window::WindowedEngine;

use crate::args::{engine_config, ingest_options, window_config, Args};
use crate::backend::resume_backend;

/// A once-a-second progress line on stderr, fed by the same recorder
/// counters the ingester reports into. Silent under `--quiet`.
struct Progress {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Progress {
    fn start(recorder: &Arc<Recorder>, quiet: bool) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        if quiet {
            return Self { stop, handle: None };
        }
        let rows = recorder.counter("ingest_rows");
        let bytes = recorder.counter("ingest_bytes");
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = std::time::Instant::now();
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(1000));
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                let secs = started.elapsed().as_secs_f64();
                eprintln!(
                    "ingest: {} rows, {:.1} MiB ({:.0} rows/s)",
                    rows.get(),
                    bytes.get() as f64 / (1024.0 * 1024.0),
                    rows.get() as f64 / secs.max(1e-9),
                );
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for Progress {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.join().ok();
        }
    }
}

fn report_json(file: &str, report: &IngestReport, out: Option<&str>) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("file", Json::Str(file.to_string())),
        ("rows", Json::Num(report.rows as f64)),
        ("bytes", Json::Num(report.bytes as f64)),
        ("chunks", Json::Num(report.chunks as f64)),
        ("rejected", Json::Num(report.rejected as f64)),
        ("elapsed_ms", Json::Num(report.elapsed.as_secs_f64() * 1e3)),
        ("rows_per_sec", Json::Num(report.rows_per_sec())),
        ("mb_per_sec", Json::Num(report.mb_per_sec())),
        ("d", Json::Num(report.schema.dimension() as f64)),
        ("q", Json::Num(report.schema.alphabet as f64)),
        (
            "columns",
            Json::Arr(
                report
                    .schema
                    .columns
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect(),
            ),
        ),
        (
            "out",
            out.map(|o| Json::Str(o.to_string())).unwrap_or(Json::Null),
        ),
    ])
}

/// `pfe ingest FILE [--out SNAP]`: columnar-ingest the file into a
/// fresh engine (whole-stream, or sliding-window with `--window`),
/// optionally checkpoint it, and print the throughput report.
pub fn ingest(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [file] = pos[..] else {
        return Err("usage: pfe ingest FILE [--out SNAP] [file-shape flags] [engine flags]".into());
    };
    let ecfg = engine_config(args)?;
    let opts = ingest_options(args)?;
    let wcfg = window_config(args)?;
    let out = args.value("--out");
    let recorder = Arc::new(Recorder::new());
    let trace = recorder.begin_trace(None);
    let root = trace.span("cmd:ingest");
    let ingester = FileIngester::with_recorder(opts, &recorder).with_trace(root.handle());
    let progress = Progress::start(&recorder, args.present("--quiet"));

    let (backend, report) = if let Some(wcfg) = wcfg {
        let ecfg = ecfg.clone();
        let rec = Arc::clone(&recorder);
        let (engine, report) = ingester
            .ingest_path_with(file, move |schema| {
                WindowedEngine::start_with_recorder(
                    schema.dimension(),
                    schema.alphabet,
                    ecfg,
                    wcfg,
                    rec,
                )
                .map_err(|e| IngestError::Sink(e.to_string()))
            })
            .map_err(|e| e.to_string())?;
        (Backend::Windowed(engine), report)
    } else {
        let ecfg = ecfg.clone();
        let rec = Arc::clone(&recorder);
        let (engine, report) = ingester
            .ingest_path_with(file, move |schema| {
                Engine::start_with_recorder(schema.dimension(), schema.alphabet, ecfg, rec)
                    .map_err(|e| IngestError::Sink(e.to_string()))
            })
            .map_err(|e| e.to_string())?;
        (Backend::Plain(engine), report)
    };
    drop(progress);
    drop(root);
    recorder.trace_store().finish(trace);

    if let Some(out) = out {
        backend
            .checkpoint(Path::new(out))
            .map_err(|e| format!("checkpoint {out}: {e}"))?;
    }
    if let Backend::Plain(e) = &backend {
        e.shutdown().ok();
    }
    println!("{}", report_json(file, &report, out));
    Ok(0)
}

/// `pfe resume SNAP --ingest FILE [--out NEW]`: reopen a checkpoint,
/// ingest more rows from a file, and checkpoint again (over the same
/// path unless `--out` says otherwise). Engine flags must repeat the
/// values the checkpoint was built with.
pub fn resume(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [snap] = pos[..] else {
        return Err("usage: pfe resume SNAP --ingest FILE [--out NEW] [engine flags]".into());
    };
    let file = args
        .value("--ingest")
        .ok_or("usage: pfe resume SNAP --ingest FILE [--out NEW]")?;
    let ecfg = engine_config(args)?;
    let recorder = Arc::new(Recorder::new());
    let (backend, q) = resume_backend(snap, ecfg, Arc::clone(&recorder))?;

    let mut opts = ingest_options(args)?;
    // The checkpoint fixes the alphabet; the flag may only agree.
    if let Some(flag_q) = args.parse::<u32>("--q")? {
        if flag_q != q {
            return Err(format!(
                "--q {flag_q} disagrees with the checkpoint's q={q}"
            ));
        }
    }
    opts.alphabet = q;

    let trace = recorder.begin_trace(None);
    let root = trace.span("cmd:resume");
    let ingester = FileIngester::with_recorder(opts, &recorder).with_trace(root.handle());
    let progress = Progress::start(&recorder, args.present("--quiet"));
    let report = match &backend {
        Backend::Plain(e) => ingester.ingest_into(file, e).map(|(_, r)| r),
        Backend::Windowed(e) => ingester.ingest_into(file, e).map(|(_, r)| r),
    }
    .map_err(|e| e.to_string())?;
    drop(progress);
    drop(root);
    recorder.trace_store().finish(trace);

    let out = args.value("--out").unwrap_or(snap);
    backend
        .checkpoint(Path::new(out))
        .map_err(|e| format!("checkpoint {out}: {e}"))?;
    if let Backend::Plain(e) = &backend {
        e.shutdown().ok();
    }
    println!("{}", report_json(file, &report, Some(out)));
    Ok(0)
}
