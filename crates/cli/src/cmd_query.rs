//! `pfe query` and `pfe stats` — answer statistics against a checkpoint.
//!
//! Requests are the wire protocol's query objects (`docs/PROTOCOL.md`):
//! built from flags for the common case, or passed raw via `--json` /
//! `--batch FILE` for full control. Answers print one JSON object per
//! line in request order, exactly as the server would send them.

use std::collections::BTreeMap;
use std::sync::Arc;

use pfe_engine::wire::{answer_to_json, query_from_json, stats_to_json};
use pfe_engine::{Json, Query, Recorder};

use crate::args::{engine_config, Args};
use crate::backend::resume_backend;

/// Build one wire-protocol query object from the `--op`-style flags.
fn query_json_from_flags(args: &Args) -> Result<Json, String> {
    let op = args.value("--op").ok_or(
        "usage: pfe query SNAP --op f0|frequency|heavy_hitters|l1_sample|fp --cols 0,1,2 \
         [--pattern ..] [--phi ..] [--k ..] [--p ..] | --json '{..}' | --batch FILE",
    )?;
    let mut obj: BTreeMap<String, Json> = BTreeMap::new();
    obj.insert("op".into(), Json::Str(op.to_string()));
    if let Some(cols) = args.value("--cols") {
        let nums: Result<Vec<Json>, String> = cols
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<u32>()
                    .map(|v| Json::Num(v as f64))
                    .map_err(|_| format!("--cols: cannot parse {c:?}"))
            })
            .collect();
        obj.insert("cols".into(), Json::Arr(nums?));
    }
    if let Some(pat) = args.value("--pattern") {
        let nums: Result<Vec<Json>, String> = pat
            .split(',')
            .map(|c| {
                c.trim()
                    .parse::<u16>()
                    .map(|v| Json::Num(v as f64))
                    .map_err(|_| format!("--pattern: cannot parse {c:?}"))
            })
            .collect();
        obj.insert("pattern".into(), Json::Arr(nums?));
    }
    if let Some(phi) = args.parse::<f64>("--phi")? {
        obj.insert("phi".into(), Json::Num(phi));
    }
    if let Some(k) = args.parse::<u64>("--k")? {
        obj.insert("k".into(), Json::Num(k as f64));
    }
    if let Some(p) = args.parse::<f64>("--p")? {
        obj.insert("p".into(), Json::Num(p));
    }
    if let Some(seed) = args.parse::<u64>("--sample-seed")? {
        obj.insert("seed".into(), Json::Num(seed as f64));
    }
    if let Some(w) = args.parse::<u64>("--window")? {
        obj.insert("window".into(), Json::Num(w as f64));
    }
    if args.present("--exact") {
        obj.insert("exact".into(), Json::Bool(true));
    }
    if args.present("--bypass-cache") {
        obj.insert("bypass_cache".into(), Json::Bool(true));
    }
    Ok(Json::Obj(obj))
}

fn requests(args: &Args) -> Result<Vec<Json>, String> {
    if let Some(raw) = args.value("--json") {
        return Ok(vec![Json::parse(raw).map_err(|e| format!("--json: {e}"))?]);
    }
    if let Some(path) = args.value("--batch") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("--batch {path}: {e}"))?;
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            out.push(Json::parse(line).map_err(|e| format!("--batch {path} line {}: {e}", i + 1))?);
        }
        if out.is_empty() {
            return Err(format!("--batch {path}: no requests"));
        }
        return Ok(out);
    }
    Ok(vec![query_json_from_flags(args)?])
}

/// `pfe query SNAP ...`: parse requests, resume the checkpoint, answer
/// in order. Exit 1 if any individual answer failed.
pub fn query(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [snap] = pos[..] else {
        return Err("usage: pfe query SNAP --op OP --cols 0,1,2 [...]".into());
    };
    let reqs = requests(args)?;
    let queries: Vec<Query> = reqs
        .iter()
        .map(query_from_json)
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad query: {e}"))?;
    let ecfg = engine_config(args)?;
    let recorder = Arc::new(Recorder::new());
    let (backend, q) = resume_backend(snap, ecfg, Arc::clone(&recorder))?;
    let trace = recorder.begin_trace(None);
    let root = trace.span("cmd:query");
    let stage = root.handle();
    let results = backend.query_batch_traced(&queries, &stage);
    drop(root);
    recorder.trace_store().finish(trace);
    let mut code = 0;
    for result in results {
        match result {
            Ok(answer) => println!("{}", answer_to_json(&answer, q)),
            Err(e) => {
                println!(
                    "{}",
                    Json::obj([
                        ("ok", Json::Bool(false)),
                        ("error", Json::Str(e.to_string())),
                    ])
                );
                code = 1;
            }
        }
    }
    Ok(code)
}

/// `pfe stats SNAP`: the engine-counter object for a checkpoint, same
/// schema as the server's `stats` op.
pub fn stats(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [snap] = pos[..] else {
        return Err("usage: pfe stats SNAP [engine flags]".into());
    };
    let ecfg = engine_config(args)?;
    let (backend, _) = resume_backend(snap, ecfg, Arc::new(Recorder::new()))?;
    println!("{}", stats_to_json(&backend.stats()));
    Ok(0)
}
