//! `pfe verify` — prove, on a concrete file, that the columnar file
//! path and the Rust batch API produce bit-identical answers.
//!
//! Side A ingests the file through [`pfe_ingest::FileIngester`]; side B
//! re-reads it with an independent `String`-based parser and pushes the
//! rows through `push_packed_batch` / `push_dense_batch`. A probe
//! battery covering every statistic must agree exactly — value *and*
//! guarantee — or the command exits 1. `scripts/guide_smoke.sh` runs
//! this against generated data on every CI pass.

use std::io::BufRead;

use pfe_engine::{Engine, Json, Query};
use pfe_ingest::{FileIngester, IngestError, IngestOptions};

use crate::args::{engine_config, ingest_options, Args};
use crate::cmd_bench::delim_for;

/// Independent reference parse: `String` splitting, quote stripping,
/// `str::parse` — nothing shared with the byte-level columnar parser.
fn naive_rows(path: &str, opts: &IngestOptions) -> Result<Vec<Vec<u16>>, String> {
    let delim = delim_for(opts, path);
    let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    let mut rows = Vec::new();
    let mut skip_header = opts.has_header;
    for line in std::io::BufReader::new(file).lines() {
        let line = line.map_err(|e| format!("{path}: {e}"))?;
        if skip_header {
            skip_header = false;
            continue;
        }
        let line = line.strip_suffix('\r').unwrap_or(&line);
        let row: Result<Vec<u16>, String> = line
            .split(delim)
            .map(|f| {
                let f = f
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or(f);
                f.parse::<u16>().map_err(|_| format!("bad field {f:?}"))
            })
            .collect();
        rows.push(row?);
    }
    Ok(rows)
}

/// One probe of each statistic, shaped to the stream's dimension.
fn battery(d: u32) -> Vec<Query> {
    let lead: Vec<u32> = (0..d.min(6)).collect();
    let mut probes = vec![
        Query::over(lead.clone()).f0(),
        Query::over([0]).f0(),
        Query::over((0..d.min(2)).collect::<Vec<_>>()).frequency(vec![1; d.min(2) as usize]),
        Query::over((0..d.min(3)).collect::<Vec<_>>()).heavy_hitters(0.05),
        Query::over(lead).l1_sample(8),
    ];
    if d >= 4 {
        probes.push(Query::over([1, 3]).f0());
    }
    probes
}

/// `pfe verify FILE [file-shape flags] [engine flags]`.
pub fn verify(args: &Args) -> Result<i32, String> {
    let pos = args.positionals();
    let [file] = pos[..] else {
        return Err("usage: pfe verify FILE [file-shape flags] [engine flags]".into());
    };
    let ecfg = engine_config(args)?;
    let opts = ingest_options(args)?;

    // Side A: the file, through the chunked columnar ingester.
    let factory_cfg = ecfg.clone();
    let (engine_a, report) = FileIngester::new(opts.clone())
        .ingest_path_with(file, move |schema| {
            Engine::start(schema.dimension(), schema.alphabet, factory_cfg)
                .map_err(|e| IngestError::Sink(e.to_string()))
        })
        .map_err(|e| e.to_string())?;
    if report.rejected > 0 {
        return Err(format!(
            "verify needs a clean file: {} rows were rejected",
            report.rejected
        ));
    }

    // Side B: an independent parse, pushed through the batch API.
    let rows = naive_rows(file, &opts)?;
    if rows.len() as u64 != report.rows {
        return Err(format!(
            "row-count disagreement: columnar read {}, reference read {}",
            report.rows,
            rows.len()
        ));
    }
    let (d, q) = (report.schema.dimension(), report.schema.alphabet);
    let engine_b = Engine::start(d, q, ecfg).map_err(|e| e.to_string())?;
    if report.schema.packed() {
        let packed: Vec<u64> = rows
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .fold(0u64, |acc, (i, &v)| acc | ((v as u64) << i))
            })
            .collect();
        engine_b
            .push_packed_batch(&packed)
            .map_err(|e| e.to_string())?;
    } else {
        let flat: Vec<u16> = rows.concat();
        engine_b
            .push_dense_batch(&flat)
            .map_err(|e| e.to_string())?;
    }

    engine_a.refresh().map_err(|e| e.to_string())?;
    engine_b.refresh().map_err(|e| e.to_string())?;
    let probes = battery(d);
    for probe in &probes {
        let a = engine_a.query(probe).map_err(|e| e.to_string())?;
        let b = engine_b.query(probe).map_err(|e| e.to_string())?;
        if a.value != b.value || a.guarantee != b.guarantee {
            println!(
                "{}",
                Json::obj([
                    ("ok", Json::Bool(false)),
                    ("mismatch", Json::Str(format!("{probe:?}"))),
                ])
            );
            return Ok(1);
        }
    }
    engine_a.shutdown().ok();
    engine_b.shutdown().ok();
    println!(
        "{}",
        Json::obj([
            ("ok", Json::Bool(true)),
            ("rows", Json::Num(report.rows as f64)),
            ("queries", Json::Num(probes.len() as f64)),
            ("packed", Json::Bool(report.schema.packed())),
        ])
    );
    Ok(0)
}
