//! `pfe checkpoint` — merge shard snapshots into one checkpoint.
//!
//! Each input must be a whole-stream snapshot over the same shape and
//! summary parameters (the merge validates this); the output answers
//! queries as if every input's rows had been ingested by one engine.

use pfe_engine::{merge_snapshot_files, Json};

use crate::args::Args;

/// `pfe checkpoint A B .. --out MERGED`.
pub fn merge(args: &Args) -> Result<i32, String> {
    let inputs = args.positionals();
    if inputs.is_empty() {
        return Err("usage: pfe checkpoint SNAP [SNAP..] --out MERGED".into());
    }
    let out = args
        .value("--out")
        .ok_or("usage: pfe checkpoint SNAP [SNAP..] --out MERGED")?;
    let snapshot = merge_snapshot_files(&inputs).map_err(|e| e.to_string())?;
    snapshot
        .save_to(out)
        .map_err(|e| format!("save {out}: {e}"))?;
    println!(
        "{}",
        Json::obj([
            ("ok", Json::Bool(true)),
            ("inputs", Json::Num(inputs.len() as f64)),
            ("rows", Json::Num(snapshot.n() as f64)),
            ("epoch", Json::Num(snapshot.epoch() as f64)),
            ("out", Json::Str(out.to_string())),
        ])
    );
    Ok(0)
}
