//! Hand-rolled flag parsing shared by every subcommand — the same
//! zero-dependency discipline as the rest of the workspace.

use pfe_engine::{EngineConfig, FpConfig};
use pfe_ingest::IngestOptions;
use pfe_window::WindowConfig;

/// Flags that take no value. Every other `--flag` consumes the next
/// argument as its value.
const BOOL_FLAGS: &[&str] = &[
    "--no-header",
    "--quiet",
    "--exact",
    "--bypass-cache",
    "--follow",
    "--watch",
    "--help",
    "-h",
];

/// One subcommand's argument list: `--flag value` pairs, boolean flags,
/// and positional operands, in any order.
pub struct Args {
    items: Vec<String>,
}

impl Args {
    /// Wrap a raw argument vector (everything after the subcommand).
    pub fn new(items: Vec<String>) -> Self {
        Self { items }
    }

    /// The value following `flag`, if present.
    pub fn value(&self, flag: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.items.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Every value of a repeatable `flag`, in order (`--replica-of A
    /// --replica-of B` → `["A", "B"]`).
    pub fn values(&self, flag: &str) -> Vec<&str> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == flag)
            .filter_map(|(i, _)| self.items.get(i + 1))
            .map(|s| s.as_str())
            .collect()
    }

    /// Whether `flag` appears at all.
    pub fn present(&self, flag: &str) -> bool {
        self.items.iter().any(|a| a == flag)
    }

    /// Parse `flag`'s value, reporting the flag name on failure.
    pub fn parse<T: std::str::FromStr>(&self, flag: &str) -> Result<Option<T>, String> {
        match self.value(flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("{flag}: cannot parse {v:?}")),
        }
    }

    /// Operands that are neither flags nor flag values, in order.
    pub fn positionals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.items.len() {
            let a = self.items[i].as_str();
            if a.starts_with('-') && a.len() > 1 {
                if !BOOL_FLAGS.contains(&a) {
                    i += 1; // skip the flag's value too
                }
            } else {
                out.push(a);
            }
            i += 1;
        }
        out
    }
}

/// Build an [`EngineConfig`] from the shared engine flags. The same
/// flags must be repeated verbatim when resuming a checkpoint — resume
/// verifies them against the stored summaries.
pub fn engine_config(args: &Args) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::default();
    if let Some(v) = args.parse("--shards")? {
        cfg.shards = v;
    }
    if let Some(v) = args.parse("--alpha")? {
        cfg.alpha = v;
    }
    if let Some(v) = args.parse("--kmv-k")? {
        cfg.kmv_k = v;
    }
    if let Some(v) = args.parse("--sample-t")? {
        cfg.sample_t = v;
    }
    if let Some(v) = args.parse("--seed")? {
        cfg.seed = v;
    }
    if let Some(v) = args.parse("--max-subsets")? {
        cfg.max_subsets = v;
    }
    if let Some(v) = args.parse("--batch-rows")? {
        cfg.batch_rows = v;
    }
    if let Some(v) = args.parse("--cache")? {
        cfg.cache_capacity = v;
    }
    if let Some(spec) = args.value("--fp") {
        let orders: Result<Vec<f64>, _> = spec.split(',').map(|s| s.trim().parse()).collect();
        let orders = orders.map_err(|_| format!("--fp: cannot parse {spec:?} as p orders"))?;
        cfg.fp = Some(FpConfig {
            orders,
            ..Default::default()
        });
    }
    Ok(cfg)
}

/// Build [`IngestOptions`] from the file-shape flags.
pub fn ingest_options(args: &Args) -> Result<IngestOptions, String> {
    let mut opts = IngestOptions::default();
    if let Some(v) = args.parse("--q")? {
        opts.alphabet = v;
    }
    if args.present("--no-header") {
        opts.has_header = false;
    }
    if let Some(cols) = args.value("--columns") {
        opts.columns = Some(cols.split(',').map(|c| c.trim().to_string()).collect());
    }
    if let Some(d) = args.value("--delim") {
        opts.delimiter = Some(match d {
            "tab" | "\\t" => b'\t',
            s if s.len() == 1 => s.as_bytes()[0],
            other => {
                return Err(format!(
                    "--delim: want a single character or 'tab', got {other:?}"
                ))
            }
        });
    }
    if let Some(v) = args.parse("--chunk-rows")? {
        opts.chunk_rows = v;
    }
    if let Some(v) = args.parse("--chunk-bytes")? {
        opts.chunk_bytes = v;
    }
    if let Some(v) = args.parse("--max-rejects")? {
        opts.max_rejects = v;
    }
    Ok(opts)
}

/// Parse `--window BUCKET_ROWS[,TIER_CAP[,MAX_TIERS]]` into a ring
/// shape, or `None` when the flag is absent (whole-stream engine).
pub fn window_config(args: &Args) -> Result<Option<WindowConfig>, String> {
    let Some(spec) = args.value("--window") else {
        return Ok(None);
    };
    let mut cfg = WindowConfig::default();
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.is_empty() || parts.len() > 3 {
        return Err(format!(
            "--window: want ROWS[,TIER_CAP[,MAX_TIERS]], got {spec:?}"
        ));
    }
    let nums: Result<Vec<u64>, _> = parts.iter().map(|p| p.trim().parse()).collect();
    let nums = nums.map_err(|_| format!("--window: cannot parse {spec:?}"))?;
    cfg.bucket_rows = nums[0];
    if let Some(&t) = nums.get(1) {
        cfg.tier_cap = t as usize;
    }
    if let Some(&m) = nums.get(2) {
        cfg.max_tiers = m as u32;
    }
    Ok(Some(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn flags_values_and_positionals() {
        let a = args(&["data.csv", "--out", "snap.pfes", "--no-header", "extra"]);
        assert_eq!(a.positionals(), vec!["data.csv", "extra"]);
        assert_eq!(a.value("--out"), Some("snap.pfes"));
        assert!(a.present("--no-header"));
        assert!(!a.present("--quiet"));
    }

    #[test]
    fn repeatable_flags_collect_in_order() {
        let a = args(&["--replica-of", "a", "--poll", "9", "--replica-of", "b"]);
        assert_eq!(a.values("--replica-of"), vec!["a", "b"]);
        assert!(a.values("--missing").is_empty());
    }

    #[test]
    fn engine_flags_map_onto_config() {
        let a = args(&[
            "--shards", "7", "--alpha", "0.5", "--seed", "9", "--fp", "2.0, 1.5",
        ]);
        let cfg = engine_config(&a).unwrap();
        assert_eq!(cfg.shards, 7);
        assert_eq!(cfg.alpha, 0.5);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.fp.unwrap().orders, vec![2.0, 1.5]);
        assert!(engine_config(&args(&["--shards", "x"])).is_err());
    }

    #[test]
    fn ingest_flags_map_onto_options() {
        let a = args(&[
            "--q",
            "10",
            "--no-header",
            "--delim",
            "tab",
            "--columns",
            "a, b",
        ]);
        let opts = ingest_options(&a).unwrap();
        assert_eq!(opts.alphabet, 10);
        assert!(!opts.has_header);
        assert_eq!(opts.delimiter, Some(b'\t'));
        assert_eq!(opts.columns, Some(vec!["a".to_string(), "b".to_string()]));
        assert!(ingest_options(&args(&["--delim", "ab"])).is_err());
    }

    #[test]
    fn window_spec_parses() {
        assert!(window_config(&args(&[])).unwrap().is_none());
        let w = window_config(&args(&["--window", "512,4,6"]))
            .unwrap()
            .unwrap();
        assert_eq!((w.bucket_rows, w.tier_cap, w.max_tiers), (512, 4, 6));
        let w = window_config(&args(&["--window", "2048"]))
            .unwrap()
            .unwrap();
        assert_eq!(w.bucket_rows, 2048);
        assert!(window_config(&args(&["--window", "a,b"])).is_err());
    }
}
