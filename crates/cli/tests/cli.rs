//! End-to-end tests for the `pfe` binary: every subcommand exercised
//! through a real process, on real files, asserting on stdout JSON and
//! exit codes.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use pfe_engine::Json;

fn pfe(dir: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_pfe"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("spawn pfe")
}

fn stdout_json(out: &Output) -> Json {
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().last().unwrap_or_else(|| {
        panic!(
            "no stdout; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    Json::parse(line).unwrap_or_else(|e| panic!("bad json {line:?}: {e}"))
}

fn assert_ok(out: &Output, what: &str) {
    assert!(
        out.status.success(),
        "{what} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfe-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// Deterministic binary CSV with a header.
fn write_csv(path: &Path, d: u32, n: usize, mut state: u64) {
    let mut text = (0..d)
        .map(|i| format!("c{i}"))
        .collect::<Vec<_>>()
        .join(",");
    text.push('\n');
    for _ in 0..n {
        state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb5);
        let row = (state >> 17) & ((1 << d) - 1);
        let line: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(path, text).expect("write csv");
}

#[test]
fn ingest_query_stats_roundtrip() {
    let dir = temp_dir("roundtrip");
    write_csv(&dir.join("rows.csv"), 10, 800, 0xabc);

    let out = pfe(
        &dir,
        &["ingest", "rows.csv", "--out", "rows.pfes", "--quiet"],
    );
    assert_ok(&out, "ingest");
    let report = stdout_json(&out);
    assert_eq!(report.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(report.get("rows").and_then(Json::as_f64), Some(800.0));
    assert_eq!(report.get("q").and_then(Json::as_f64), Some(2.0));
    assert_eq!(
        report
            .get("columns")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(10)
    );

    let out = pfe(
        &dir,
        &["query", "rows.pfes", "--op", "f0", "--cols", "0,1,2"],
    );
    assert_ok(&out, "query");
    let ans = stdout_json(&out);
    assert_eq!(ans.get("ok"), Some(&Json::Bool(true)));
    assert!(ans.get("estimate").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(ans.get("guarantee").is_some());

    // The other statistics answer through the same checkpoint.
    for extra in [
        vec!["--op", "frequency", "--cols", "0,1", "--pattern", "1,0"],
        vec!["--op", "heavy_hitters", "--cols", "0,1,2", "--phi", "0.05"],
        vec!["--op", "l1_sample", "--cols", "0,1,2,3", "--k", "4"],
    ] {
        let mut args = vec!["query", "rows.pfes"];
        args.extend(extra);
        let out = pfe(&dir, &args);
        assert_ok(&out, "query variant");
        assert_eq!(stdout_json(&out).get("ok"), Some(&Json::Bool(true)));
    }

    let out = pfe(&dir, &["stats", "rows.pfes"]);
    assert_ok(&out, "stats");
    let stats = stdout_json(&out);
    assert_eq!(
        stats.get("snapshot_rows").and_then(Json::as_f64),
        Some(800.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_queries_answer_in_order() {
    let dir = temp_dir("batch");
    write_csv(&dir.join("rows.csv"), 8, 400, 0x17);
    assert_ok(
        &pfe(&dir, &["ingest", "rows.csv", "--out", "s.pfes", "--quiet"]),
        "ingest",
    );
    std::fs::write(
        dir.join("queries.jsonl"),
        "{\"op\":\"f0\",\"cols\":[0,1]}\n{\"op\":\"f0\",\"cols\":[0,1,2]}\n",
    )
    .unwrap();
    let out = pfe(&dir, &["query", "s.pfes", "--batch", "queries.jsonl"]);
    assert_ok(&out, "batch query");
    let lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 2);
    let a = Json::parse(&lines[0]).unwrap();
    let b = Json::parse(&lines[1]).unwrap();
    // F0 over a superset of columns can only grow.
    assert!(
        b.get("estimate").and_then(Json::as_f64).unwrap()
            >= a.get("estimate").and_then(Json::as_f64).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_merge_equals_single_engine() {
    let dir = temp_dir("merge");
    write_csv(&dir.join("a.csv"), 9, 300, 1);
    write_csv(&dir.join("b.csv"), 9, 300, 2);
    for (f, s) in [("a.csv", "a.pfes"), ("b.csv", "b.pfes")] {
        assert_ok(&pfe(&dir, &["ingest", f, "--out", s, "--quiet"]), "ingest");
    }
    let out = pfe(&dir, &["checkpoint", "a.pfes", "b.pfes", "--out", "m.pfes"]);
    assert_ok(&out, "merge");
    let merged = stdout_json(&out);
    assert_eq!(merged.get("rows").and_then(Json::as_f64), Some(600.0));

    let out = pfe(&dir, &["stats", "m.pfes"]);
    assert_ok(&out, "stats on merged");
    assert_eq!(
        stdout_json(&out)
            .get("snapshot_rows")
            .and_then(Json::as_f64),
        Some(600.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_continues_ingesting() {
    let dir = temp_dir("resume");
    write_csv(&dir.join("one.csv"), 7, 250, 3);
    write_csv(&dir.join("two.csv"), 7, 150, 4);
    assert_ok(
        &pfe(&dir, &["ingest", "one.csv", "--out", "s.pfes", "--quiet"]),
        "ingest",
    );
    let out = pfe(
        &dir,
        &["resume", "s.pfes", "--ingest", "two.csv", "--quiet"],
    );
    assert_ok(&out, "resume");
    let out = pfe(&dir, &["stats", "s.pfes"]);
    assert_eq!(
        stdout_json(&out)
            .get("snapshot_rows")
            .and_then(Json::as_f64),
        Some(400.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_and_bench_agree_on_clean_files() {
    let dir = temp_dir("verify");
    write_csv(&dir.join("rows.csv"), 11, 600, 5);
    let out = pfe(&dir, &["verify", "rows.csv"]);
    assert_ok(&out, "verify");
    let v = stdout_json(&out);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.get("packed"), Some(&Json::Bool(true)));

    let out = pfe(&dir, &["bench-ingest", "rows.csv", "--iters", "1"]);
    assert_ok(&out, "bench-ingest");
    let b = stdout_json(&out);
    assert!(b.get("speedup").and_then(Json::as_f64).unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_files_fail_with_provenance() {
    let dir = temp_dir("badfile");
    std::fs::write(dir.join("bad.csv"), "a,b\n1,0\n1,x\n").unwrap();
    let out = pfe(&dir, &["ingest", "bad.csv", "--out", "s.pfes", "--quiet"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("line 3"), "stderr was: {err}");
    assert!(!dir.join("s.pfes").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn windowed_ingest_serves_window_queries() {
    let dir = temp_dir("window");
    write_csv(&dir.join("rows.csv"), 8, 2000, 6);
    assert_ok(
        &pfe(
            &dir,
            &[
                "ingest", "rows.csv", "--out", "w.pfes", "--window", "256", "--quiet",
            ],
        ),
        "windowed ingest",
    );
    let out = pfe(
        &dir,
        &[
            "query", "w.pfes", "--op", "f0", "--cols", "0,1,2", "--window", "500",
        ],
    );
    assert_ok(&out, "window query");
    let ans = stdout_json(&out);
    assert_eq!(ans.get("ok"), Some(&Json::Bool(true)));
    assert!(ans.get("window").is_some(), "window provenance missing");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_pipe_mode_resumes_a_checkpoint() {
    use std::io::Write;
    let dir = temp_dir("pipe");
    write_csv(&dir.join("rows.csv"), 8, 300, 7);
    assert_ok(
        &pfe(&dir, &["ingest", "rows.csv", "--out", "s.pfes", "--quiet"]),
        "ingest",
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_pfe"))
        .current_dir(&dir)
        .args(["serve", "--resume", "s.pfes"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"{\"op\":\"f0\",\"cols\":[0,1,2]}\n{\"op\":\"quit\"}\n")
        .unwrap();
    let out = child.wait_with_output().expect("serve exits");
    assert_ok(&out, "serve pipe");
    let first = String::from_utf8_lossy(&out.stdout)
        .lines()
        .next()
        .unwrap()
        .to_string();
    let ans = Json::parse(&first).unwrap();
    assert_eq!(ans.get("ok"), Some(&Json::Bool(true)));
    assert!(ans.get("estimate").and_then(Json::as_f64).unwrap() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    let dir = temp_dir("usage");
    let out = pfe(&dir, &["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let out = pfe(&dir, &["ingest"]);
    assert_eq!(out.status.code(), Some(2));
    let out = pfe(&dir, &["help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("bench-ingest"));
    std::fs::remove_dir_all(&dir).ok();
}
