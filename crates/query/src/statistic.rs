//! The five statistics a projection query can request.

/// Discriminant of a [`Statistic`] — the payload-free tag used in cache
/// keys, per-statistic counters, and planner grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatKind {
    /// Projected distinct count.
    F0,
    /// Point frequency of one pattern.
    Frequency,
    /// `φ`-heavy hitters.
    HeavyHitters,
    /// `ℓ_1` pattern sampling.
    L1Sample,
    /// Frequency moment `F_p`.
    Fp,
}

impl StatKind {
    /// Every statistic kind, in canonical order.
    pub const ALL: [StatKind; 5] = [
        StatKind::F0,
        StatKind::Frequency,
        StatKind::HeavyHitters,
        StatKind::L1Sample,
        StatKind::Fp,
    ];

    /// Stable lowercase name (wire protocol, stats reporting).
    pub fn name(self) -> &'static str {
        match self {
            StatKind::F0 => "f0",
            StatKind::Frequency => "frequency",
            StatKind::HeavyHitters => "heavy_hitters",
            StatKind::L1Sample => "l1_sample",
            StatKind::Fp => "fp",
        }
    }
}

/// A statistic of the projected frequency vector `f(A, C)` — the complete
/// set the paper analyses upper bounds for (Sections 5–6).
///
/// ```
/// use pfe_query::{Statistic, StatKind};
///
/// let s = Statistic::HeavyHitters { phi: 0.1 };
/// assert_eq!(s.kind(), StatKind::HeavyHitters);
/// assert_eq!(s.kind().name(), "heavy_hitters");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Statistic {
    /// Projected distinct count (Algorithm 1 / Theorem 6.5): answered by
    /// the α-net of KMV sketches after rounding to a net member.
    F0,
    /// Point frequency of `pattern` on the projection (Theorem 5.1):
    /// unbiased `g/α` estimate from the uniform row sample, with an
    /// optional CountMin one-sided upper bound.
    Frequency {
        /// Dense pattern, one symbol per queried column (ascending column
        /// order).
        pattern: Vec<u16>,
    },
    /// `φ`-heavy hitters (`ℓ_1`) on the projection (Section 5.1 remark).
    HeavyHitters {
        /// Threshold `φ ∈ (0, 1]`.
        phi: f64,
    },
    /// `ℓ_1` pattern sampling (the easy side of the Theorem 5.5
    /// dichotomy): `k` draws from the sample-estimated distribution.
    L1Sample {
        /// Number of patterns to draw.
        k: usize,
        /// Seed for the draw (deterministic per seed).
        seed: u64,
    },
    /// Frequency moment `F_p = Σ f_i^p` on the projection (Lemma 6.4(2)–(3)
    /// / Theorem 6.5): answered by the α-net of moment sketches
    /// materialized for `p` — AMS sign sketches for `p = 2` (bit-exact
    /// mergeable), Indyk stable projections for `0 < p < 2`.
    Fp {
        /// The moment order; must match a configured `fp` order.
        p: f64,
    },
}

impl Statistic {
    /// The payload-free discriminant.
    pub fn kind(&self) -> StatKind {
        match self {
            Statistic::F0 => StatKind::F0,
            Statistic::Frequency { .. } => StatKind::Frequency,
            Statistic::HeavyHitters { .. } => StatKind::HeavyHitters,
            Statistic::L1Sample { .. } => StatKind::L1Sample,
            Statistic::Fp { .. } => StatKind::Fp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_names_are_stable() {
        assert_eq!(Statistic::F0.kind(), StatKind::F0);
        assert_eq!(
            Statistic::Frequency { pattern: vec![0] }.kind(),
            StatKind::Frequency
        );
        assert_eq!(
            Statistic::L1Sample { k: 3, seed: 0 }.kind(),
            StatKind::L1Sample
        );
        assert_eq!(Statistic::Fp { p: 1.5 }.kind(), StatKind::Fp);
        let names: Vec<&str> = StatKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            ["f0", "frequency", "heavy_hitters", "l1_sample", "fp"]
        );
    }
}
