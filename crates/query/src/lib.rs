#![deny(missing_docs)]
//! `pfe-query` — the canonical request/response surface for projected
//! frequency estimation.
//!
//! The paper's central object is a *projection query*: a column subset
//! `C ⊆ [d]` plus a statistic of the projected frequency vector
//! `f(A, C)`, answered with a provable accuracy guarantee. This crate
//! defines that object once, for every consumer — the `pfe-engine` Rust
//! API, its LRU cache keys, its batch planner, and the `serve` wire
//! protocol all speak these types:
//!
//! - [`Query`]: fluent builder over a column subset — the four paper
//!   statistics ([`Statistic::F0`], [`Statistic::Frequency`],
//!   [`Statistic::HeavyHitters`], [`Statistic::L1Sample`]) plus
//!   frequency moments ([`Statistic::Fp`], AMS at `p = 2`, stable
//!   projections at fractional `p`) and per-query [`QueryOptions`]
//!   (epoch pinning, cache bypass, exact-if-available, sliding
//!   `window(last_n)`);
//! - [`Answer`]: the uniform response — statistic payload, the
//!   theorem-derived [`Guarantee`] (`α` multiplicative, `ε` additive,
//!   [`GuaranteeSource`] exact / sample / α-net), rounded-mask
//!   [`Provenance`] (Lemma 6.4: which net member actually answered),
//!   snapshot epoch, cache/cost metadata ([`CostInfo`]), and — for
//!   windowed queries — the realized [`WindowCoverage`] (the merged
//!   covering set may overshoot `last_n` by less than one bucket);
//! - [`QueryKey`]: the canonical hash identity — queries sharing an
//!   effective (rounded) mask and statistic share one cache entry and
//!   one planner group.
//!
//! ```
//! use pfe_query::{Query, StatKind, Statistic};
//!
//! let batch = vec![
//!     Query::over([0, 3, 5]).f0(),
//!     Query::over([0, 1]).frequency([1u16, 0]),
//!     Query::over([0, 1, 2]).heavy_hitters(0.1),
//!     Query::over([0, 2]).l1_sample(16).with_seed(7),
//!     Query::over([0, 1]).fp(1.5),
//! ];
//! let kinds: Vec<StatKind> = batch.iter().map(|q| q.statistic.kind()).collect();
//! assert_eq!(kinds, StatKind::ALL);
//! ```

mod answer;
mod key;
mod query;
mod statistic;

pub use answer::{
    Answer, AnswerValue, CostInfo, Guarantee, GuaranteeSource, Provenance, WindowCoverage,
};
pub use key::QueryKey;
pub use query::{Query, QueryBuilder, QueryOptions};
pub use statistic::{StatKind, Statistic};
