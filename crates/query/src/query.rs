//! The fluent [`Query`] builder and per-query options.

use crate::statistic::Statistic;

/// Per-query serving options — orthogonal to the statistic requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryOptions {
    /// Answer only against the snapshot with exactly this epoch; if the
    /// published epoch differs, the engine returns a typed
    /// `EpochMismatch` error instead of silently serving newer (or,
    /// after a resume, older) data.
    pub pin_epoch: Option<u64>,
    /// Skip the answer-cache probe and recompute from the snapshot. The
    /// fresh answer still replaces any cached entry, and a bypassing
    /// query never shares a planner group with cache-eligible queries.
    pub bypass_cache: bool,
    /// When the snapshot's uniform sample retains the *entire* stream
    /// (the reservoir never overflowed), compute the answer exactly from
    /// the retained rows and report a `Guarantee` with `source: Exact`
    /// instead of the sketch/sample bound.
    pub exact_if_available: bool,
    /// Answer over (roughly) the most recent `last_n` rows instead of the
    /// whole stream. Served by a windowed engine, which merges the minimal
    /// covering set of its tiered buckets: the covered suffix is at least
    /// `last_n` rows but may overshoot by less than one bucket (the answer
    /// reports the realized coverage in `Answer::window`). A plain
    /// whole-stream engine rejects windowed queries with a typed error.
    pub window: Option<u64>,
}

/// One projection query: a column subset, a [`Statistic`], and
/// [`QueryOptions`].
///
/// Build fluently — pick columns, pick the statistic, chain options:
///
/// ```
/// use pfe_query::{Query, Statistic};
///
/// let q = Query::over([0, 3, 5]).f0();
/// assert_eq!(q.cols, vec![0, 3, 5]);
/// assert_eq!(q.statistic, Statistic::F0);
///
/// let q = Query::over([0, 1])
///     .heavy_hitters(0.1)
///     .pinned_to(7)
///     .bypass_cache();
/// assert_eq!(q.options.pin_epoch, Some(7));
/// assert!(q.options.bypass_cache);
///
/// let q = Query::over([2, 4]).l1_sample(16).with_seed(42);
/// assert_eq!(q.statistic, Statistic::L1Sample { k: 16, seed: 42 });
///
/// let q = Query::over([0, 1]).f0().window(1_000_000);
/// assert_eq!(q.options.window, Some(1_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Column indices of `C` (validated against `d` by the engine).
    pub cols: Vec<u32>,
    /// The statistic requested.
    pub statistic: Statistic,
    /// Serving options.
    pub options: QueryOptions,
}

/// Intermediate state of [`Query::over`]: columns chosen, statistic not
/// yet.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    cols: Vec<u32>,
}

impl Query {
    /// Start building a query over the given column indices.
    pub fn over(cols: impl IntoIterator<Item = u32>) -> QueryBuilder {
        QueryBuilder {
            cols: cols.into_iter().collect(),
        }
    }

    /// Pin to a snapshot epoch (see [`QueryOptions::pin_epoch`]).
    #[must_use]
    pub fn pinned_to(mut self, epoch: u64) -> Self {
        self.options.pin_epoch = Some(epoch);
        self
    }

    /// Skip the answer cache (see [`QueryOptions::bypass_cache`]).
    #[must_use]
    pub fn bypass_cache(mut self) -> Self {
        self.options.bypass_cache = true;
        self
    }

    /// Prefer an exact answer when the snapshot retains the whole stream
    /// (see [`QueryOptions::exact_if_available`]).
    #[must_use]
    pub fn exact_if_available(mut self) -> Self {
        self.options.exact_if_available = true;
        self
    }

    /// Set the draw seed of an [`Statistic::L1Sample`] query; a no-op for
    /// the deterministic statistics.
    #[must_use]
    pub fn with_seed(mut self, new_seed: u64) -> Self {
        if let Statistic::L1Sample { seed, .. } = &mut self.statistic {
            *seed = new_seed;
        }
        self
    }

    /// Answer over the most recent `last_n` rows (see
    /// [`QueryOptions::window`]).
    #[must_use]
    pub fn window(mut self, last_n: u64) -> Self {
        self.options.window = Some(last_n);
        self
    }
}

impl QueryBuilder {
    fn finish(self, statistic: Statistic) -> Query {
        Query {
            cols: self.cols,
            statistic,
            options: QueryOptions::default(),
        }
    }

    /// Projected distinct count.
    pub fn f0(self) -> Query {
        self.finish(Statistic::F0)
    }

    /// Point frequency of `pattern` (one symbol per queried column,
    /// ascending column order).
    pub fn frequency(self, pattern: impl Into<Vec<u16>>) -> Query {
        self.finish(Statistic::Frequency {
            pattern: pattern.into(),
        })
    }

    /// `φ`-heavy hitters.
    pub fn heavy_hitters(self, phi: f64) -> Query {
        self.finish(Statistic::HeavyHitters { phi })
    }

    /// `k` draws from the `ℓ_1` pattern distribution (seed 0; chain
    /// [`Query::with_seed`] to change it).
    pub fn l1_sample(self, k: usize) -> Query {
        self.finish(Statistic::L1Sample { k, seed: 0 })
    }

    /// Frequency moment `F_p` for order `p` (must match an order the
    /// serving engine materialized a moment net for).
    pub fn fp(self, p: f64) -> Query {
        self.finish(Statistic::Fp { p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_all_statistics() {
        assert_eq!(Query::over([1, 2]).f0().statistic, Statistic::F0);
        assert_eq!(
            Query::over([1]).frequency(vec![1]).statistic,
            Statistic::Frequency { pattern: vec![1] }
        );
        assert_eq!(
            Query::over([0]).heavy_hitters(0.5).statistic,
            Statistic::HeavyHitters { phi: 0.5 }
        );
        assert_eq!(
            Query::over([0]).l1_sample(8).statistic,
            Statistic::L1Sample { k: 8, seed: 0 }
        );
        assert_eq!(
            Query::over([0, 1]).fp(1.5).statistic,
            Statistic::Fp { p: 1.5 }
        );
    }

    #[test]
    fn options_chain_and_default_off() {
        let q = Query::over([0]).f0();
        assert_eq!(q.options, QueryOptions::default());
        assert_eq!(q.options.window, None);
        let q = q
            .pinned_to(3)
            .bypass_cache()
            .exact_if_available()
            .window(500);
        assert_eq!(q.options.pin_epoch, Some(3));
        assert!(q.options.bypass_cache && q.options.exact_if_available);
        assert_eq!(q.options.window, Some(500));
    }

    #[test]
    fn with_seed_only_touches_l1() {
        let q = Query::over([0]).f0().with_seed(9);
        assert_eq!(q.statistic, Statistic::F0);
        let q = Query::over([0]).l1_sample(4).with_seed(9);
        assert_eq!(q.statistic, Statistic::L1Sample { k: 4, seed: 9 });
    }
}
