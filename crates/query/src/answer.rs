//! The uniform [`Answer`]: estimate + theorem-derived [`Guarantee`] +
//! rounded-mask [`Provenance`] + cache/cost metadata.

use pfe_core::{HeavyHitter, SampledPattern};
use pfe_row::ColumnSet;

use crate::statistic::StatKind;

/// Which construction produced the answer — and therefore which theorem
/// the accompanying [`Guarantee`] numbers come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuaranteeSource {
    /// Computed exactly from fully retained data (the uniform sample
    /// never overflowed); both error terms are trivial.
    Exact,
    /// The Theorem 5.1 uniform row sample: unbiased, additive error
    /// `ε‖f‖₁` with probability `1 − δ`.
    Sample,
    /// The Section 6 α-net of β-approximate sketches: multiplicative
    /// `β·r(α, d)` error after net rounding (Theorem 6.5 / Lemma 6.4).
    AlphaNet,
}

impl GuaranteeSource {
    /// Stable lowercase name (wire protocol).
    pub fn name(self) -> &'static str {
        match self {
            GuaranteeSource::Exact => "exact",
            GuaranteeSource::Sample => "sample",
            GuaranteeSource::AlphaNet => "alpha_net",
        }
    }
}

/// The `(α, ε)` accuracy contract travelling with every answer.
///
/// `alpha` is the multiplicative factor the estimate is guaranteed within
/// (`1.0` = unbiased / exact); `epsilon` is the additive error term in the
/// units of the reported value (absolute row counts for frequencies and
/// heavy hitters, probability mass for `ℓ_1` samples; `0.0` = none). Both
/// hold at the summary's build-time confidence (δ = 0.05 by default — see
/// `pfe_core::bounds`).
///
/// ```
/// use pfe_query::{Guarantee, GuaranteeSource};
///
/// let g = Guarantee::exact();
/// assert_eq!((g.alpha, g.epsilon), (1.0, 0.0));
/// assert_eq!(g.source, GuaranteeSource::Exact);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Guarantee {
    /// Multiplicative factor bound (`β·r` in Theorem 6.5 terms; `1.0`
    /// means unbiased).
    pub alpha: f64,
    /// Additive error bound (`ε‖f‖₁` in Theorem 5.1 terms; `0.0` means
    /// none).
    pub epsilon: f64,
    /// Which construction the bound comes from.
    pub source: GuaranteeSource,
}

impl Guarantee {
    /// The trivial guarantee of an exactly computed answer.
    pub fn exact() -> Self {
        Self {
            alpha: 1.0,
            epsilon: 0.0,
            source: GuaranteeSource::Exact,
        }
    }
}

/// Which column set actually answered the query — the α-net rounding
/// provenance (Lemma 6.4) clients need to interpret a net answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provenance {
    /// The column set the client asked for.
    pub requested: ColumnSet,
    /// The column set the answer was computed on (a net member for
    /// rounded `F_0`; equals `requested` otherwise).
    pub answered_on: ColumnSet,
    /// `|C Δ C′|` — zero when no rounding happened.
    pub sym_diff: u32,
}

/// Realized coverage of a windowed answer.
///
/// A windowed engine answers `last_n`-row queries by merging the minimal
/// covering set of its tiered buckets, so the suffix actually summarized
/// can overshoot the request by less than one bucket (the oldest one
/// included). The accompanying [`Guarantee`] then holds over the
/// `covered_rows`-row suffix, not the requested window — clients that
/// need the slack can read it off `covered_rows - requested_rows`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowCoverage {
    /// The `last_n` the query asked for.
    pub requested_rows: u64,
    /// Rows of the suffix actually summarized: at least
    /// `min(requested_rows, retained)`, at most one bucket more than
    /// `requested_rows`.
    pub covered_rows: u64,
    /// How many ring buckets (including the active one) were merged to
    /// cover the window.
    pub buckets: u32,
    /// True when the ring has already evicted rows the request wanted
    /// (`requested_rows` exceeds total retention): the answer covers
    /// everything retained, which is less than asked.
    pub truncated: bool,
}

impl WindowCoverage {
    /// Rows covered beyond the request (`0` when truncated).
    pub fn slack_rows(&self) -> u64 {
        self.covered_rows.saturating_sub(self.requested_rows)
    }
}

/// Cache and planner cost metadata for one answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostInfo {
    /// The answer came from the LRU cache rather than a fresh compute.
    pub cached: bool,
    /// How many queries of the same batch shared this answer's planner
    /// group (one snapshot compute / cache probe served them all); `1`
    /// means the query was alone in its group.
    pub group_size: u32,
}

/// The statistic-specific payload of an [`Answer`].
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerValue {
    /// Projected distinct count.
    F0 {
        /// The (possibly rounded) estimate.
        estimate: f64,
    },
    /// Point frequency.
    Frequency {
        /// Unbiased sample estimate `g/α` (absolute count).
        estimate: f64,
        /// One-sided CountMin overestimate, when the frequency net is
        /// materialized.
        upper_bound: Option<f64>,
    },
    /// Heavy hitters, heaviest first.
    HeavyHitters {
        /// Reported patterns with estimated absolute frequencies.
        hitters: Vec<HeavyHitter>,
    },
    /// `ℓ_1` pattern draws.
    L1Sample {
        /// Sampled patterns with estimated probability mass.
        patterns: Vec<SampledPattern>,
    },
    /// Frequency moment `F_p`.
    Fp {
        /// The (possibly rounded) moment estimate.
        estimate: f64,
    },
}

/// Answer to one [`Query`](crate::Query): the value plus everything a
/// client needs to interpret it — the theorem-derived [`Guarantee`], the
/// rounded-mask [`Provenance`], the snapshot epoch, and [`CostInfo`].
#[derive(Debug, Clone, PartialEq)]
pub struct Answer {
    /// The statistic-specific payload.
    pub value: AnswerValue,
    /// Accuracy contract for `value`.
    pub guarantee: Guarantee,
    /// Which column set actually answered.
    pub provenance: Provenance,
    /// Epoch of the snapshot the answer was computed against; for
    /// windowed answers, the covering-set fingerprint of the merged
    /// buckets (stable exactly while the covering buckets are).
    pub epoch: u64,
    /// Cache/planner metadata.
    pub cost: CostInfo,
    /// Realized window coverage — `Some` exactly when the query carried
    /// [`QueryOptions::window`](crate::QueryOptions::window).
    pub window: Option<WindowCoverage>,
    /// Echo of the request-scoped trace id the answer was computed
    /// under — `Some` when the client supplied the trace context or
    /// the request qualified as slow, so clients can fetch the span
    /// tree of the query that produced this answer. Fast
    /// server-generated traces skip the echo; their ids are browsed
    /// from the trace store instead.
    pub trace_id: Option<u128>,
}

impl Answer {
    /// The payload's statistic kind.
    pub fn kind(&self) -> StatKind {
        match &self.value {
            AnswerValue::F0 { .. } => StatKind::F0,
            AnswerValue::Frequency { .. } => StatKind::Frequency,
            AnswerValue::HeavyHitters { .. } => StatKind::HeavyHitters,
            AnswerValue::L1Sample { .. } => StatKind::L1Sample,
            AnswerValue::Fp { .. } => StatKind::Fp,
        }
    }

    /// The scalar estimate, for the scalar statistics (`F0`, frequency,
    /// `F_p`).
    pub fn estimate(&self) -> Option<f64> {
        match &self.value {
            AnswerValue::F0 { estimate }
            | AnswerValue::Frequency { estimate, .. }
            | AnswerValue::Fp { estimate } => Some(*estimate),
            _ => None,
        }
    }

    /// The heavy-hitter list, if this is a heavy-hitter answer.
    pub fn hitters(&self) -> Option<&[HeavyHitter]> {
        match &self.value {
            AnswerValue::HeavyHitters { hitters } => Some(hitters),
            _ => None,
        }
    }

    /// The sampled patterns, if this is an `ℓ_1`-sample answer.
    pub fn patterns(&self) -> Option<&[SampledPattern]> {
        match &self.value {
            AnswerValue::L1Sample { patterns } => Some(patterns),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(value: AnswerValue) -> Answer {
        let cols = ColumnSet::from_indices(8, &[0, 1]).expect("valid");
        Answer {
            value,
            guarantee: Guarantee::exact(),
            provenance: Provenance {
                requested: cols,
                answered_on: cols,
                sym_diff: 0,
            },
            epoch: 1,
            cost: CostInfo {
                cached: false,
                group_size: 1,
            },
            window: None,
            trace_id: None,
        }
    }

    #[test]
    fn accessors_match_payload() {
        let a = answer(AnswerValue::F0 { estimate: 4.0 });
        assert_eq!(a.kind(), StatKind::F0);
        assert_eq!(a.estimate(), Some(4.0));
        assert!(a.hitters().is_none() && a.patterns().is_none());

        let a = answer(AnswerValue::HeavyHitters { hitters: vec![] });
        assert_eq!(a.kind(), StatKind::HeavyHitters);
        assert_eq!(a.estimate(), None);
        assert_eq!(a.hitters(), Some(&[][..]));

        let a = answer(AnswerValue::L1Sample { patterns: vec![] });
        assert_eq!(a.kind(), StatKind::L1Sample);
        assert_eq!(a.patterns(), Some(&[][..]));

        let a = answer(AnswerValue::Fp { estimate: 9.5 });
        assert_eq!(a.kind(), StatKind::Fp);
        assert_eq!(a.estimate(), Some(9.5));
        assert!(a.hitters().is_none() && a.patterns().is_none());
    }

    #[test]
    fn window_coverage_slack() {
        let w = WindowCoverage {
            requested_rows: 100,
            covered_rows: 130,
            buckets: 3,
            truncated: false,
        };
        assert_eq!(w.slack_rows(), 30);
        let t = WindowCoverage {
            requested_rows: 1000,
            covered_rows: 600,
            buckets: 4,
            truncated: true,
        };
        assert_eq!(t.slack_rows(), 0);
    }

    #[test]
    fn source_names_stable() {
        assert_eq!(GuaranteeSource::Exact.name(), "exact");
        assert_eq!(GuaranteeSource::Sample.name(), "sample");
        assert_eq!(GuaranteeSource::AlphaNet.name(), "alpha_net");
    }
}
