//! The canonical cache/planner key a [`Query`](crate::Query) normalizes
//! to.
//!
//! Two queries that must share one snapshot compute — same epoch, same
//! *effective* (rounded) mask, same statistic payload, same exactness,
//! same window — hash to the same [`QueryKey`]. The serving engine keys
//! its LRU answer cache by this type and its batch planner groups
//! co-plannable queries by it, so "shares a cache entry" and "shares a
//! planner group" are one definition. For windowed serving the epoch slot
//! carries the covering-set fingerprint instead of a snapshot sequence
//! number, so a cached windowed answer is invalidated exactly when the
//! buckets covering its window change.

use pfe_row::PatternKey;

use crate::statistic::{StatKind, Statistic};

/// Canonical identity of one query against one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Snapshot epoch the answer is computed against — or, for windowed
    /// queries, the covering-set fingerprint of the merged buckets.
    pub epoch: u64,
    /// Effective subset mask: the *rounded* net-member mask for
    /// (non-exact) `F_0`, the query's own mask for the sample statistics
    /// — every query rounding to the same net member reads the same
    /// sketch, so caching/grouping at this granularity is lossless.
    pub mask: u64,
    /// Statistic discriminant.
    pub kind: StatKind,
    /// Whether the exact (full-retention) path answers this query; exact
    /// and approximate answers never share an entry.
    pub exact: bool,
    /// Requested window length `last_n` (`0` = whole stream). Two
    /// `last_n` values can resolve to the same covering set; they still
    /// get distinct entries so the reported coverage stays per-request.
    pub window: u64,
    /// Statistic payload: the encoded pattern key (frequency), `φ` bits
    /// (heavy hitters), `(k, seed)` (`ℓ_1` sample), `p` bits (`F_p`),
    /// `0` for `F_0`.
    pub aux: u128,
}

impl QueryKey {
    /// Build the canonical key.
    ///
    /// `mask` must already be the effective mask (rounded for non-exact
    /// `F_0`); `pattern_key` must be the pattern encoded against the
    /// query's own columns and is required exactly when the statistic is
    /// [`Statistic::Frequency`]; `window` is the requested `last_n` (`0`
    /// for whole-stream queries).
    ///
    /// ```
    /// use pfe_query::{QueryKey, Statistic, StatKind};
    ///
    /// let a = QueryKey::new(1, 0b011, &Statistic::HeavyHitters { phi: 0.1 }, None, false, 0);
    /// let b = QueryKey::new(1, 0b011, &Statistic::HeavyHitters { phi: 0.1 }, None, false, 0);
    /// let c = QueryKey::new(1, 0b011, &Statistic::HeavyHitters { phi: 0.2 }, None, false, 0);
    /// let w = QueryKey::new(1, 0b011, &Statistic::HeavyHitters { phi: 0.1 }, None, false, 500);
    /// assert_eq!(a, b);
    /// assert_ne!(a, c);
    /// assert_ne!(a, w);
    /// assert_eq!(a.kind, StatKind::HeavyHitters);
    /// ```
    ///
    /// # Panics
    /// Panics if a frequency statistic arrives without its encoded
    /// pattern key.
    pub fn new(
        epoch: u64,
        mask: u64,
        statistic: &Statistic,
        pattern_key: Option<PatternKey>,
        exact: bool,
        window: u64,
    ) -> Self {
        let aux = match statistic {
            Statistic::F0 => 0,
            Statistic::Frequency { .. } => pattern_key
                .expect("frequency keys require the encoded pattern")
                .raw(),
            Statistic::HeavyHitters { phi } => phi.to_bits() as u128,
            Statistic::L1Sample { k, seed } => ((*k as u128) << 64) | *seed as u128,
            Statistic::Fp { p } => p.to_bits() as u128,
        };
        Self {
            epoch,
            mask,
            kind: statistic.kind(),
            exact,
            window,
            aux,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_dimensions_do_not_collide() {
        let base = QueryKey::new(1, 0b11, &Statistic::F0, None, false, 0);
        assert_ne!(base, QueryKey::new(2, 0b11, &Statistic::F0, None, false, 0));
        assert_ne!(base, QueryKey::new(1, 0b10, &Statistic::F0, None, false, 0));
        assert_ne!(base, QueryKey::new(1, 0b11, &Statistic::F0, None, true, 0));
        assert_ne!(
            base,
            QueryKey::new(1, 0b11, &Statistic::F0, None, false, 100)
        );
        assert_ne!(
            base,
            QueryKey::new(
                1,
                0b11,
                &Statistic::HeavyHitters { phi: 0.0 },
                None,
                false,
                0
            )
        );
    }

    #[test]
    fn l1_aux_packs_k_and_seed() {
        let a = QueryKey::new(1, 1, &Statistic::L1Sample { k: 2, seed: 3 }, None, false, 0);
        let b = QueryKey::new(1, 1, &Statistic::L1Sample { k: 3, seed: 2 }, None, false, 0);
        assert_ne!(a.aux, b.aux);
        assert_eq!(a.aux, (2u128 << 64) | 3);
    }

    #[test]
    fn fp_orders_key_by_bits_and_do_not_collide_with_hh() {
        let a = QueryKey::new(1, 0b11, &Statistic::Fp { p: 1.5 }, None, false, 0);
        let b = QueryKey::new(1, 0b11, &Statistic::Fp { p: 2.0 }, None, false, 0);
        assert_ne!(a, b);
        assert_eq!(a.aux, 1.5f64.to_bits() as u128);
        // Same aux bits under a different kind stays a distinct key.
        let hh = QueryKey::new(
            1,
            0b11,
            &Statistic::HeavyHitters { phi: 1.5 },
            None,
            false,
            0,
        );
        assert_eq!(a.aux, hh.aux);
        assert_ne!(a, hh);
    }

    #[test]
    fn frequency_uses_the_encoded_pattern() {
        let stat = Statistic::Frequency {
            pattern: vec![1, 0],
        };
        let k1 = QueryKey::new(1, 0b11, &stat, Some(PatternKey::new(1)), false, 0);
        let k2 = QueryKey::new(1, 0b11, &stat, Some(PatternKey::new(2)), false, 0);
        assert_ne!(k1, k2);
    }

    #[test]
    fn window_lengths_do_not_collide() {
        let a = QueryKey::new(7, 0b1, &Statistic::F0, None, false, 100);
        let b = QueryKey::new(7, 0b1, &Statistic::F0, None, false, 200);
        assert_ne!(a, b);
        assert_eq!(a.window, 100);
    }

    #[test]
    #[should_panic(expected = "encoded pattern")]
    fn frequency_without_pattern_key_panics() {
        QueryKey::new(
            1,
            0b11,
            &Statistic::Frequency { pattern: vec![0] },
            None,
            false,
            0,
        );
    }
}
