#![warn(missing_docs)]
//! Data model for projected frequency estimation (Section 2 of the paper).
//!
//! The input is an array `A ∈ [Q]^{n×d}`; a query is a column subset
//! `C ⊆ [d]` revealed after the data. This crate provides:
//!
//! - [`ColumnSet`] — `C` as a `u64` bitmask with the set algebra the
//!   algorithms need ([`column_set`]);
//! - [`BinaryMatrix`] — packed binary rows with `PEXT`-style projection, the
//!   hot path of every summary ([`binary`]);
//! - [`QaryMatrix`] — dense general-alphabet rows ([`qary`]);
//! - [`PatternKey`]/[`PatternCodec`] — bijective base-`Q` packing of
//!   projected rows, realizing the index function `e(·)` of Remark 1
//!   ([`pattern`]);
//! - [`Dataset`] — the unified input type ([`dataset`]);
//! - [`FrequencyVector`] — the exact `f(A, C)` oracle with `F_p`, norms,
//!   heavy hitters and sampling distributions ([`freq`]).

pub mod binary;
pub mod column_set;
pub mod dataset;
pub mod freq;
pub mod pattern;
pub mod qary;

pub use binary::{pdep_u64, pext_u64, BinaryMatrix};
pub use column_set::{ColumnSet, ColumnSetError};
pub use dataset::Dataset;
pub use freq::FrequencyVector;
pub use pattern::{PatternCodec, PatternCodecError, PatternKey};
pub use qary::QaryMatrix;
