//! Pattern keys: bijective packing of projected rows into `u128`.
//!
//! A projected row `A^C_i ∈ [Q]^{|C|}` is identified by its *pattern key*,
//! the little-endian base-`Q` packing over the selected columns in ascending
//! column order (the first selected column is the least significant digit).
//! Remark 1 of the paper allows any bijection as the index function `e(·)`;
//! little-endian matches the binary fast path, where the key is exactly the
//! `PEXT`-packed bits.
//!
//! The packing is bijective onto `[0, Q^{|C|})`, which requires
//! `Q^{|C|} ≤ 2^127`; [`PatternCodec::new`] enforces this and callers
//! surface the violation as a query error. Every instance in the paper fits
//! comfortably (binary instances need `|C| ≤ 127`; the `Q = d` instances of
//! Corollary 4.3 need `|C| log2 d ≤ 127`).

use crate::column_set::ColumnSet;

/// A packed projected pattern. Ordering/equality follow the packed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternKey(u128);

impl PatternKey {
    /// Wrap a raw packed value.
    #[inline]
    pub fn new(raw: u128) -> Self {
        Self(raw)
    }

    /// The raw packed value.
    #[inline]
    pub fn raw(&self) -> u128 {
        self.0
    }

    /// A 64-bit hashable fingerprint (for sketches keyed on `u64`).
    #[inline]
    pub fn fingerprint64(&self, seed: u64) -> u64 {
        pfe_hash::hash_u128(self.0, seed)
    }
}

impl From<u64> for PatternKey {
    fn from(v: u64) -> Self {
        Self(v as u128)
    }
}

/// Errors from codec construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternCodecError {
    /// `Q^m` exceeds `2^127`: the packing cannot be bijective.
    DomainTooLarge {
        /// Alphabet size.
        q: u32,
        /// Projection width.
        m: u32,
    },
    /// Alphabet size zero.
    EmptyAlphabet,
}

impl std::fmt::Display for PatternCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DomainTooLarge { q, m } => {
                write!(
                    f,
                    "pattern domain {q}^{m} exceeds 2^127; cannot pack bijectively"
                )
            }
            Self::EmptyAlphabet => write!(f, "alphabet size must be >= 1"),
        }
    }
}

impl std::error::Error for PatternCodecError {}

/// Encoder/decoder between projected rows and [`PatternKey`]s for a fixed
/// alphabet `Q` and projection width `m = |C|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternCodec {
    q: u32,
    m: u32,
}

impl PatternCodec {
    /// Codec for alphabet `[Q]` and projection width `m`.
    ///
    /// # Errors
    /// Fails if `q == 0` or `Q^m > 2^127`.
    pub fn new(q: u32, m: u32) -> Result<Self, PatternCodecError> {
        if q == 0 {
            return Err(PatternCodecError::EmptyAlphabet);
        }
        if !Self::fits(q, m) {
            return Err(PatternCodecError::DomainTooLarge { q, m });
        }
        Ok(Self { q, m })
    }

    /// Whether `Q^m ≤ 2^127` (q=1 always fits: domain size 1).
    pub fn fits(q: u32, m: u32) -> bool {
        if q <= 1 {
            return true;
        }
        (m as f64) * (q as f64).log2() <= 127.0
    }

    /// Alphabet size.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Projection width.
    pub fn width(&self) -> u32 {
        self.m
    }

    /// Domain size `Q^m`.
    pub fn domain_size(&self) -> u128 {
        if self.q == 1 {
            1
        } else {
            (self.q as u128).pow(self.m)
        }
    }

    /// Encode the projection of a full row onto `cols` (ascending column
    /// order, little-endian digits).
    ///
    /// # Panics
    /// Panics (debug) if `cols.len() != m`; panics if a symbol is outside
    /// the alphabet.
    #[inline]
    pub fn encode_row(&self, row: &[u16], cols: &ColumnSet) -> PatternKey {
        debug_assert_eq!(cols.len(), self.m, "codec width mismatch");
        let mut acc: u128 = 0;
        let mut scale: u128 = 1;
        for c in cols.iter() {
            let s = row[c as usize];
            debug_assert!(
                (s as u32) < self.q,
                "symbol {s} outside alphabet [{}]",
                self.q
            );
            acc += s as u128 * scale;
            scale *= self.q as u128;
        }
        PatternKey(acc)
    }

    /// Encode an already-projected pattern (length `m`, ascending column
    /// order).
    ///
    /// # Panics
    /// Panics if `pattern.len() != m` or a symbol is outside the alphabet.
    pub fn encode_pattern(&self, pattern: &[u16]) -> PatternKey {
        assert_eq!(pattern.len(), self.m as usize, "pattern width mismatch");
        let mut acc: u128 = 0;
        let mut scale: u128 = 1;
        for &s in pattern {
            assert!(
                (s as u32) < self.q,
                "symbol {s} outside alphabet [{}]",
                self.q
            );
            acc += s as u128 * scale;
            scale *= self.q as u128;
        }
        PatternKey(acc)
    }

    /// Decode a key back to the projected pattern (length `m`).
    ///
    /// # Panics
    /// Panics if the key is outside the domain.
    pub fn decode(&self, key: PatternKey) -> Vec<u16> {
        assert!(key.0 < self.domain_size(), "key out of domain");
        let mut out = vec![0u16; self.m as usize];
        let mut v = key.0;
        for slot in out.iter_mut() {
            *slot = (v % self.q as u128) as u16;
            v /= self.q as u128;
        }
        out
    }

    /// For binary alphabets the key equals the `pext`-packed bits; expose
    /// the check used by the fast path.
    pub fn is_binary(&self) -> bool {
        self.q == 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_key_equals_pext() {
        use crate::binary::pext_u64;
        let d = 10u32;
        let cols = ColumnSet::from_indices(d, &[1, 4, 7]).expect("valid");
        let codec = PatternCodec::new(2, 3).expect("fits");
        for raw in [0b0010010010u64, 0b1111111111, 0b0000000000, 0b0100100100] {
            let dense: Vec<u16> = (0..d).map(|c| ((raw >> c) & 1) as u16).collect();
            let key = codec.encode_row(&dense, &cols);
            assert_eq!(key.raw(), pext_u64(raw, cols.mask()) as u128);
        }
    }

    #[test]
    fn roundtrip_small() {
        let codec = PatternCodec::new(5, 3).expect("fits");
        for i in 0..codec.domain_size() {
            let p = codec.decode(PatternKey::new(i));
            assert_eq!(codec.encode_pattern(&p).raw(), i);
        }
    }

    #[test]
    fn capacity_check() {
        assert!(PatternCodec::fits(2, 127));
        assert!(!PatternCodec::fits(2, 128));
        assert!(PatternCodec::fits(1, 4000));
        assert!(!PatternCodec::fits(u16::MAX as u32, 10));
        assert!(matches!(
            PatternCodec::new(2, 128),
            Err(PatternCodecError::DomainTooLarge { .. })
        ));
        assert!(matches!(
            PatternCodec::new(0, 4),
            Err(PatternCodecError::EmptyAlphabet)
        ));
    }

    #[test]
    fn unary_alphabet_degenerates() {
        let codec = PatternCodec::new(1, 6).expect("fits");
        assert_eq!(codec.domain_size(), 1);
        assert_eq!(codec.encode_pattern(&[0; 6]).raw(), 0);
        assert_eq!(codec.decode(PatternKey::new(0)), vec![0; 6]);
    }

    #[test]
    fn fingerprint_seed_sensitive() {
        let k = PatternKey::new(12345);
        assert_ne!(k.fingerprint64(1), k.fingerprint64(2));
        assert_eq!(k.fingerprint64(1), k.fingerprint64(1));
    }

    #[test]
    fn encode_row_selects_correct_columns() {
        let codec = PatternCodec::new(4, 2).expect("fits");
        let cols = ColumnSet::from_indices(5, &[2, 4]).expect("valid");
        // row: col2=3, col4=1 -> key = 3 + 1*4 = 7.
        let row = [0u16, 0, 3, 0, 1];
        assert_eq!(codec.encode_row(&row, &cols).raw(), 7);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn decode_out_of_domain_panics() {
        PatternCodec::new(2, 2)
            .expect("fits")
            .decode(PatternKey::new(4));
    }

    proptest! {
        #[test]
        fn prop_roundtrip(q in 2u32..8, m in 1u32..10, salt in any::<u64>()) {
            let codec = PatternCodec::new(q, m).expect("fits");
            let key = PatternKey::new(salt as u128 % codec.domain_size());
            prop_assert_eq!(codec.encode_pattern(&codec.decode(key)), key);
        }

        #[test]
        fn prop_injective(q in 2u32..5, m in 1u32..6, a in any::<u64>(), b in any::<u64>()) {
            let codec = PatternCodec::new(q, m).expect("fits");
            let ka = PatternKey::new(a as u128 % codec.domain_size());
            let kb = PatternKey::new(b as u128 % codec.domain_size());
            prop_assert_eq!(ka == kb, codec.decode(ka) == codec.decode(kb));
        }
    }
}
