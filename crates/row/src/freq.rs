//! Exact frequency vectors `f(A, C)` (Equation (1) of the paper).
//!
//! The frequency vector is conceptually of length `Q^{|C|}`; we materialize
//! only its support as a hash map from [`PatternKey`] to count. All exact
//! statistics the paper queries — `F_p` (Equation (2)), `ℓ_p` norms, heavy
//! hitters, point frequencies, and the exact `ℓ_p` sampling distribution —
//! are computed from this structure, making it the ground-truth oracle every
//! approximate summary is tested against.

use pfe_hash::builder::{seeded_map, SeededHashMap};

use crate::column_set::ColumnSet;
use crate::dataset::Dataset;
use crate::pattern::{PatternCodec, PatternCodecError, PatternKey};

/// Sparse exact frequency vector over projected patterns.
///
/// The paper's Section 2 running example:
///
/// ```
/// use pfe_row::{BinaryMatrix, ColumnSet, Dataset, FrequencyVector};
///
/// // A in {0,1}^{5x3}; bit i of each u64 is column i.
/// let a = Dataset::Binary(BinaryMatrix::from_rows(
///     3,
///     vec![0b011, 0b010, 0b100, 0b111, 0b011],
/// ));
/// let c = ColumnSet::from_indices(3, &[0, 1]).unwrap();
/// let f = FrequencyVector::compute(&a, &c).unwrap();
/// assert_eq!(f.f0(), 3);      // three distinct projected rows
/// assert_eq!(f.total(), 5);   // ||f||_1 = n, independent of C
/// ```
#[derive(Debug, Clone)]
pub struct FrequencyVector {
    counts: SeededHashMap<PatternKey, u64>,
    total: u64,
    codec: PatternCodec,
}

impl FrequencyVector {
    /// Compute `f(A, C)` exactly by a full pass over the data.
    ///
    /// # Errors
    /// Fails if the pattern domain `Q^{|C|}` is not bijectively packable.
    pub fn compute(data: &Dataset, cols: &ColumnSet) -> Result<Self, PatternCodecError> {
        let codec = data.codec_for(cols)?;
        let mut counts = seeded_map(0x5eed);
        let mut total = 0u64;
        for key in data.projected_keys(cols, &codec) {
            *counts.entry(key).or_insert(0) += 1;
            total += 1;
        }
        Ok(Self {
            counts,
            total,
            codec,
        })
    }

    /// Build directly from (key, count) pairs (used by tests and by the
    /// lower-bound harness when the instance is generated analytically).
    ///
    /// # Panics
    /// Panics if a key repeats or a count is zero.
    pub fn from_counts(codec: PatternCodec, pairs: &[(PatternKey, u64)]) -> Self {
        let mut counts = seeded_map(0x5eed);
        let mut total = 0u64;
        for &(k, c) in pairs {
            assert!(c > 0, "zero count for key {k:?}");
            assert!(counts.insert(k, c).is_none(), "duplicate key {k:?}");
            total += c;
        }
        Self {
            counts,
            total,
            codec,
        }
    }

    /// The codec for this projection.
    pub fn codec(&self) -> &PatternCodec {
        &self.codec
    }

    /// `‖f‖_1 = n` — the number of rows, independent of `C` (the paper's
    /// observation that `F_1` needs one word of space).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `F_0 = ‖f‖_0`: number of distinct projected patterns.
    pub fn f0(&self) -> u64 {
        self.counts.len() as u64
    }

    /// `F_p = Σ_i f_i^p` for `p ≥ 0` (Equation (2)); `p = 0` counts the
    /// support, matching [`f0`](Self::f0).
    pub fn fp(&self, p: f64) -> f64 {
        assert!(p >= 0.0 && p.is_finite(), "F_p needs finite p >= 0");
        if p == 0.0 {
            return self.f0() as f64;
        }
        self.counts.values().map(|&c| (c as f64).powf(p)).sum()
    }

    /// `‖f‖_p = F_p^{1/p}` for `p > 0`.
    pub fn lp_norm(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p.is_finite(), "l_p norm needs finite p > 0");
        self.fp(p).powf(1.0 / p)
    }

    /// `f_{e(b)}`: exact frequency of a pattern.
    pub fn frequency(&self, key: PatternKey) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// The `φ`-`ℓ_p` heavy hitters: all patterns with
    /// `f_i ≥ φ‖f‖_p`, sorted by key for determinism.
    ///
    /// # Panics
    /// Panics if `phi` is outside `(0, 1]` or `p <= 0`.
    pub fn heavy_hitters(&self, phi: f64, p: f64) -> Vec<(PatternKey, u64)> {
        assert!(phi > 0.0 && phi <= 1.0, "phi {phi} outside (0,1]");
        let threshold = phi * self.lp_norm(p);
        let mut out: Vec<(PatternKey, u64)> = self
            .counts
            .iter()
            .filter(|(_, &c)| c as f64 >= threshold)
            .map(|(&k, &c)| (k, c))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// The exact `ℓ_p` sampling distribution: pairs `(key, f_i^p / F_p)`,
    /// sorted by key.
    ///
    /// # Panics
    /// Panics if `p <= 0` or the vector is empty.
    pub fn lp_distribution(&self, p: f64) -> Vec<(PatternKey, f64)> {
        assert!(p > 0.0, "l_p sampling needs p > 0");
        assert!(!self.counts.is_empty(), "empty frequency vector");
        let fp = self.fp(p);
        let mut out: Vec<(PatternKey, f64)> = self
            .counts
            .iter()
            .map(|(&k, &c)| (k, (c as f64).powf(p) / fp))
            .collect();
        out.sort_unstable_by_key(|&(k, _)| k);
        out
    }

    /// Iterate `(key, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (PatternKey, u64)> + '_ {
        self.counts.iter().map(|(&k, &c)| (k, c))
    }

    /// `(key, count)` pairs sorted by key.
    pub fn sorted_counts(&self) -> Vec<(PatternKey, u64)> {
        let mut v: Vec<_> = self.iter().collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Number of distinct patterns (same as `f0`, but as `usize`).
    pub fn support_size(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::BinaryMatrix;
    use crate::qary::QaryMatrix;

    /// The running example of Section 2 of the paper.
    fn paper_example() -> (Dataset, ColumnSet) {
        let rows = vec![0b011u64, 0b010, 0b100, 0b111, 0b011];
        (
            Dataset::Binary(BinaryMatrix::from_rows(3, rows)),
            ColumnSet::from_indices(3, &[0, 1]).expect("valid"),
        )
    }

    #[test]
    fn paper_example_frequency_vector() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        // f(A, C) = (1, 1, 0, 3) in the paper's (big-endian) indexing; the
        // multiset of nonzero counts is representation-independent.
        let mut counts: Vec<u64> = f.iter().map(|(_, c)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 1, 3]);
        assert_eq!(f.f0(), 3);
        assert_eq!(f.total(), 5);
    }

    #[test]
    fn f1_is_row_count_for_any_projection() {
        let (data, _) = paper_example();
        for mask in 0..8u64 {
            let cols = ColumnSet::from_mask(3, mask).expect("valid");
            let f = FrequencyVector::compute(&data, &cols).expect("fits");
            assert_eq!(f.total(), 5);
            assert!((f.fp(1.0) - 5.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fp_values_consistent() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        // Counts 1, 1, 3: F2 = 1 + 1 + 9 = 11; F0.5 = 1 + 1 + sqrt(3).
        assert!((f.fp(2.0) - 11.0).abs() < 1e-12);
        assert!((f.fp(0.5) - (2.0 + 3f64.sqrt())).abs() < 1e-12);
        assert_eq!(f.fp(0.0), 3.0);
        // l2 norm = sqrt(11).
        assert!((f.lp_norm(2.0) - 11f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn heavy_hitters_threshold() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        // phi = 0.5, p = 1: threshold 2.5 — only the count-3 pattern.
        let hh = f.heavy_hitters(0.5, 1.0);
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].1, 3);
        // phi small enough: everything is a heavy hitter.
        assert_eq!(f.heavy_hitters(0.1, 1.0).len(), 3);
    }

    #[test]
    fn point_frequency_and_missing() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        // Key for (col0,col1)=(1,1) is 0b11 = 3 under little-endian binary.
        assert_eq!(f.frequency(PatternKey::new(3)), 3);
        // (col0,col1)=(0,1) -> key 0b10 = 2 appears once (row "0 1 0");
        // (0,0) -> key 0 appears once (row "0 0 1"); (1,0) -> key 1 never.
        assert_eq!(f.frequency(PatternKey::new(2)), 1);
        assert_eq!(f.frequency(PatternKey::new(0)), 1);
        assert_eq!(f.frequency(PatternKey::new(1)), 0);
    }

    #[test]
    fn lp_distribution_sums_to_one() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        for p in [0.5, 1.0, 2.0] {
            let dist = f.lp_distribution(p);
            let sum: f64 = dist.iter().map(|&(_, pr)| pr).sum();
            assert!((sum - 1.0).abs() < 1e-12, "p={p} sums to {sum}");
        }
        // For p=1 the probabilities are f_i / n.
        let d1 = f.lp_distribution(1.0);
        let max = d1.iter().map(|&(_, p)| p).fold(0.0, f64::max);
        assert!((max - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn qary_frequencies() {
        let m = QaryMatrix::from_rows(3, 3, &[[0u16, 1, 2], [0, 1, 2], [2, 1, 0]]);
        let data = Dataset::Qary(m);
        let cols = ColumnSet::from_indices(3, &[0, 2]).expect("valid");
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        assert_eq!(f.f0(), 2);
        let mut counts: Vec<u64> = f.iter().map(|(_, c)| c).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn empty_projection_single_pattern() {
        let (data, _) = paper_example();
        let cols = ColumnSet::empty(3).expect("valid");
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        assert_eq!(f.f0(), 1);
        assert_eq!(f.frequency(PatternKey::new(0)), 5);
    }

    #[test]
    fn from_counts_and_duplicates() {
        let codec = PatternCodec::new(2, 2).expect("fits");
        let f = FrequencyVector::from_counts(
            codec,
            &[(PatternKey::new(0), 2), (PatternKey::new(3), 5)],
        );
        assert_eq!(f.total(), 7);
        assert_eq!(f.f0(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate key")]
    fn from_counts_rejects_duplicates() {
        let codec = PatternCodec::new(2, 2).expect("fits");
        FrequencyVector::from_counts(codec, &[(PatternKey::new(1), 1), (PatternKey::new(1), 2)]);
    }

    #[test]
    fn sorted_counts_deterministic() {
        let (data, cols) = paper_example();
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        let a = f.sorted_counts();
        let b = f.sorted_counts();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
