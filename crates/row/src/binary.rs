//! Packed binary rows and matrices (`A ∈ {0,1}^{n×d}`, `d ≤ 63`).
//!
//! A binary row is a `u64` with bit `i` holding column `i`. Projection onto
//! a [`ColumnSet`] is a parallel-bit-extract: the selected bits are packed
//! toward the least-significant end in ascending column order. This is the
//! hot operation of the whole workspace (the α-net updates every sketch in
//! the net with a projected key per row), so it is branch-light and
//! allocation-free.

use crate::column_set::ColumnSet;

/// Portable parallel bit extract: pack the bits of `x` selected by `mask`
/// toward the LSB, preserving ascending bit order.
///
/// Equivalent to the BMI2 `PEXT` instruction; one iteration per set mask
/// bit.
#[inline]
pub fn pext_u64(x: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut pos = 0u32;
    while mask != 0 {
        let b = mask.trailing_zeros();
        out |= ((x >> b) & 1) << pos;
        pos += 1;
        mask &= mask - 1;
    }
    out
}

/// Inverse of [`pext_u64`]: scatter the low bits of `x` into the positions
/// of `mask` (parallel bit deposit).
#[inline]
pub fn pdep_u64(x: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut pos = 0u32;
    while mask != 0 {
        let b = mask.trailing_zeros();
        out |= ((x >> pos) & 1) << b;
        pos += 1;
        mask &= mask - 1;
    }
    out
}

/// A binary matrix with `n` rows of `d ≤ 63` columns, rows packed as `u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryMatrix {
    d: u32,
    rows: Vec<u64>,
}

impl pfe_persist::Persist for BinaryMatrix {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u32(self.d);
        pfe_persist::Persist::encode(&self.rows, enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let d = dec.take_u32()?;
        if d > 63 {
            return Err(PersistError::Malformed(format!("dimension d={d} above 63")));
        }
        let rows = <Vec<u64> as pfe_persist::Persist>::decode(dec)?;
        let limit = if d == 0 { 0 } else { (1u64 << d) - 1 };
        if let Some((i, &r)) = rows.iter().enumerate().find(|(_, &r)| r & !limit != 0) {
            return Err(PersistError::Malformed(format!(
                "row {i} ({r:#b}) has bits above d={d}"
            )));
        }
        Ok(Self { d, rows })
    }
}

impl BinaryMatrix {
    /// Empty matrix with `d` columns.
    ///
    /// # Panics
    /// Panics if `d > 63`.
    pub fn new(d: u32) -> Self {
        assert!(d <= 63, "BinaryMatrix supports d <= 63, got {d}");
        Self {
            d,
            rows: Vec::new(),
        }
    }

    /// Matrix from packed rows.
    ///
    /// # Panics
    /// Panics if `d > 63` or any row has bits at or above `d`.
    pub fn from_rows(d: u32, rows: Vec<u64>) -> Self {
        assert!(d <= 63, "BinaryMatrix supports d <= 63, got {d}");
        let limit = if d == 0 { 0 } else { (1u64 << d) - 1 };
        for (i, &r) in rows.iter().enumerate() {
            assert!(r & !limit == 0, "row {i} has bits above d={d}");
        }
        Self { d, rows }
    }

    /// Number of columns `d`.
    #[inline]
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Number of rows `n`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// True iff the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row has bits at or above `d`.
    pub fn push(&mut self, row: u64) {
        let limit = if self.d == 0 { 0 } else { (1u64 << self.d) - 1 };
        assert!(row & !limit == 0, "row has bits above d={}", self.d);
        self.rows.push(row);
    }

    /// Packed row `i`.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    #[inline]
    pub fn row(&self, i: usize) -> u64 {
        self.rows[i]
    }

    /// All packed rows.
    #[inline]
    pub fn rows(&self) -> &[u64] {
        &self.rows
    }

    /// Project row `i` onto `cols`, packed toward the LSB.
    ///
    /// # Panics
    /// Panics (debug) on dimension mismatch.
    #[inline]
    pub fn project_row(&self, i: usize, cols: &ColumnSet) -> u64 {
        debug_assert_eq!(cols.dimension(), self.d, "column-set dimension mismatch");
        pext_u64(self.rows[i], cols.mask())
    }

    /// Iterate projected keys for all rows.
    pub fn projected_keys<'a>(&'a self, cols: &ColumnSet) -> impl Iterator<Item = u64> + 'a {
        debug_assert_eq!(cols.dimension(), self.d);
        let mask = cols.mask();
        self.rows.iter().map(move |&r| pext_u64(r, mask))
    }

    /// Value at `(row, col)` as 0/1.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: u32) -> u16 {
        assert!(col < self.d, "column {col} out of range");
        ((self.rows[row] >> col) & 1) as u16
    }

    /// Expand row `i` to a dense symbol vector (for Q-ary interop).
    pub fn row_dense(&self, i: usize) -> Vec<u16> {
        (0..self.d).map(|c| self.get(i, c)).collect()
    }

    /// Heap + inline size in bytes (space accounting).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.rows.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pext_basic() {
        // Extract bits 1 and 3 of 0b1010 -> both set -> 0b11.
        assert_eq!(pext_u64(0b1010, 0b1010), 0b11);
        assert_eq!(pext_u64(0b1010, 0b0101), 0b00);
        assert_eq!(pext_u64(0xffff_ffff_ffff_fffe, 1), 0);
        assert_eq!(pext_u64(u64::MAX, u64::MAX), u64::MAX);
        assert_eq!(pext_u64(0, u64::MAX), 0);
        assert_eq!(pext_u64(u64::MAX, 0), 0);
    }

    #[test]
    fn pdep_inverts_pext_on_mask() {
        let mask = 0b1011_0100u64;
        for x in 0..256u64 {
            let masked = x & mask;
            assert_eq!(pdep_u64(pext_u64(masked, mask), mask), masked);
        }
    }

    #[test]
    fn paper_running_example() {
        // Section 2 example: A in {0,1}^{5x3} with columns {1,2,3} (we use
        // 0-based {0,1,2}); C = {1,2} (paper's first two columns = our
        // {0,1}).  Rows: 110, 010, 001, 111, 110 — written (col0,col1,col2).
        let rows = vec![
            0b011u64, // 1 1 0 -> col0=1, col1=1, col2=0
            0b010,    // 0 1 0
            0b100,    // 0 0 1
            0b111,    // 1 1 1
            0b011,    // 1 1 0
        ];
        let m = BinaryMatrix::from_rows(3, rows);
        let c = ColumnSet::from_indices(3, &[0, 1]).expect("valid");
        let keys: Vec<u64> = m.projected_keys(&c).collect();
        // Projected rows: 11, 01, 00, 11, 11 (as (col0,col1) pairs,
        // LSB = col0): 0b11, 0b10, 0b00, 0b11, 0b11.
        assert_eq!(keys, vec![0b11, 0b10, 0b00, 0b11, 0b11]);
        // Distinct count = 3, matching the paper's F0 = 3.
        let distinct: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn projection_onto_full_set_is_identity() {
        let m = BinaryMatrix::from_rows(5, vec![0b10101, 0b01010]);
        let full = ColumnSet::full(5).expect("valid");
        assert_eq!(m.project_row(0, &full), 0b10101);
        assert_eq!(m.project_row(1, &full), 0b01010);
    }

    #[test]
    fn projection_onto_empty_set_is_zero() {
        let m = BinaryMatrix::from_rows(5, vec![0b11111]);
        let empty = ColumnSet::empty(5).expect("valid");
        assert_eq!(m.project_row(0, &empty), 0);
    }

    #[test]
    fn get_and_dense_roundtrip() {
        let m = BinaryMatrix::from_rows(4, vec![0b1010]);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.get(0, 1), 1);
        assert_eq!(m.row_dense(0), vec![0, 1, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "bits above d")]
    fn push_rejects_out_of_range_bits() {
        BinaryMatrix::new(3).push(0b1000);
    }

    #[test]
    fn space_accounting_grows() {
        let mut m = BinaryMatrix::new(8);
        let s0 = m.space_bytes();
        for i in 0..1000 {
            m.push(i % 256);
        }
        assert!(m.space_bytes() > s0 + 1000 * 8 / 2);
    }

    proptest! {
        #[test]
        fn prop_pext_popcount(x in any::<u64>(), mask in any::<u64>()) {
            // The projected value fits in |mask| bits.
            let y = pext_u64(x, mask);
            let k = mask.count_ones();
            if k < 64 {
                prop_assert!(y < (1u64 << k));
            }
            // Ones are preserved: popcount(y) = popcount(x & mask).
            prop_assert_eq!(y.count_ones(), (x & mask).count_ones());
        }

        #[test]
        fn prop_pext_order_preserving(a in any::<u64>(), b in any::<u64>(), mask in any::<u64>()) {
            // pext is monotone w.r.t. the masked values' numeric order.
            let (am, bm) = (a & mask, b & mask);
            let (pa, pb) = (pext_u64(a, mask), pext_u64(b, mask));
            prop_assert_eq!(am < bm, pa < pb);
            prop_assert_eq!(am == bm, pa == pb);
        }

        #[test]
        fn prop_projection_distinct_counts_bounded(
            rows in proptest::collection::vec(0u64..(1 << 10), 1..200),
            mask in 0u64..(1 << 10),
        ) {
            // F0 of a projection never exceeds F0 of the full data
            // (projection merges patterns; it cannot split them).
            let m = BinaryMatrix::from_rows(10, rows.clone());
            let cols = ColumnSet::from_mask(10, mask).expect("valid");
            let full: std::collections::HashSet<u64> = rows.iter().copied().collect();
            let proj: std::collections::HashSet<u64> = m.projected_keys(&cols).collect();
            prop_assert!(proj.len() <= full.len());
            prop_assert!(proj.len() <= 1 << cols.len());
        }
    }
}
