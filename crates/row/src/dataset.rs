//! Unified dataset type over binary and Q-ary storage.
//!
//! Binary data gets the packed `u64` fast path (projection = `PEXT`);
//! general alphabets use the dense Q-ary layout. Summaries in `pfe-core`
//! accept a [`Dataset`] so the same code path serves both the binary
//! instances (Theorems 5.3–5.5) and the `[Q]`-alphabet instances
//! (Theorem 4.1, Corollaries 4.2–4.4).

use crate::binary::BinaryMatrix;
use crate::column_set::ColumnSet;
use crate::pattern::{PatternCodec, PatternCodecError, PatternKey};
use crate::qary::QaryMatrix;

/// The input array `A ∈ [Q]^{n×d}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dataset {
    /// Binary alphabet, packed rows.
    Binary(BinaryMatrix),
    /// General alphabet, dense rows.
    Qary(QaryMatrix),
}

impl Dataset {
    /// Number of rows `n`.
    pub fn num_rows(&self) -> usize {
        match self {
            Self::Binary(m) => m.num_rows(),
            Self::Qary(m) => m.num_rows(),
        }
    }

    /// Number of columns `d`.
    pub fn dimension(&self) -> u32 {
        match self {
            Self::Binary(m) => m.dimension(),
            Self::Qary(m) => m.dimension(),
        }
    }

    /// Alphabet size `Q` (2 for binary).
    pub fn alphabet(&self) -> u32 {
        match self {
            Self::Binary(_) => 2,
            Self::Qary(m) => m.alphabet(),
        }
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// A codec for projections of width `|cols|` over this alphabet.
    ///
    /// # Errors
    /// Propagates the codec capacity check (`Q^{|C|} ≤ 2^127`).
    pub fn codec_for(&self, cols: &ColumnSet) -> Result<PatternCodec, PatternCodecError> {
        PatternCodec::new(self.alphabet(), cols.len())
    }

    /// Project row `i` onto `cols` as a pattern key.
    ///
    /// # Panics
    /// Panics if `i` is out of range (debug: or if `cols` has the wrong
    /// dimension / codec width).
    pub fn project_row(&self, i: usize, cols: &ColumnSet, codec: &PatternCodec) -> PatternKey {
        match self {
            Self::Binary(m) => PatternKey::from(m.project_row(i, cols)),
            Self::Qary(m) => m.project_row(i, cols, codec),
        }
    }

    /// Row `i` as a dense symbol vector.
    pub fn row_dense(&self, i: usize) -> Vec<u16> {
        match self {
            Self::Binary(m) => m.row_dense(i),
            Self::Qary(m) => m.row(i).to_vec(),
        }
    }

    /// Iterate all projected keys under `cols` (allocating iterator; the
    /// per-summary hot paths use the concrete matrix types directly).
    pub fn projected_keys<'a>(
        &'a self,
        cols: &'a ColumnSet,
        codec: &'a PatternCodec,
    ) -> Box<dyn Iterator<Item = PatternKey> + 'a> {
        match self {
            Self::Binary(m) => Box::new(m.projected_keys(cols).map(PatternKey::from)),
            Self::Qary(m) => Box::new(m.projected_keys(cols, codec)),
        }
    }

    /// Heap + inline size in bytes (the Θ(nd) "keep everything" baseline).
    pub fn space_bytes(&self) -> usize {
        match self {
            Self::Binary(m) => m.space_bytes(),
            Self::Qary(m) => m.space_bytes(),
        }
    }
}

impl pfe_persist::Persist for Dataset {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        match self {
            Self::Binary(m) => {
                enc.put_u8(0);
                m.encode(enc);
            }
            Self::Qary(m) => {
                enc.put_u8(1);
                m.encode(enc);
            }
        }
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        match dec.take_u8()? {
            0 => Ok(Self::Binary(BinaryMatrix::decode(dec)?)),
            1 => Ok(Self::Qary(QaryMatrix::decode(dec)?)),
            other => Err(pfe_persist::PersistError::Malformed(format!(
                "dataset tag must be 0 (binary) or 1 (qary), got {other}"
            ))),
        }
    }
}

impl From<BinaryMatrix> for Dataset {
    fn from(m: BinaryMatrix) -> Self {
        Self::Binary(m)
    }
}

impl From<QaryMatrix> for Dataset {
    fn from(m: QaryMatrix) -> Self {
        Self::Qary(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_fixture() -> Dataset {
        Dataset::Binary(BinaryMatrix::from_rows(4, vec![0b0011, 0b0101, 0b0011]))
    }

    fn qary_fixture() -> Dataset {
        Dataset::Qary(QaryMatrix::from_rows(
            3,
            4,
            &[[0u16, 1, 2, 0], [1, 1, 0, 2], [0, 1, 2, 0]],
        ))
    }

    #[test]
    fn basic_shape() {
        let b = binary_fixture();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.dimension(), 4);
        assert_eq!(b.alphabet(), 2);
        let q = qary_fixture();
        assert_eq!(q.alphabet(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn binary_and_qary_projection_agree() {
        // The same logical data through both representations must give the
        // same pattern multiset.
        let rows_bits = [0b0011u64, 0b0101, 0b0011];
        let bin = Dataset::Binary(BinaryMatrix::from_rows(4, rows_bits.to_vec()));
        let dense: Vec<Vec<u16>> = rows_bits
            .iter()
            .map(|&r| (0..4).map(|c| ((r >> c) & 1) as u16).collect())
            .collect();
        let qar = Dataset::Qary(QaryMatrix::from_rows(2, 4, &dense));
        let cols = ColumnSet::from_indices(4, &[1, 3]).expect("valid");
        let codec = bin.codec_for(&cols).expect("fits");
        let kb: Vec<_> = bin.projected_keys(&cols, &codec).collect();
        let kq: Vec<_> = qar.projected_keys(&cols, &codec).collect();
        assert_eq!(kb, kq);
    }

    #[test]
    fn row_dense_roundtrip() {
        let q = qary_fixture();
        assert_eq!(q.row_dense(1), vec![1, 1, 0, 2]);
        let b = binary_fixture();
        assert_eq!(b.row_dense(0), vec![1, 1, 0, 0]);
    }

    #[test]
    fn codec_capacity_error_surfaces() {
        // Q=65535 with width 10 exceeds 2^127.
        let m = QaryMatrix::new(65_535, 63);
        let ds = Dataset::Qary(m);
        let cols = ColumnSet::full(63).expect("valid");
        assert!(ds.codec_for(&cols).is_err());
    }

    #[test]
    fn space_accounting_positive() {
        assert!(binary_fixture().space_bytes() > 0);
        assert!(qary_fixture().space_bytes() > 0);
    }
}
