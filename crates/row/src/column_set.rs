//! Column subsets `C ⊆ [d]` as `u64` bitmasks.
//!
//! The projection query of the paper is a set of column indices; all
//! operations the algorithms need (projection, rounding to an α-net
//! neighbour, complements for the Theorem 5.3 construction) reduce to bit
//! arithmetic on the mask.

use std::fmt;

/// A subset of the `d` columns, `d ≤ 63`. Bit `i` set means column `i ∈ C`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnSet {
    mask: u64,
    d: u32,
}

/// Errors from [`ColumnSet`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnSetError {
    /// Dimension exceeds the 63-column representation limit.
    DimensionTooLarge(u32),
    /// A column index is `>= d`.
    ColumnOutOfRange {
        /// The offending column index.
        column: u32,
        /// The dimension it exceeded.
        d: u32,
    },
}

impl fmt::Display for ColumnSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionTooLarge(d) => write!(f, "dimension {d} exceeds the 63-column limit"),
            Self::ColumnOutOfRange { column, d } => {
                write!(f, "column {column} out of range for d={d}")
            }
        }
    }
}

impl std::error::Error for ColumnSetError {}

impl ColumnSet {
    /// The empty subset of `[d]`.
    ///
    /// # Errors
    /// Fails if `d > 63`.
    pub fn empty(d: u32) -> Result<Self, ColumnSetError> {
        if d > 63 {
            return Err(ColumnSetError::DimensionTooLarge(d));
        }
        Ok(Self { mask: 0, d })
    }

    /// The full subset `[d]`.
    ///
    /// # Errors
    /// Fails if `d > 63`.
    pub fn full(d: u32) -> Result<Self, ColumnSetError> {
        let mut s = Self::empty(d)?;
        s.mask = if d == 0 { 0 } else { (1u64 << d) - 1 };
        Ok(s)
    }

    /// Build from explicit column indices.
    ///
    /// # Errors
    /// Fails if `d > 63` or any index is out of range.
    pub fn from_indices(d: u32, indices: &[u32]) -> Result<Self, ColumnSetError> {
        let mut s = Self::empty(d)?;
        for &i in indices {
            if i >= d {
                return Err(ColumnSetError::ColumnOutOfRange { column: i, d });
            }
            s.mask |= 1 << i;
        }
        Ok(s)
    }

    /// Build from a raw mask.
    ///
    /// # Errors
    /// Fails if `d > 63` or the mask has bits at or above `d`.
    pub fn from_mask(d: u32, mask: u64) -> Result<Self, ColumnSetError> {
        let full = Self::full(d)?;
        if mask & !full.mask != 0 {
            return Err(ColumnSetError::ColumnOutOfRange {
                column: 63 - (mask & !full.mask).leading_zeros(),
                d,
            });
        }
        Ok(Self { mask, d })
    }

    /// The raw mask.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// The ambient dimension `d`.
    #[inline]
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// `|C|`.
    #[inline]
    pub fn len(&self) -> u32 {
        self.mask.count_ones()
    }

    /// True iff `C = ∅`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mask == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, column: u32) -> bool {
        column < self.d && self.mask & (1 << column) != 0
    }

    /// `C ∪ {column}` (no-op if already present).
    ///
    /// # Panics
    /// Panics if `column >= d` — an index bug in the caller.
    #[must_use]
    pub fn with(&self, column: u32) -> Self {
        assert!(
            column < self.d,
            "column {column} out of range for d={}",
            self.d
        );
        Self {
            mask: self.mask | (1 << column),
            d: self.d,
        }
    }

    /// `C \ {column}` (no-op if absent).
    #[must_use]
    pub fn without(&self, column: u32) -> Self {
        Self {
            mask: self.mask & !(1u64.checked_shl(column).unwrap_or(0)),
            d: self.d,
        }
    }

    /// Set complement `[d] \ C`.
    #[must_use]
    pub fn complement(&self) -> Self {
        let full = if self.d == 0 { 0 } else { (1u64 << self.d) - 1 };
        Self {
            mask: full & !self.mask,
            d: self.d,
        }
    }

    /// Union (dimensions must agree).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        assert_eq!(self.d, other.d, "dimension mismatch");
        Self {
            mask: self.mask | other.mask,
            d: self.d,
        }
    }

    /// Intersection (dimensions must agree).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn intersect(&self, other: &Self) -> Self {
        assert_eq!(self.d, other.d, "dimension mismatch");
        Self {
            mask: self.mask & other.mask,
            d: self.d,
        }
    }

    /// Symmetric difference `C Δ C'` — the quantity the rounding distortion
    /// of Definition 6.3 is measured in.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn symmetric_difference(&self, other: &Self) -> Self {
        assert_eq!(self.d, other.d, "dimension mismatch");
        Self {
            mask: self.mask ^ other.mask,
            d: self.d,
        }
    }

    /// Subset test `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.d == other.d && self.mask & !other.mask == 0
    }

    /// Iterate member columns in ascending order.
    pub fn iter(&self) -> ColumnIter {
        ColumnIter { mask: self.mask }
    }

    /// Member columns as a vector (ascending).
    pub fn to_indices(&self) -> Vec<u32> {
        self.iter().collect()
    }
}

impl fmt::Display for ColumnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// Iterator over member columns of a [`ColumnSet`].
#[derive(Debug, Clone)]
pub struct ColumnIter {
    mask: u64,
}

impl Iterator for ColumnIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.mask == 0 {
            return None;
        }
        let b = self.mask.trailing_zeros();
        self.mask &= self.mask - 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.mask.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for ColumnIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        let c = ColumnSet::from_indices(8, &[0, 3, 7]).expect("valid");
        assert_eq!(c.len(), 3);
        assert_eq!(c.mask(), 0b1000_1001);
        assert!(c.contains(3));
        assert!(!c.contains(1));
        assert!(!c.contains(63));
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(
            ColumnSet::from_indices(4, &[4]),
            Err(ColumnSetError::ColumnOutOfRange { column: 4, d: 4 })
        );
        assert_eq!(
            ColumnSet::empty(64),
            Err(ColumnSetError::DimensionTooLarge(64))
        );
        assert!(ColumnSet::from_mask(4, 0b10000).is_err());
    }

    #[test]
    fn full_and_complement() {
        let f = ColumnSet::full(6).expect("valid");
        assert_eq!(f.len(), 6);
        assert!(f.complement().is_empty());
        let c = ColumnSet::from_indices(6, &[1, 4]).expect("valid");
        let comp = c.complement();
        assert_eq!(comp.to_indices(), vec![0, 2, 3, 5]);
        assert_eq!(c.union(&comp), f);
        assert!(c.intersect(&comp).is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = ColumnSet::from_indices(8, &[0, 1, 2]).expect("a");
        let b = ColumnSet::from_indices(8, &[2, 3]).expect("b");
        assert_eq!(a.union(&b).to_indices(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersect(&b).to_indices(), vec![2]);
        assert_eq!(a.symmetric_difference(&b).to_indices(), vec![0, 1, 3]);
        assert!(a.intersect(&b).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
    }

    #[test]
    fn with_without() {
        let c = ColumnSet::empty(5).expect("valid").with(2).with(4);
        assert_eq!(c.to_indices(), vec![2, 4]);
        assert_eq!(c.without(2).to_indices(), vec![4]);
        assert_eq!(c.without(3), c);
    }

    #[test]
    fn iter_ascending_exact_size() {
        let c = ColumnSet::from_indices(10, &[9, 0, 5]).expect("valid");
        let it = c.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.collect::<Vec<_>>(), vec![0, 5, 9]);
    }

    #[test]
    fn display_formatting() {
        let c = ColumnSet::from_indices(6, &[1, 3]).expect("valid");
        assert_eq!(c.to_string(), "{1,3}");
        assert_eq!(ColumnSet::empty(6).expect("valid").to_string(), "{}");
    }

    #[test]
    fn zero_dimension_edge() {
        let c = ColumnSet::empty(0).expect("valid");
        assert!(c.is_empty());
        assert_eq!(ColumnSet::full(0).expect("valid"), c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_out_of_range_panics() {
        let _ = ColumnSet::empty(3).expect("valid").with(3);
    }
}
