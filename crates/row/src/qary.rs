//! Dense Q-ary matrices (`A ∈ [Q]^{n×d}`).
//!
//! Symbols are `u16` (alphabet sizes up to 65535 — far beyond any instance
//! in the paper, whose corollaries use `Q` up to `d`). Storage is row-major
//! in one contiguous allocation.

use crate::column_set::ColumnSet;
use crate::pattern::{PatternCodec, PatternKey};

/// A matrix over alphabet `[Q] = {0, ..., Q-1}` with `d ≤ 63` columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaryMatrix {
    q: u32,
    d: u32,
    data: Vec<u16>,
}

impl pfe_persist::Persist for QaryMatrix {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        enc.put_u32(self.q);
        enc.put_u32(self.d);
        pfe_persist::Persist::encode(&self.data, enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        use pfe_persist::PersistError;
        let q = dec.take_u32()?;
        let d = dec.take_u32()?;
        if q < 1 || q > u16::MAX as u32 + 1 {
            return Err(PersistError::Malformed(format!("alphabet Q={q} invalid")));
        }
        if d > 63 {
            return Err(PersistError::Malformed(format!("dimension d={d} above 63")));
        }
        let data = <Vec<u16> as pfe_persist::Persist>::decode(dec)?;
        if d == 0 && !data.is_empty() {
            return Err(PersistError::Malformed(
                "d=0 matrix cannot carry symbols".into(),
            ));
        }
        if d > 0 && data.len() % d as usize != 0 {
            return Err(PersistError::Malformed(format!(
                "buffer of {} symbol(s) is not a multiple of d={d}",
                data.len()
            )));
        }
        if let Some((i, &s)) = data.iter().enumerate().find(|&(_, &s)| s as u32 >= q) {
            return Err(PersistError::Malformed(format!(
                "symbol {s} at {i} outside alphabet [{q}]"
            )));
        }
        Ok(Self { q, d, data })
    }
}

impl QaryMatrix {
    /// Empty matrix over `[Q]^d`.
    ///
    /// # Panics
    /// Panics if `q == 0`, `q > u16::MAX as u32 + 1`, or `d > 63`.
    pub fn new(q: u32, d: u32) -> Self {
        assert!(q >= 1, "alphabet size must be >= 1");
        assert!(
            q <= u16::MAX as u32 + 1,
            "alphabet size {q} exceeds u16 symbols"
        );
        assert!(d <= 63, "QaryMatrix supports d <= 63, got {d}");
        Self {
            q,
            d,
            data: Vec::new(),
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `d`, or any symbol
    /// is `>= Q`.
    pub fn from_flat(q: u32, d: u32, data: Vec<u16>) -> Self {
        let mut m = Self::new(q, d);
        assert!(d > 0 || data.is_empty(), "d=0 matrix cannot carry symbols");
        if d > 0 {
            assert_eq!(data.len() % d as usize, 0, "buffer not a multiple of d");
        }
        for (i, &s) in data.iter().enumerate() {
            assert!((s as u32) < q, "symbol {s} at {i} outside alphabet [{q}]");
        }
        m.data = data;
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if any row has length ≠ `d` or carries out-of-alphabet symbols.
    pub fn from_rows<R: AsRef<[u16]>>(q: u32, d: u32, rows: &[R]) -> Self {
        let mut m = Self::new(q, d);
        for r in rows {
            m.push_row(r.as_ref());
        }
        m
    }

    /// Alphabet size `Q`.
    #[inline]
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Number of columns `d`.
    #[inline]
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Number of rows `n`.
    #[inline]
    pub fn num_rows(&self) -> usize {
        if self.d == 0 {
            0
        } else {
            self.data.len() / self.d as usize
        }
    }

    /// True iff the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if `row.len() != d` or symbols exceed the alphabet.
    pub fn push_row(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.d as usize, "row length != d");
        for &s in row {
            assert!(
                (s as u32) < self.q,
                "symbol {s} outside alphabet [{}]",
                self.q
            );
        }
        self.data.extend_from_slice(row);
    }

    /// The whole matrix as one flat row-major slice (`d` symbols per
    /// row) — the zero-copy input for batched ingest paths.
    #[inline]
    pub fn flat(&self) -> &[u16] {
        &self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= n`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u16] {
        let d = self.d as usize;
        &self.data[i * d..(i + 1) * d]
    }

    /// Value at `(row, col)`.
    ///
    /// # Panics
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, row: usize, col: u32) -> u16 {
        assert!(col < self.d);
        self.data[row * self.d as usize + col as usize]
    }

    /// Project row `i` onto `cols` and pack as a [`PatternKey`].
    ///
    /// # Panics
    /// Panics if the codec's capacity check fails (see [`PatternCodec`]).
    #[inline]
    pub fn project_row(&self, i: usize, cols: &ColumnSet, codec: &PatternCodec) -> PatternKey {
        debug_assert_eq!(cols.dimension(), self.d);
        codec.encode_row(self.row(i), cols)
    }

    /// Iterate projected keys for all rows under `cols`.
    pub fn projected_keys<'a>(
        &'a self,
        cols: &'a ColumnSet,
        codec: &'a PatternCodec,
    ) -> impl Iterator<Item = PatternKey> + 'a {
        (0..self.num_rows()).map(move |i| self.project_row(i, cols, codec))
    }

    /// Heap + inline size in bytes (space accounting).
    pub fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.capacity() * std::mem::size_of::<u16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = QaryMatrix::from_rows(4, 3, &[[0u16, 1, 2], [3, 3, 0]]);
        assert_eq!(m.num_rows(), 2);
        assert_eq!(m.row(0), &[0, 1, 2]);
        assert_eq!(m.get(1, 0), 3);
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = QaryMatrix::from_flat(3, 2, vec![0, 1, 2, 0]);
        let b = QaryMatrix::from_rows(3, 2, &[[0u16, 1], [2, 0]]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn rejects_bad_symbol() {
        QaryMatrix::from_rows(2, 2, &[[0u16, 2]]);
    }

    #[test]
    #[should_panic(expected = "row length != d")]
    fn rejects_bad_row_length() {
        let mut m = QaryMatrix::new(2, 3);
        m.push_row(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a multiple of d")]
    fn rejects_ragged_flat() {
        QaryMatrix::from_flat(2, 3, vec![0, 1]);
    }

    #[test]
    fn projection_via_codec() {
        let m = QaryMatrix::from_rows(3, 4, &[[2u16, 1, 0, 2]]);
        let cols = ColumnSet::from_indices(4, &[0, 3]).expect("valid");
        let codec = PatternCodec::new(3, 2).expect("fits");
        let key = m.project_row(0, &cols, &codec);
        // Little-endian base-3 over (col0, col3) = (2, 2): 2 + 2*3 = 8.
        assert_eq!(key.raw(), 8);
    }

    #[test]
    fn empty_matrix() {
        let m = QaryMatrix::new(5, 7);
        assert!(m.is_empty());
        assert_eq!(m.num_rows(), 0);
    }

    #[test]
    fn space_accounting() {
        let mut m = QaryMatrix::new(4, 8);
        let s0 = m.space_bytes();
        for _ in 0..100 {
            m.push_row(&[0, 1, 2, 3, 0, 1, 2, 3]);
        }
        assert!(m.space_bytes() >= s0 + 100 * 8 * 2 / 2);
    }
}
