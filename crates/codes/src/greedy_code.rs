//! Greedy deterministic construction of intersection-bounded codes.
//!
//! Lemma 3.2 proves codes with pairwise intersection at most `(ε²+γ)d`
//! exist via random sampling; the *greedy* construction walks the colex
//! enumeration of `B(d, k)` and keeps every word compatible with all kept
//! words. It is deterministic (no seed), never fails below the packing
//! bound, and serves as the fallback when rejection sampling exhausts —
//! plus as a cross-check that the random codes' sizes are in the right
//! regime (greedy is a maximal code; random sampling reaches a constant
//! fraction of it in our parameter ranges, which a test pins).

use crate::constant_weight::ConstantWeightCode;

/// A deterministically constructed code with verified pairwise
/// intersection bound.
#[derive(Debug, Clone)]
pub struct GreedyCode {
    words: Vec<u64>,
    d: u32,
    k: u32,
    cap: u32,
}

impl GreedyCode {
    /// Greedily select words of `B(d, k)` with pairwise intersections at
    /// most `cap`, stopping at `max_words` (or when the enumeration ends).
    ///
    /// Walks colex order, so the construction is canonical. Worst-case
    /// cost is `O(|B(d,k)| · |code|)`; intended for `d ≤ ~40`.
    ///
    /// # Panics
    /// Panics if `cap >= k` would make the constraint vacuous *and*
    /// `max_words` exceeds the code size (use `B(d,k)` directly then), or
    /// on invalid `(d, k)`.
    pub fn generate(d: u32, k: u32, cap: u32, max_words: usize) -> Self {
        assert!(max_words > 0, "need at least one word");
        let base = ConstantWeightCode::new(d, k);
        let mut words: Vec<u64> = Vec::new();
        for w in base.iter() {
            if words.len() >= max_words {
                break;
            }
            if words.iter().all(|&x| (x & w).count_ones() <= cap) {
                words.push(w);
            }
        }
        Self { words, d, k, cap }
    }

    /// The selected words, in colex order.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of words selected.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if no word was selected (only for `max_words = 0`, which is
    /// rejected, so effectively never).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Weight `k`.
    pub fn weight(&self) -> u32 {
        self.k
    }

    /// The intersection cap.
    pub fn intersection_cap(&self) -> u32 {
        self.cap
    }

    /// Exhaustive verification of the pairwise bound.
    pub fn verify(&self) -> bool {
        self.words.iter().enumerate().all(|(i, &x)| {
            x.count_ones() == self.k
                && self.words[i + 1..]
                    .iter()
                    .all(|&y| (x & y).count_ones() <= self.cap)
        })
    }

    /// The Johnson-style packing upper bound on any such code:
    /// `C(d, cap+1) / C(k, cap+1)` (each `(cap+1)`-subset of positions can
    /// be covered by at most one codeword).
    pub fn packing_upper_bound(&self) -> f64 {
        crate::binomial::binomial_f64(self.d as u64, self.cap as u64 + 1)
            / crate::binomial::binomial_f64(self.k as u64, self.cap as u64 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random_code::{RandomCode, RandomCodeParams};

    #[test]
    fn greedy_respects_cap() {
        let code = GreedyCode::generate(20, 5, 2, 64);
        assert!(code.verify());
        assert!(code.len() > 4, "greedy found only {} words", code.len());
    }

    #[test]
    fn deterministic() {
        let a = GreedyCode::generate(16, 4, 1, 32);
        let b = GreedyCode::generate(16, 4, 1, 32);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn first_word_is_colex_minimum() {
        let code = GreedyCode::generate(12, 3, 1, 8);
        assert_eq!(code.words()[0], 0b111);
    }

    #[test]
    fn max_words_respected() {
        let code = GreedyCode::generate(24, 6, 3, 5);
        assert_eq!(code.len(), 5);
    }

    #[test]
    fn disjoint_support_code_at_cap_zero() {
        // cap = 0 forces pairwise disjoint supports: exactly floor(d/k)
        // words fit, and greedy finds them all.
        let code = GreedyCode::generate(20, 5, 0, 100);
        assert_eq!(code.len(), 4);
        assert!(code.verify());
    }

    #[test]
    fn within_packing_bound() {
        for (d, k, cap) in [(16u32, 4u32, 1u32), (20, 5, 2), (24, 6, 2)] {
            let code = GreedyCode::generate(d, k, cap, usize::MAX >> 1);
            assert!(
                (code.len() as f64) <= code.packing_upper_bound() + 1e-9,
                "greedy code of {} words exceeds packing bound {} at (d={d},k={k},cap={cap})",
                code.len(),
                code.packing_upper_bound()
            );
        }
    }

    #[test]
    fn greedy_at_least_matches_random_in_regime() {
        // At the Lemma 3.2 test parameters (d=32, k=8, cap=2), greedy must
        // reach at least the size the randomized construction achieves.
        let rand = RandomCode::generate(RandomCodeParams {
            d: 32,
            epsilon: 0.25,
            gamma: 0.03,
            target_size: 12,
            seed: 1,
        })
        .expect("random code");
        let greedy = GreedyCode::generate(32, 8, 2, 1000);
        assert!(
            greedy.len() >= rand.len(),
            "greedy {} below random {}",
            greedy.len(),
            rand.len()
        );
    }
}
