//! The index function `e(·)` of Remark 1: a canonical bijection between
//! `Q`-ary words `w ∈ [Q]^m` and frequency-vector positions
//! `{0, 1, ..., Q^m - 1}`.
//!
//! We use the base-`Q` positional encoding with position 0 as the least
//! significant digit, matching the paper's example (`e(00)=0, e(01)=1, ...,
//! e(11)=3` — i.e. the word read as a base-`Q` numeral with the *first*
//! column most significant; see [`PatternIndexer::encode`] for the exact
//! convention and the test pinning the paper's example).

/// Canonical index function for words over `[Q]^m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternIndexer {
    q: u32,
    m: u32,
}

impl PatternIndexer {
    /// Indexer for words of length `m` over alphabet `[Q]`.
    ///
    /// # Panics
    /// Panics if `q == 0`, or if `Q^m` overflows `u128` (the frequency
    /// vector would be unaddressable).
    pub fn new(q: u32, m: u32) -> Self {
        assert!(q >= 1, "alphabet size must be >= 1");
        (q as u128)
            .checked_pow(m)
            .expect("index space Q^m overflows u128");
        Self { q, m }
    }

    /// Alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Word length `m`.
    pub fn word_len(&self) -> u32 {
        self.m
    }

    /// Size of the index space `Q^m`.
    pub fn domain_size(&self) -> u128 {
        (self.q as u128).pow(self.m)
    }

    /// `e(w)`: encode a word as its index. The paper's convention
    /// (`e(01) = 1` for Q=2) reads the word as a base-`Q` numeral with the
    /// first symbol most significant.
    ///
    /// # Panics
    /// Panics if `word.len() != m` or any symbol is `>= Q`.
    pub fn encode(&self, word: &[u16]) -> u128 {
        assert_eq!(word.len(), self.m as usize, "word length mismatch");
        let mut acc: u128 = 0;
        for &s in word {
            assert!(
                (s as u32) < self.q,
                "symbol {s} outside alphabet [{}]",
                self.q
            );
            acc = acc * self.q as u128 + s as u128;
        }
        acc
    }

    /// `e^{-1}(i)`: decode an index back to its word.
    ///
    /// # Panics
    /// Panics if `index >= Q^m`.
    pub fn decode(&self, mut index: u128) -> Vec<u16> {
        assert!(index < self.domain_size(), "index {index} out of range");
        let mut word = vec![0u16; self.m as usize];
        for slot in word.iter_mut().rev() {
            *slot = (index % self.q as u128) as u16;
            index /= self.q as u128;
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_binary_length_two() {
        // Remark 1's example: e(00)=0, e(01)=1, e(10)=2, e(11)=3.
        let ix = PatternIndexer::new(2, 2);
        assert_eq!(ix.encode(&[0, 0]), 0);
        assert_eq!(ix.encode(&[0, 1]), 1);
        assert_eq!(ix.encode(&[1, 0]), 2);
        assert_eq!(ix.encode(&[1, 1]), 3);
    }

    #[test]
    fn roundtrip_small_domains() {
        for (q, m) in [(2u32, 5u32), (3, 4), (5, 3), (7, 2)] {
            let ix = PatternIndexer::new(q, m);
            for i in 0..ix.domain_size() {
                assert_eq!(ix.encode(&ix.decode(i)), i);
            }
        }
    }

    #[test]
    fn encode_is_injective() {
        let ix = PatternIndexer::new(3, 3);
        let mut seen = std::collections::HashSet::new();
        for a in 0..3u16 {
            for b in 0..3u16 {
                for c in 0..3u16 {
                    assert!(seen.insert(ix.encode(&[a, b, c])));
                }
            }
        }
        assert_eq!(seen.len() as u128, ix.domain_size());
    }

    #[test]
    fn zero_length_words() {
        let ix = PatternIndexer::new(4, 0);
        assert_eq!(ix.domain_size(), 1);
        assert_eq!(ix.encode(&[]), 0);
        assert_eq!(ix.decode(0), Vec::<u16>::new());
    }

    #[test]
    #[should_panic(expected = "outside alphabet")]
    fn rejects_oversized_symbol() {
        PatternIndexer::new(2, 3).encode(&[0, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        PatternIndexer::new(2, 3).encode(&[0, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_rejects_out_of_range() {
        PatternIndexer::new(2, 3).decode(8);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(q in 2u32..10, m in 1u32..8, salt in any::<u64>()) {
            let ix = PatternIndexer::new(q, m);
            let index = (salt as u128) % ix.domain_size();
            prop_assert_eq!(ix.encode(&ix.decode(index)), index);
        }

        #[test]
        fn prop_order_preserving_prefix(q in 2u32..6, m in 2u32..6) {
            // Lexicographic order on words = numeric order on indices.
            let ix = PatternIndexer::new(q, m);
            let a = ix.decode(0);
            let b = ix.decode(ix.domain_size() - 1);
            prop_assert!(a <= b);
        }
    }
}
