//! The dense constant-weight code `B(d, k)` of Section 3.2.
//!
//! `B(d, k)` is the set of all binary strings of length `d` with Hamming
//! weight exactly `k`. Its two properties used by Theorem 4.1:
//!
//! 1. `|B(d,k)| = C(d,k) ≥ (d/k)^k` for `k < d/2` (and `≥ 2^d/√(2d)` at
//!    `k = d/2`), so the code is exponentially large;
//! 2. two distinct codewords intersect in at most `k-1` positions.

use crate::binomial::binomial;
use crate::subsets::{colex_rank, colex_unrank, FixedWeightIter};

/// The code `B(d, k)` with an explicit canonical enumeration (colex order).
///
/// Codewords are `u64` bitmasks. The struct stores only `(d, k)` — words are
/// enumerated or (un)ranked on demand, so even astronomically large codes
/// (e.g. `B(60, 30)`) are representable.
///
/// ```
/// use pfe_codes::constant_weight::ConstantWeightCode;
///
/// let code = ConstantWeightCode::new(16, 4);
/// assert_eq!(code.size(), 1820); // C(16, 4)
/// // Distinct codewords share at most k-1 = 3 ones (Section 3.2).
/// let (a, b) = (code.unrank(0), code.unrank(1000));
/// assert!((a & b).count_ones() <= code.max_pairwise_intersection());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantWeightCode {
    d: u32,
    k: u32,
}

impl ConstantWeightCode {
    /// Define `B(d, k)`.
    ///
    /// # Panics
    /// Panics if `d > 63` or `k > d`.
    pub fn new(d: u32, k: u32) -> Self {
        assert!(d <= 63, "B(d,k) supports d <= 63, got {d}");
        assert!(k <= d, "weight {k} exceeds dimension {d}");
        Self { d, k }
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Weight `k`.
    pub fn weight(&self) -> u32 {
        self.k
    }

    /// `|B(d, k)| = C(d, k)`.
    pub fn size(&self) -> u128 {
        binomial(self.d as u64, self.k as u64).expect("C(d,k) fits in u128 for d <= 63")
    }

    /// Iterate all codewords in canonical (colex) order.
    pub fn iter(&self) -> FixedWeightIter {
        FixedWeightIter::new(self.d, self.k)
    }

    /// Membership test.
    pub fn contains(&self, word: u64) -> bool {
        word < (1u64 << self.d) && word.count_ones() == self.k
    }

    /// Canonical index of a codeword (the enumeration of Section 3.3 used to
    /// build Alice's Index input vector).
    ///
    /// # Panics
    /// Panics if `word ∉ B(d, k)`.
    pub fn rank(&self, word: u64) -> u128 {
        assert!(
            self.contains(word),
            "word {word:#x} not in B({}, {})",
            self.d,
            self.k
        );
        colex_rank(word)
    }

    /// Codeword with the given canonical index.
    ///
    /// # Panics
    /// Panics if `rank >= |B(d, k)|`.
    pub fn unrank(&self, rank: u128) -> u64 {
        assert!(rank < self.size(), "rank {rank} out of range");
        colex_unrank(self.k, rank)
    }

    /// Maximum possible intersection (shared 1s) between distinct codewords:
    /// `k - 1` (the "trivial but crucial property" of Section 3.2).
    pub fn max_pairwise_intersection(&self) -> u32 {
        self.k.saturating_sub(1)
    }

    /// Lower bound on the code size used in Theorem 4.1's space bound:
    /// `(d/k)^k` for `0 < k <= d/2`, else the trivial bound 1.
    pub fn size_lower_bound(&self) -> f64 {
        if self.k == 0 || self.k > self.d / 2 {
            1.0
        } else {
            (self.d as f64 / self.k as f64).powi(self.k as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn size_matches_enumeration() {
        for (d, k) in [(8u32, 3u32), (10, 5), (12, 2), (6, 0), (6, 6)] {
            let code = ConstantWeightCode::new(d, k);
            assert_eq!(code.iter().count() as u128, code.size());
        }
    }

    #[test]
    fn pairwise_intersection_at_most_k_minus_1() {
        let code = ConstantWeightCode::new(10, 4);
        let words: Vec<u64> = code.iter().collect();
        for (i, &x) in words.iter().enumerate() {
            for &y in &words[i + 1..] {
                let shared = (x & y).count_ones();
                assert!(
                    shared <= code.max_pairwise_intersection(),
                    "{x:b} and {y:b} share {shared} ones"
                );
            }
        }
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let code = ConstantWeightCode::new(12, 5);
        for (i, w) in code.iter().enumerate() {
            assert_eq!(code.rank(w), i as u128);
            assert_eq!(code.unrank(i as u128), w);
        }
    }

    #[test]
    fn contains_rejects_wrong_weight_or_range() {
        let code = ConstantWeightCode::new(8, 3);
        assert!(code.contains(0b0000_0111));
        assert!(!code.contains(0b0000_0011));
        assert!(!code.contains(0b1_0000_0011)); // bit 8 out of range... weight 3 but d=8
        assert!(!code.contains(1 << 10));
    }

    #[test]
    fn size_lower_bound_holds() {
        for d in 4..30u32 {
            for k in 1..=d / 2 {
                let code = ConstantWeightCode::new(d, k);
                assert!(
                    code.size() as f64 >= code.size_lower_bound(),
                    "bound violated at d={d}, k={k}"
                );
            }
        }
    }

    #[test]
    fn huge_code_ranks_without_materializing() {
        let code = ConstantWeightCode::new(60, 30);
        assert!(code.size() > 1u128 << 55);
        let w = code.unrank(code.size() - 1);
        assert_eq!(w.count_ones(), 30);
        assert_eq!(code.rank(w), code.size() - 1);
    }

    #[test]
    #[should_panic(expected = "not in B(")]
    fn rank_panics_on_non_member() {
        ConstantWeightCode::new(8, 3).rank(0b1);
    }

    proptest! {
        #[test]
        fn prop_unrank_gives_members(d in 4u32..20, kfrac in 0.1f64..0.9) {
            let k = ((d as f64 * kfrac) as u32).clamp(1, d);
            let code = ConstantWeightCode::new(d, k);
            let size = code.size();
            let probes = [0u128, size / 3, size / 2, size - 1];
            for &r in &probes {
                let w = code.unrank(r);
                prop_assert!(code.contains(w));
                prop_assert_eq!(code.rank(w), r);
            }
        }
    }
}
