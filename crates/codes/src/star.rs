//! The `star_Q` operator (Definition 3.1): child-word expansion.
//!
//! For a binary word `y ∈ {0,1}^d` with support `M = supp(y)`,
//! `star_Q(y) = { z ∈ [Q]^d : supp(z) ⊆ M }` — all `Q^{|M|}` words over the
//! alphabet `[Q] = {0, ..., Q-1}` that are zero outside `M`. The lower-bound
//! instances are exactly unions `star_Q(T)` over Alice's held codewords.
//!
//! Child words are yielded as dense `Vec<u16>` rows of length `d` (matching
//! the `pfe-row` Q-ary matrix layout). The iterator enumerates the base-`Q`
//! counter over the support positions, so child `0` is the all-zero row and
//! child `Q^k - 1` has every support position at `Q-1`.

/// Number of child words `|star_Q(y)| = Q^k` for support size `k`, or
/// `None` on `u128` overflow.
pub fn star_count(q: u32, support_size: u32) -> Option<u128> {
    (q as u128).checked_pow(support_size)
}

/// Iterator over `star_Q(y)` for a support mask `y` (bit `i` = column `i`).
#[derive(Debug, Clone)]
pub struct StarIter {
    /// Support positions in ascending order.
    support: Vec<u32>,
    /// Row length `d`.
    d: u32,
    /// Alphabet size `Q >= 1`.
    q: u32,
    /// Next child index in `[0, Q^k]`; `None` when exhausted.
    next_index: Option<u128>,
    /// Total number of children.
    total: u128,
}

impl StarIter {
    /// Enumerate `star_Q(y)` where `y` is a `d`-bit support mask.
    ///
    /// # Panics
    /// Panics if `q == 0`, `d > 63`, `y` has bits at or above `d`, or the
    /// child count `Q^k` overflows `u128`.
    pub fn new(y: u64, d: u32, q: u32) -> Self {
        assert!(q >= 1, "alphabet size must be >= 1");
        assert!(d <= 63, "d must be <= 63");
        assert!(
            y < (1u64 << d) || d == 63 && y <= (u64::MAX >> 1),
            "support mask {y:#x} has bits above d={d}"
        );
        let support: Vec<u32> = (0..d).filter(|&i| y & (1 << i) != 0).collect();
        let total =
            star_count(q, support.len() as u32).expect("child-word count Q^k overflows u128");
        Self {
            support,
            d,
            q,
            next_index: Some(0),
            total,
        }
    }

    /// Total number of children `Q^k`.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// Materialize the child with the given index without iterating.
    ///
    /// # Panics
    /// Panics if `index >= Q^k`.
    pub fn child(&self, mut index: u128) -> Vec<u16> {
        assert!(index < self.total, "child index {index} out of range");
        let mut row = vec![0u16; self.d as usize];
        for &pos in &self.support {
            row[pos as usize] = (index % self.q as u128) as u16;
            index /= self.q as u128;
        }
        row
    }
}

impl Iterator for StarIter {
    type Item = Vec<u16>;

    fn next(&mut self) -> Option<Vec<u16>> {
        let idx = self.next_index?;
        if idx >= self.total {
            self.next_index = None;
            return None;
        }
        self.next_index = Some(idx + 1);
        Some(self.child(idx))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.next_index {
            Some(i) if i < self.total => (self.total - i).min(usize::MAX as u128) as usize,
            _ => 0,
        };
        (remaining, Some(remaining))
    }
}

/// Enumerate `star_Q(U) = ∪_{u ∈ U} star_Q(u)` as a deduplicated list.
///
/// Children of different parents can coincide (any `z` supported in the
/// intersection of two supports); the union semantics of the paper
/// (Section 3.2: "star(U) = ∪ star(u)") requires dedup. Rows are returned
/// in lexicographic order for determinism.
pub fn star_union(words: &[u64], d: u32, q: u32) -> Vec<Vec<u16>> {
    let mut out: std::collections::BTreeSet<Vec<u16>> = std::collections::BTreeSet::new();
    for &w in words {
        for child in StarIter::new(w, d, q) {
            out.insert(child);
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_matches_iteration() {
        let it = StarIter::new(0b1011, 6, 3);
        assert_eq!(it.total(), 27);
        assert_eq!(it.count(), 27);
    }

    #[test]
    fn children_supported_within_parent() {
        let y = 0b10110u64;
        for child in StarIter::new(y, 8, 4) {
            for (i, &v) in child.iter().enumerate() {
                if y & (1 << i) == 0 {
                    assert_eq!(v, 0, "child has nonzero value off support");
                } else {
                    assert!(v < 4);
                }
            }
        }
    }

    #[test]
    fn children_distinct_and_complete() {
        let set: std::collections::HashSet<Vec<u16>> = StarIter::new(0b111, 3, 2).collect();
        assert_eq!(set.len(), 8); // all binary words of length 3
    }

    #[test]
    fn q_equals_one_yields_single_zero_child() {
        let children: Vec<_> = StarIter::new(0b11, 4, 1).collect();
        assert_eq!(children, vec![vec![0, 0, 0, 0]]);
    }

    #[test]
    fn empty_support_yields_zero_row() {
        let children: Vec<_> = StarIter::new(0, 5, 7).collect();
        assert_eq!(children, vec![vec![0; 5]]);
    }

    #[test]
    fn child_by_index_matches_iteration() {
        let it = StarIter::new(0b1101, 6, 3);
        let materialized: Vec<_> = it.clone().collect();
        for (i, row) in materialized.iter().enumerate() {
            assert_eq!(&it.child(i as u128), row);
        }
    }

    #[test]
    fn paper_example_star2_of_weight_k() {
        // |star_2(y)| = 2^k (Section 3.2): y of weight 4 gives 16 children.
        let it = StarIter::new(0b0110_1100, 8, 2);
        assert_eq!(it.total(), 16);
    }

    #[test]
    fn union_dedups_shared_children() {
        // Two words sharing support bit 0: the all-zero row and rows
        // supported only on bit 0 coincide.
        let words = [0b011u64, 0b101u64];
        let union = star_union(&words, 3, 2);
        // star(011) = {000,001,010,011}, star(101) = {000,001,100,101}
        // union has 6 distinct rows.
        assert_eq!(union.len(), 6);
        // Sorted lexicographic, deterministic:
        assert_eq!(union[0], vec![0, 0, 0]);
    }

    #[test]
    fn union_size_upper_bound() {
        // |star(U)| <= sum |star(u)|.
        let words = [0b0011u64, 0b0110, 0b1100];
        let union = star_union(&words, 4, 3);
        assert!(union.len() <= 3 * 9);
        assert!(union.len() >= 9); // at least one parent's worth
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn child_index_out_of_range_panics() {
        StarIter::new(0b1, 2, 2).child(2);
    }

    #[test]
    fn size_hint_exact() {
        let mut it = StarIter::new(0b11, 4, 3);
        assert_eq!(it.size_hint(), (9, Some(9)));
        it.next();
        assert_eq!(it.size_hint(), (8, Some(8)));
    }
}
