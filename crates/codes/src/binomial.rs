//! Binomial coefficients — exact (checked `u128`) and logarithmic forms.
//!
//! The paper's space bounds are expressed through `C(d, k)` (code sizes,
//! Theorem 4.1) and partial binomial sums (net sizes, Lemma 6.2). Exact
//! values are used when they fit in `u128`; the `ln`/`log2` forms are used
//! for the analytic curves at scales where the exact value overflows.

/// Exact binomial coefficient `C(n, k)`, or `None` on `u128` overflow.
///
/// Uses the multiplicative formula with division at every step (each prefix
/// product is itself a binomial coefficient, so divisions are exact).
/// `None` is returned when any *intermediate* product `C(n, i)·(n-i)`
/// overflows, so final values up to roughly `u128::MAX / n` are guaranteed
/// representable; callers needing larger magnitudes use [`binomial_f64`].
pub fn binomial(n: u64, k: u64) -> Option<u128> {
    if k > n {
        return Some(0);
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc * (n - i) / (i + 1), with exact intermediate division:
        acc = acc.checked_mul((n - i) as u128)?;
        acc /= (i + 1) as u128;
    }
    Some(acc)
}

/// Natural log of `C(n, k)` via `ln Γ` (Stirling–Lanczos approximation).
///
/// Accurate to ~1e-10 relative error for the ranges used here; exact-value
/// tests pin it against [`binomial`] where both are available.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Base-2 log of `C(n, k)`.
pub fn log2_binomial(n: u64, k: u64) -> f64 {
    ln_binomial(n, k) / std::f64::consts::LN_2
}

/// `C(n, k)` as an `f64` (may be `inf` for astronomically large values).
pub fn binomial_f64(n: u64, k: u64) -> f64 {
    match binomial(n, k) {
        Some(v) if v <= (1u128 << 100) => v as f64,
        _ => ln_binomial(n, k).exp(),
    }
}

/// `ln(n!)` using exact accumulation for small `n` and Lanczos `ln Γ` above.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        // Exact summation is cheap and avoids approximation error entirely.
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    ln_gamma(n as f64 + 1.0)
}

/// Lanczos approximation to `ln Γ(x)` for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients (standard table).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Partial binomial sum `Σ_{i=0}^{m} C(n, i)`, or `None` on overflow.
///
/// This is the exact count of subsets of `[n]` with size at most `m`,
/// used for exact α-net sizes (Lemma 6.2 bounds it by `2^{H(m/n) n}`).
pub fn binomial_sum(n: u64, m: u64) -> Option<u128> {
    let mut acc: u128 = 0;
    for i in 0..=m.min(n) {
        acc = acc.checked_add(binomial(n, i)?)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_exact() {
        assert_eq!(binomial(0, 0), Some(1));
        assert_eq!(binomial(5, 0), Some(1));
        assert_eq!(binomial(5, 5), Some(1));
        assert_eq!(binomial(5, 2), Some(10));
        assert_eq!(binomial(10, 3), Some(120));
        assert_eq!(binomial(52, 5), Some(2_598_960));
        assert_eq!(binomial(4, 7), Some(0));
    }

    #[test]
    fn pascal_identity() {
        for n in 1..40u64 {
            for k in 1..n {
                let lhs = binomial(n, k).expect("fits");
                let rhs = binomial(n - 1, k - 1).expect("fits") + binomial(n - 1, k).expect("fits");
                assert_eq!(lhs, rhs, "Pascal fails at ({n},{k})");
            }
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..50u64 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn row_sums_are_powers_of_two() {
        for n in 0..30u64 {
            assert_eq!(binomial_sum(n, n), Some(1u128 << n));
        }
    }

    #[test]
    fn central_binomial_lower_bound_from_paper() {
        // Section 3.2: C(d, d/2) >= 2^d / sqrt(2d).
        for d in (2..60u64).step_by(2) {
            let lhs = binomial(d, d / 2).expect("fits") as f64;
            let rhs = 2f64.powi(d as i32) / ((2 * d) as f64).sqrt();
            assert!(lhs >= rhs, "central binomial bound fails at d={d}");
        }
    }

    #[test]
    fn ratio_lower_bound_from_paper() {
        // Section 3.2: C(d, k) >= (d/k)^k for k < d/2.
        for d in 4..50u64 {
            for k in 1..d / 2 {
                let lhs = binomial(d, k).expect("fits") as f64;
                let rhs = (d as f64 / k as f64).powi(k as i32);
                assert!(lhs >= rhs, "(d/k)^k bound fails at d={d}, k={k}");
            }
        }
    }

    #[test]
    fn ln_matches_exact() {
        for n in [10u64, 30, 60, 120, 500, 1000] {
            for k in [0u64, 1, n / 4, n / 2] {
                if let Some(exact) = binomial(n, k) {
                    let approx = ln_binomial(n, k);
                    let truth = (exact as f64).ln();
                    let err = if truth == 0.0 {
                        approx.abs()
                    } else {
                        (approx - truth).abs() / truth.max(1.0)
                    };
                    assert!(err < 1e-9, "ln_binomial({n},{k}) err {err}");
                }
            }
        }
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(n) = (n-1)! — check a few points.
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-10);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(11.0) - (3_628_800.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn binomial_f64_handles_huge() {
        // C(400, 200) overflows u128 but must come back finite and huge.
        let v = binomial_f64(400, 200);
        assert!(v.is_finite());
        assert!(v > 1e100);
    }

    #[test]
    fn overflow_returns_none() {
        assert!(binomial(400, 200).is_none());
        // Values with headroom for the intermediate product still fit:
        // C(120, 60) ~ 9.7e34 and 9.7e34 * 62 < u128::MAX.
        assert!(binomial(120, 60).is_some());
        assert_eq!(
            binomial(120, 60).map(|v| (v as f64).log10().floor() as i32),
            Some(34)
        );
    }

    #[test]
    fn binomial_sum_prefix_monotone() {
        let n = 24;
        let mut prev = 0u128;
        for m in 0..=n {
            let s = binomial_sum(n, m).expect("fits");
            assert!(s > prev || (m == 0 && s == 1));
            prev = s;
        }
        assert_eq!(prev, 1u128 << n);
    }
}
