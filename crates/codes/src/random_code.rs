//! Randomly sampled codes with bounded pairwise intersection (Lemma 3.2).
//!
//! Lemma 3.2: for `ε, γ ∈ (0,1)`, sampling words i.i.d. from `B(d, εd)`
//! yields, with probability `≥ 1 − exp(−2dγ²)` per pair, a code `C` of size
//! `2^{O(γ²d)}` in which any two distinct words share at most `(ε² + γ)d`
//! ones. We realize the lemma constructively: sample, then *verify* the
//! intersection property, rejecting offending words (at most a vanishing
//! fraction, by the same Chernoff bound), so the returned code satisfies the
//! bound deterministically — which the downstream Theorem 5.3/5.4/5.5
//! instances require as a hard invariant, not just w.h.p.

use pfe_hash::rng::Xoshiro256pp;

/// Parameters of a Lemma 3.2 random code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCodeParams {
    /// Word length `d` (`<= 63`).
    pub d: u32,
    /// Weight fraction `ε ∈ (0, 1)`: words have weight `round(εd) >= 1`.
    pub epsilon: f64,
    /// Slack `γ ∈ (0, 1)`: pairwise intersection bound is `(ε² + γ)d`.
    pub gamma: f64,
    /// Target number of codewords. Lemma 3.2 guarantees `2^{γ²d/ln 2}` is
    /// achievable; callers may ask for fewer (more is allowed but may fail).
    pub target_size: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl RandomCodeParams {
    /// The weight `k = round(εd)`, at least 1.
    pub fn weight(&self) -> u32 {
        ((self.epsilon * self.d as f64).round() as u32).max(1)
    }

    /// The pairwise intersection cap `⌊(ε² + γ)d⌋`.
    pub fn intersection_cap(&self) -> u32 {
        ((self.epsilon * self.epsilon + self.gamma) * self.d as f64).floor() as u32
    }

    /// Lemma 3.2's achievable code size: `exp(dγ²) = 2^{γ²d / ln 2}`.
    pub fn lemma_size(&self) -> f64 {
        (self.d as f64 * self.gamma * self.gamma).exp()
    }
}

/// Error from random-code construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RandomCodeError {
    /// Parameters out of range (d, ε, γ or target size).
    BadParams(String),
    /// Could not reach the target size within the sampling budget; carries
    /// the number of words actually found.
    Exhausted(usize),
}

impl std::fmt::Display for RandomCodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadParams(msg) => write!(f, "bad random-code parameters: {msg}"),
            Self::Exhausted(found) => {
                write!(f, "sampling budget exhausted with only {found} codewords")
            }
        }
    }
}

impl std::error::Error for RandomCodeError {}

/// A verified random code: every pair of distinct words shares at most
/// [`RandomCodeParams::intersection_cap`] ones.
#[derive(Debug, Clone)]
pub struct RandomCode {
    params: RandomCodeParams,
    words: Vec<u64>,
}

impl RandomCode {
    /// Sample and verify a code per Lemma 3.2.
    ///
    /// Words are drawn i.i.d. uniform from `B(d, εd)` (a uniformly random
    /// weight-`k` mask); a draw is kept only if it respects the intersection
    /// cap against all kept words and is not a duplicate. The sampling
    /// budget is `64 × target_size` draws; exceeding it returns
    /// [`RandomCodeError::Exhausted`] (which signals the parameters violate
    /// the lemma's regime, e.g. `target_size >> 2^{γ²d}`).
    pub fn generate(params: RandomCodeParams) -> Result<Self, RandomCodeError> {
        if params.d == 0 || params.d > 63 {
            return Err(RandomCodeError::BadParams(format!(
                "d={} outside 1..=63",
                params.d
            )));
        }
        if !(0.0..1.0).contains(&params.epsilon) || params.epsilon <= 0.0 {
            return Err(RandomCodeError::BadParams(format!(
                "epsilon={} outside (0,1)",
                params.epsilon
            )));
        }
        if !(0.0..1.0).contains(&params.gamma) || params.gamma <= 0.0 {
            return Err(RandomCodeError::BadParams(format!(
                "gamma={} outside (0,1)",
                params.gamma
            )));
        }
        if params.target_size == 0 {
            return Err(RandomCodeError::BadParams("target_size=0".into()));
        }
        let k = params.weight();
        if k > params.d {
            return Err(RandomCodeError::BadParams(format!(
                "weight {k} exceeds d={}",
                params.d
            )));
        }
        let cap = params.intersection_cap();
        if cap >= k {
            // Every pair trivially satisfies the cap; sampling reduces to
            // de-duplication. Allowed, but worth noting in the type's docs.
        }
        let mut rng = Xoshiro256pp::seed_from_u64(params.seed);
        let mut words: Vec<u64> = Vec::with_capacity(params.target_size);
        let budget = params.target_size.saturating_mul(64).max(4096);
        for _ in 0..budget {
            if words.len() == params.target_size {
                break;
            }
            let w = random_weight_k_word(&mut rng, params.d, k);
            if words.iter().all(|&x| x != w && (x & w).count_ones() <= cap) {
                words.push(w);
            }
        }
        if words.len() < params.target_size {
            return Err(RandomCodeError::Exhausted(words.len()));
        }
        Ok(Self { params, words })
    }

    /// Wrap an externally constructed word list (e.g. from
    /// [`GreedyCode`](crate::greedy_code::GreedyCode)) after verifying the
    /// weight and intersection invariants against `params`. This lets the
    /// deterministic greedy construction drive everything downstream that
    /// expects a Lemma 3.2 code (instances, protocols).
    ///
    /// # Errors
    /// Returns `BadParams` if any word violates the weight or the
    /// intersection cap, or the list is empty/duplicated.
    pub fn from_verified_words(
        params: RandomCodeParams,
        words: Vec<u64>,
    ) -> Result<Self, RandomCodeError> {
        if words.is_empty() {
            return Err(RandomCodeError::BadParams("empty word list".into()));
        }
        let k = params.weight();
        let cap = params.intersection_cap();
        for (i, &x) in words.iter().enumerate() {
            if x.count_ones() != k {
                return Err(RandomCodeError::BadParams(format!(
                    "word {i} has weight {}, expected {k}",
                    x.count_ones()
                )));
            }
            if params.d < 64 && x >= (1u64 << params.d) {
                return Err(RandomCodeError::BadParams(format!(
                    "word {i} has bits above d={}",
                    params.d
                )));
            }
            for &y in &words[i + 1..] {
                if x == y {
                    return Err(RandomCodeError::BadParams(format!("duplicate word {x:#x}")));
                }
                if (x & y).count_ones() > cap {
                    return Err(RandomCodeError::BadParams(format!(
                        "pair intersects in {} > cap {cap}",
                        (x & y).count_ones()
                    )));
                }
            }
        }
        Ok(Self { params, words })
    }

    /// The construction parameters.
    pub fn params(&self) -> &RandomCodeParams {
        &self.params
    }

    /// The codewords, in generation order (the canonical enumeration used by
    /// the Index reductions).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of codewords.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the code has no words (never true after `generate` succeeds).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Canonical index of a word, if present.
    pub fn index_of(&self, word: u64) -> Option<usize> {
        self.words.iter().position(|&w| w == word)
    }

    /// Verify the intersection invariant by exhaustive pairwise check.
    /// (O(|C|²); used by tests and by the experiment harness on start-up.)
    pub fn verify(&self) -> bool {
        let cap = self.params.intersection_cap();
        let k = self.params.weight();
        self.words.iter().enumerate().all(|(i, &x)| {
            x.count_ones() == k
                && self.words[i + 1..]
                    .iter()
                    .all(|&y| (x & y).count_ones() <= cap)
        })
    }
}

/// Uniformly random `d`-bit word with exactly `k` ones.
fn random_weight_k_word(rng: &mut Xoshiro256pp, d: u32, k: u32) -> u64 {
    rng.sample_indices(d as usize, k as usize)
        .into_iter()
        .fold(0u64, |acc, b| acc | (1u64 << b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(d: u32, epsilon: f64, gamma: f64, target: usize, seed: u64) -> RandomCodeParams {
        RandomCodeParams {
            d,
            epsilon,
            gamma,
            target_size: target,
            seed,
        }
    }

    #[test]
    fn generates_verified_code() {
        let code = RandomCode::generate(params(32, 0.25, 0.15, 40, 1)).expect("generate");
        assert_eq!(code.len(), 40);
        assert!(code.verify());
    }

    #[test]
    fn all_words_have_weight_epsilon_d() {
        let p = params(40, 0.2, 0.1, 30, 2);
        let code = RandomCode::generate(p).expect("generate");
        let k = p.weight();
        assert_eq!(k, 8);
        assert!(code.words().iter().all(|w| w.count_ones() == k));
    }

    #[test]
    fn pairwise_cap_respected() {
        let p = params(48, 0.25, 0.08, 50, 3);
        let code = RandomCode::generate(p).expect("generate");
        let cap = p.intersection_cap();
        for (i, &x) in code.words().iter().enumerate() {
            for &y in &code.words()[i + 1..] {
                assert!((x & y).count_ones() <= cap);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RandomCode::generate(params(32, 0.25, 0.15, 20, 9)).expect("a");
        let b = RandomCode::generate(params(32, 0.25, 0.15, 20, 9)).expect("b");
        let c = RandomCode::generate(params(32, 0.25, 0.15, 20, 10)).expect("c");
        assert_eq!(a.words(), b.words());
        assert_ne!(a.words(), c.words());
    }

    #[test]
    fn index_of_roundtrip() {
        let code = RandomCode::generate(params(24, 0.25, 0.2, 16, 4)).expect("generate");
        for (i, &w) in code.words().iter().enumerate() {
            assert_eq!(code.index_of(w), Some(i));
        }
        assert_eq!(code.index_of(u64::MAX >> 1), None);
    }

    #[test]
    fn infeasible_target_exhausts() {
        // Demand far more codewords than B(8, 2)=28 can even contain
        // distinctly, with a tight cap: must exhaust, not loop forever.
        let r = RandomCode::generate(params(8, 0.25, 0.01, 1000, 5));
        match r {
            Err(RandomCodeError::Exhausted(found)) => assert!(found < 1000),
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn bad_params_rejected() {
        assert!(matches!(
            RandomCode::generate(params(0, 0.2, 0.1, 4, 0)),
            Err(RandomCodeError::BadParams(_))
        ));
        assert!(matches!(
            RandomCode::generate(params(16, 0.0, 0.1, 4, 0)),
            Err(RandomCodeError::BadParams(_))
        ));
        assert!(matches!(
            RandomCode::generate(params(16, 0.2, 0.0, 4, 0)),
            Err(RandomCodeError::BadParams(_))
        ));
        assert!(matches!(
            RandomCode::generate(params(16, 0.2, 0.1, 0, 0)),
            Err(RandomCodeError::BadParams(_))
        ));
    }

    #[test]
    fn lemma_size_achievable_at_moderate_dims() {
        // At d=48, gamma=0.3: lemma promises exp(48*0.09) ~ 75 words.
        let p = params(48, 0.25, 0.3, 64, 7);
        assert!(p.lemma_size() > 64.0);
        let code = RandomCode::generate(p).expect("lemma-regime generation succeeds");
        assert!(code.verify());
    }

    #[test]
    fn from_verified_words_accepts_valid_and_rejects_invalid() {
        let p = params(16, 0.25, 0.2, 4, 0); // weight 4, cap floor((0.0625+0.2)*16)=4
                                             // Disjoint-support words trivially satisfy any cap.
        let good = vec![0b1111u64, 0b1111_0000, 0b1111_0000_0000];
        let code = RandomCode::from_verified_words(p, good).expect("valid words wrap");
        assert_eq!(code.len(), 3);
        assert!(code.verify());
        // Wrong weight rejected.
        assert!(matches!(
            RandomCode::from_verified_words(p, vec![0b111]),
            Err(RandomCodeError::BadParams(_))
        ));
        // Duplicate rejected.
        assert!(matches!(
            RandomCode::from_verified_words(p, vec![0b1111, 0b1111]),
            Err(RandomCodeError::BadParams(_))
        ));
        // Cap violation rejected (cap for these params is 4 only if the
        // words are identical, which duplicates catch; craft a tighter one).
        let tight = params(16, 0.25, 0.01, 4, 0); // cap = floor(0.0725*16) = 1
        assert!(matches!(
            RandomCode::from_verified_words(tight, vec![0b1111, 0b0011_1100]),
            Err(RandomCodeError::BadParams(_))
        ));
    }

    #[test]
    fn expected_intersection_near_eps_sq_d() {
        // Sanity of the Chernoff setup: E|x∩y| = ε²d for random pairs.
        let p = params(60, 0.3, 0.5, 2, 0);
        let mut rng = Xoshiro256pp::seed_from_u64(123);
        let k = p.weight();
        let trials = 4000;
        let mut total = 0u64;
        for _ in 0..trials {
            let x = random_weight_k_word(&mut rng, p.d, k);
            let y = random_weight_k_word(&mut rng, p.d, k);
            total += (x & y).count_ones() as u64;
        }
        let mean = total as f64 / trials as f64;
        let expect = (k as f64).powi(2) / p.d as f64; // = ε²d up to rounding of k
        assert!(
            (mean - expect).abs() < 0.15 * expect,
            "mean intersection {mean}, expected {expect}"
        );
    }
}
