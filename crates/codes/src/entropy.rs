//! The binary entropy function and the α-net size bounds of Lemma 6.2.
//!
//! `H(x) = -x log2 x - (1-x) log2 (1-x)` controls the number of subsets the
//! α-net scheme materializes: `|N| ≤ 2^{H(1/2-α)d + 1}`. Figure 1 of the
//! paper plots `2^{H(1/2-α)d}/2^d` (relative space) against the rounding
//! distortion `2^{αd}`; these helpers generate those exact curves.

use crate::binomial::binomial_sum;

/// Binary entropy `H(x)` in bits, with the standard convention `H(0)=H(1)=0`.
///
/// # Panics
/// Panics if `x` is outside `[0, 1]`.
pub fn binary_entropy(x: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&x),
        "entropy argument {x} outside [0,1]"
    );
    if x == 0.0 || x == 1.0 {
        return 0.0;
    }
    -(x * x.log2() + (1.0 - x) * (1.0 - x).log2())
}

/// `log2` of the Lemma 6.2 net-size bound: `H(1/2 - α)·d + 1`.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1/2)`.
pub fn net_size_bound_log2(d: u32, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha < 0.5, "alpha {alpha} outside (0, 1/2)");
    binary_entropy(0.5 - alpha) * d as f64 + 1.0
}

/// Exact α-net size: `2·Σ_{i ≤ (1/2-α)d} C(d, i)`, minus the double count of
/// nothing (small and large halves are disjoint since `(1/2-α)d < (1/2+α)d`).
///
/// Returns `None` if the exact count overflows `u128` (only possible for
/// `d > 127`, beyond any experiment here).
pub fn exact_net_size(d: u32, alpha: f64) -> Option<u128> {
    assert!(alpha > 0.0 && alpha < 0.5);
    let small = ((0.5 - alpha) * d as f64).floor() as u64;
    let lo = binomial_sum(d as u64, small)?;
    // Large half: |U| >= ceil((1/2+alpha) d) — by symmetry C(d,i) = C(d,d-i),
    // so the count equals the number of subsets of size <= d - ceil(...).
    let large_min = ((0.5 + alpha) * d as f64).ceil() as u64;
    let hi = binomial_sum(d as u64, (d as u64).saturating_sub(large_min))?;
    lo.checked_add(hi)
}

/// Relative space of the α-net against materializing all `2^d` subsets,
/// computed exactly: `exact_net_size / 2^d`.
pub fn relative_space_exact(d: u32, alpha: f64) -> f64 {
    match exact_net_size(d, alpha) {
        Some(n) => n as f64 / 2f64.powi(d as i32),
        None => (net_size_bound_log2(d, alpha) - d as f64).exp2(),
    }
}

/// The paper's analytic relative-space curve `2^{H(1/2-α)d} / 2^d`.
pub fn relative_space_bound(d: u32, alpha: f64) -> f64 {
    (binary_entropy(0.5 - alpha) * d as f64 - d as f64).exp2()
}

/// Rounding distortion for projected `F_0` (Lemma 6.4 case 1): `2^{αd}`.
pub fn f0_distortion(d: u32, alpha: f64) -> f64 {
    (alpha * d as f64).exp2()
}

/// Rounding distortion for projected `F_p` (Lemma 6.4 cases 2–3):
/// `2^{αd·|p-1|}`; continuous in `p` and equal to 1 at `p = 1`.
pub fn fp_distortion(d: u32, alpha: f64, p: f64) -> f64 {
    (alpha * d as f64 * (p - 1.0).abs()).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_endpoints_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_symmetric() {
        for i in 1..50 {
            let x = i as f64 / 100.0;
            assert!((binary_entropy(x) - binary_entropy(1.0 - x)).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_concave_monotone_on_half() {
        // Strictly increasing on (0, 1/2).
        let mut prev = 0.0;
        for i in 1..=50 {
            let h = binary_entropy(i as f64 / 100.0);
            assert!(h > prev);
            prev = h;
        }
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn entropy_rejects_out_of_range() {
        binary_entropy(1.5);
    }

    #[test]
    fn known_entropy_value() {
        // H(1/4) = 2 - (3/4) log2 3 ≈ 0.811278...
        let h = binary_entropy(0.25);
        assert!((h - 0.811_278_124_459_132_8).abs() < 1e-12);
    }

    #[test]
    fn exact_net_size_le_bound() {
        // Lemma 6.2: exact net size <= 2^{H(1/2-alpha)d + 1}.
        for d in [8u32, 12, 16, 20, 24] {
            for &alpha in &[0.05, 0.1, 0.2, 0.3, 0.4, 0.45] {
                let exact = exact_net_size(d, alpha).expect("fits") as f64;
                let bound = net_size_bound_log2(d, alpha).exp2();
                assert!(
                    exact <= bound * (1.0 + 1e-9),
                    "net size {exact} exceeds bound {bound} at d={d}, alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn net_smaller_than_power_set() {
        // |N| < 2^d for every alpha > 0 (the whole point of the scheme).
        for d in [10u32, 16, 20] {
            for &alpha in &[0.08, 0.15, 0.25, 0.4] {
                let exact = exact_net_size(d, alpha).expect("fits");
                assert!(
                    exact < 1u128 << d,
                    "net not sublinear at d={d}, alpha={alpha}"
                );
            }
        }
    }

    #[test]
    fn net_size_shrinks_with_alpha() {
        let d = 20;
        let mut prev = u128::MAX;
        for i in 1..10 {
            let alpha = i as f64 * 0.05;
            let n = exact_net_size(d, alpha).expect("fits");
            assert!(n <= prev, "net size not monotone at alpha={alpha}");
            prev = n;
        }
    }

    #[test]
    fn distortion_curves() {
        // F0 distortion at alpha=0.25, d=20 is 2^5 = 32 (Figure 1 midpoint).
        assert!((f0_distortion(20, 0.25) - 32.0).abs() < 1e-9);
        // Fp distortion vanishes at p=1 (the paper's remark after Lemma 6.4).
        assert_eq!(fp_distortion(20, 0.3, 1.0), 1.0);
        // Symmetric in |p-1|: p=0.5 and p=1.5 match.
        assert_eq!(fp_distortion(20, 0.3, 0.5), fp_distortion(20, 0.3, 1.5));
        // F0 case equals the p=0 curve.
        assert!((fp_distortion(20, 0.3, 0.0) - f0_distortion(20, 0.3)).abs() < 1e-9);
    }

    #[test]
    fn figure1_reference_point() {
        // Paper §6 illustration: with d=20, relative space 2^-8 keeps
        // 2^12 = 4096 summaries. Check the exact count is in that ballpark
        // for the alpha that yields relative space ~2^-8.
        let d = 20u32;
        // Find alpha with bound-relative space closest to 2^-8.
        let mut best = (f64::MAX, 0.0);
        for i in 1..100 {
            let alpha = i as f64 / 200.0;
            let rs = relative_space_bound(d, alpha);
            let diff = (rs.log2() + 8.0).abs();
            if diff < best.0 {
                best = (diff, alpha);
            }
        }
        let alpha = best.1;
        let kept = exact_net_size(d, alpha).expect("fits");
        assert!(
            kept < (1u128 << 15) && kept > (1u128 << 8),
            "summaries kept {kept} not in the paper's described range"
        );
    }
}
