//! Subset enumeration and colexicographic ranking for `u64` bitmask words.
//!
//! Fixed-weight enumeration (Gosper's hack) drives both the dense code
//! `B(d, k)` and the α-net construction; colex (un)ranking gives the
//! canonical enumeration `C = {w_1, w_2, ...}` that the Index reductions use
//! to translate between codewords and positions in Alice's bit vector.

use crate::binomial::binomial;

/// Iterator over all `d`-bit words of Hamming weight `k`, in increasing
/// numeric (= colexicographic) order, via Gosper's hack.
#[derive(Debug, Clone)]
pub struct FixedWeightIter {
    current: Option<u64>,
    limit: u64, // exclusive upper bound: 1 << d (or wraparound guard)
    d: u32,
}

impl FixedWeightIter {
    /// Enumerate weight-`k` subsets of `[d]`.
    ///
    /// # Panics
    /// Panics if `d > 63` (words are `u64`; `d = 64` would overflow the
    /// termination sentinel) or `k > d`.
    pub fn new(d: u32, k: u32) -> Self {
        assert!(d <= 63, "FixedWeightIter supports d <= 63, got {d}");
        assert!(k <= d, "weight {k} exceeds dimension {d}");
        let first = if k == 0 { 0 } else { (1u64 << k) - 1 };
        Self {
            current: Some(first),
            limit: 1u64 << d,
            d,
        }
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }
}

impl Iterator for FixedWeightIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let v = self.current?;
        if v >= self.limit {
            self.current = None;
            return None;
        }
        // Gosper's hack: next integer with the same popcount.
        self.current = if v == 0 {
            None // weight 0 has exactly one word
        } else {
            let c = v & v.wrapping_neg();
            let r = v + c;
            if r >= self.limit || r < v {
                None
            } else {
                Some((((r ^ v) >> 2) / c) | r)
            }
        };
        Some(v)
    }
}

/// Convenience wrapper returning the fixed-weight iterator.
pub fn subsets_of_weight(d: u32, k: u32) -> FixedWeightIter {
    FixedWeightIter::new(d, k)
}

/// Colexicographic rank of a weight-`k` word among all weight-`k` words.
///
/// If the set bits are `b_1 < b_2 < ... < b_k`, the rank is
/// `Σ_j C(b_j, j)`. This matches the numeric ordering produced by
/// [`FixedWeightIter`].
pub fn colex_rank(word: u64) -> u128 {
    let mut rank: u128 = 0;
    let mut w = word;
    let mut j = 1u64;
    while w != 0 {
        let b = w.trailing_zeros() as u64;
        rank += binomial(b, j).expect("colex rank fits in u128");
        w &= w - 1;
        j += 1;
    }
    rank
}

/// Inverse of [`colex_rank`]: the weight-`k` word with the given rank.
///
/// # Panics
/// Panics if `rank >= C(d, k)` for every `d <= 63` (i.e. the rank is not
/// achievable with weight `k` inside a `u64`).
pub fn colex_unrank(k: u32, mut rank: u128) -> u64 {
    let mut word = 0u64;
    for j in (1..=k as u64).rev() {
        // Largest b with C(b, j) <= rank.
        let mut b = j - 1; // C(j-1, j) = 0 <= rank always
        loop {
            let next = binomial(b + 1, j).expect("fits");
            if next > rank || b + 1 > 63 {
                break;
            }
            b += 1;
        }
        assert!(b <= 63, "rank too large for u64 words");
        word |= 1u64 << b;
        rank -= binomial(b, j).expect("fits");
    }
    assert_eq!(rank, 0, "rank not exactly consumed: leftover {rank}");
    word
}

/// Iterate over all `2^d` subsets of `[d]` as masks `0..2^d`.
///
/// # Panics
/// Panics if `d > 30` — full power-set enumeration beyond that is a bug in
/// the caller, not a use case.
pub fn all_subsets(d: u32) -> impl Iterator<Item = u64> {
    assert!(d <= 30, "power-set enumeration capped at d=30, got {d}");
    0..(1u64 << d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn enumeration_count_matches_binomial() {
        for d in 0..=16u32 {
            for k in 0..=d {
                let count = FixedWeightIter::new(d, k).count() as u128;
                assert_eq!(
                    count,
                    binomial(d as u64, k as u64).expect("fits"),
                    "count mismatch at d={d}, k={k}"
                );
            }
        }
    }

    #[test]
    fn enumeration_weights_and_bounds() {
        for w in FixedWeightIter::new(12, 5) {
            assert_eq!(w.count_ones(), 5);
            assert!(w < (1 << 12));
        }
    }

    #[test]
    fn enumeration_strictly_increasing() {
        let words: Vec<u64> = FixedWeightIter::new(14, 7).collect();
        assert!(words.windows(2).all(|p| p[0] < p[1]));
    }

    #[test]
    fn weight_zero_and_full() {
        assert_eq!(FixedWeightIter::new(10, 0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(
            FixedWeightIter::new(10, 10).collect::<Vec<_>>(),
            vec![(1 << 10) - 1]
        );
    }

    #[test]
    fn colex_rank_matches_enumeration_order() {
        for (i, w) in FixedWeightIter::new(12, 4).enumerate() {
            assert_eq!(colex_rank(w), i as u128, "rank mismatch for word {w:b}");
        }
    }

    #[test]
    fn unrank_inverts_rank() {
        for w in FixedWeightIter::new(13, 6) {
            assert_eq!(colex_unrank(6, colex_rank(w)), w);
        }
    }

    #[test]
    fn unrank_high_dimension() {
        // Exercise ranks near the top for larger d.
        let d = 40u64;
        let k = 5u32;
        let total = binomial(d, k as u64).expect("fits");
        for rank in [0u128, 1, total / 2, total - 1] {
            let w = colex_unrank(k, rank);
            assert_eq!(w.count_ones(), k);
            assert_eq!(colex_rank(w), rank);
        }
    }

    #[test]
    #[should_panic(expected = "weight 5 exceeds dimension 3")]
    fn rejects_overweight() {
        FixedWeightIter::new(3, 5);
    }

    #[test]
    fn all_subsets_count() {
        assert_eq!(all_subsets(10).count(), 1024);
    }

    proptest! {
        #[test]
        fn prop_rank_roundtrip(bits in proptest::collection::btree_set(0u32..50, 1..8)) {
            let word: u64 = bits.iter().fold(0u64, |acc, &b| acc | (1 << b));
            let k = word.count_ones();
            prop_assert_eq!(colex_unrank(k, colex_rank(word)), word);
        }

        #[test]
        fn prop_rank_order_preserving(
            a in proptest::collection::btree_set(0u32..30, 4),
            b in proptest::collection::btree_set(0u32..30, 4),
        ) {
            let wa: u64 = a.iter().fold(0, |acc, &x| acc | (1 << x));
            let wb: u64 = b.iter().fold(0, |acc, &x| acc | (1 << x));
            // Colex rank order on equal-weight words = numeric order.
            prop_assert_eq!(wa < wb, colex_rank(wa) < colex_rank(wb));
        }
    }
}
