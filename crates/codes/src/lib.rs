#![warn(missing_docs)]
//! Coding-theory toolkit for the lower-bound constructions of
//! Cormode–Dickens–Woodruff (PODS 2021).
//!
//! The paper's lower bounds (Section 3.2/3.3) are built from:
//!
//! - the dense constant-weight code `B(d, k)` — all binary strings of length
//!   `d` and Hamming weight `k` ([`constant_weight`]);
//! - randomly sampled codes with bounded pairwise intersection, whose
//!   existence Lemma 3.2 establishes via a Chernoff bound ([`random_code`]);
//! - the `star_Q` operator lifting a binary word to all `Q`-ary child words
//!   supported inside its support ([`star`]);
//! - the index function `e(·)` mapping `Q`-ary words to positions of the
//!   frequency vector (Remark 1, [`indexer`]).
//!
//! Shared numeric helpers live in [`mod@binomial`] (exact and logarithmic
//! binomial coefficients) and [`entropy`] (the binary entropy function `H`
//! that governs the α-net size in Lemma 6.2). Subset enumeration and
//! colexicographic ranking utilities are in [`subsets`].
//!
//! Binary words of length `d ≤ 64` are represented as `u64` bitmasks
//! throughout — bit `i` is column `i`.

pub mod binomial;
pub mod constant_weight;
pub mod entropy;
pub mod greedy_code;
pub mod indexer;
pub mod random_code;
pub mod star;
pub mod subsets;

pub use binomial::{binomial, binomial_f64, ln_binomial};
pub use constant_weight::ConstantWeightCode;
pub use entropy::{binary_entropy, net_size_bound_log2};
pub use greedy_code::GreedyCode;
pub use indexer::PatternIndexer;
pub use random_code::{RandomCode, RandomCodeParams};
pub use star::{star_count, StarIter};
pub use subsets::{subsets_of_weight, FixedWeightIter};
