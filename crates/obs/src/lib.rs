#![deny(missing_docs)]
//! `pfe-obs` — zero-dependency observability primitives for the serving
//! path: lock-free counters and gauges, log-bucketed latency histograms
//! with p50/p90/p99/max extraction, a lightweight span API, and a
//! ring-buffered slow-query log — all behind one named [`Recorder`]
//! registry that renders to Prometheus text exposition.
//!
//! Every serving crate (`pfe-engine`, `pfe-window`, `pfe-server`) threads
//! one shared `Arc<Recorder>` through its hot path; the legacy stat
//! structs (`EngineStats`, `CacheStats`, `server_stats`) are *views* read
//! back out of this registry, so the `metrics` wire op, the Prometheus
//! endpoint, and the line-protocol stats ops can never disagree.
//!
//! ```
//! use pfe_obs::Recorder;
//! use std::sync::Arc;
//!
//! let rec = Arc::new(Recorder::new());
//! rec.counter("requests").inc();
//! rec.gauge("in_flight").set(3);
//! {
//!     let _span = rec.span("plan"); // records elapsed ns into the
//!                                   // "plan" histogram on drop
//! }
//! let snap = rec.histogram("plan").snapshot();
//! assert_eq!(snap.count, 1);
//! assert!(rec.render_prometheus("pfe").contains("pfe_requests_total 1"));
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

mod trace;

pub use trace::{
    chrome_trace_json, AttrValue, CompletedTrace, SpanGuard, SpanRecord, TraceContext, TraceHandle,
    TraceStore, MAX_SPAN_ATTRS, TRACE_STORE_CAPACITY,
};

/// A monotonically increasing counter (lock-free).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A detached counter (not registered anywhere) — useful as a default
    /// before a [`Recorder`] handle is installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A detached gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at 0 via wrapping guard: concurrent
    /// decrements below zero clamp on read).
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value (a transient underflow from racing `sub`s reads as
    /// 0 rather than a huge number).
    pub fn get(&self) -> u64 {
        let v = self.0.load(Ordering::Relaxed);
        if v > u64::MAX / 2 {
            0
        } else {
            v
        }
    }
}

/// Total histogram buckets: values 0–15 exactly, then four sub-buckets
/// per power of two (≤ 25% relative bucket width) up to `u64::MAX`.
const BUCKETS: usize = 256;

fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let o = 63 - v.leading_zeros() as usize; // v in [2^o, 2^(o+1)), o >= 4
    let sub = ((v >> (o - 2)) & 3) as usize;
    16 + (o - 4) * 4 + sub
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i < 16 {
        return i as u64;
    }
    let o = 4 + (i - 16) / 4;
    let sub = ((i - 16) % 4) as u128;
    let ub = (1u128 << o) + (sub + 1) * (1u128 << (o - 2)) - 1;
    ub.min(u64::MAX as u128) as u64
}

/// A lock-free log-bucketed histogram of nonnegative integer values
/// (typically latencies in nanoseconds).
///
/// Values 0–15 are recorded exactly; above that, buckets are
/// quarter-powers-of-two, so quantiles resolve to within 25% of the true
/// value. `max` is tracked exactly. All updates are relaxed atomic adds —
/// no locks on the hot path.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={}, max={})",
            s.count, s.p50, s.max
        )
    }
}

/// A point-in-time read of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median (bucket-resolved, capped at `max`).
    pub p50: u64,
    /// 90th percentile (bucket-resolved, capped at `max`).
    pub p90: u64,
    /// 99th percentile (bucket-resolved, capped at `max`).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Histogram {
    /// A detached histogram (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Read counts, max, and the standard quantiles in one pass.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            // Rank of the q-quantile among `total` ordered samples.
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    /// Nonzero buckets as `(upper_bound, cumulative_count)` pairs — the
    /// shape Prometheus `_bucket{le=...}` lines want.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cum += c;
                out.push((bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

/// An RAII timer: records elapsed nanoseconds into its histogram when
/// dropped. Created by [`Recorder::span`] or [`Span::on`].
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
}

impl Span {
    /// Start a span recording into an explicit histogram handle (avoids
    /// the registry lookup of [`Recorder::span`] on hot paths).
    pub fn on(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// One slow-operation record: what ran, how long it took, and free-form
/// provenance detail (query key, covering window, stage breakdown, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// What was slow (an op or stage name).
    pub what: String,
    /// Wall-clock duration in microseconds.
    pub micros: u64,
    /// Ordered `(key, value)` detail pairs.
    pub detail: Vec<(String, String)>,
}

/// A bounded ring buffer of [`SlowEntry`] records, gated by a runtime
/// threshold (`0` = disabled). The threshold check is one relaxed atomic
/// load, so a disabled log costs nothing on the hot path; detail strings
/// are only built when an entry is actually logged.
pub struct SlowLog {
    threshold_ms: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowLog {
    /// A slow log keeping the most recent `capacity` entries, initially
    /// disabled.
    pub fn new(capacity: usize) -> Self {
        Self {
            threshold_ms: AtomicU64::new(0),
            capacity,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Set the slowness threshold in milliseconds (`0` disables logging).
    pub fn set_threshold_ms(&self, ms: u64) {
        self.threshold_ms.store(ms, Ordering::Relaxed);
    }

    /// The current threshold in milliseconds (`0` = disabled).
    pub fn threshold_ms(&self) -> u64 {
        self.threshold_ms.load(Ordering::Relaxed)
    }

    /// Log `what` if `elapsed` meets the threshold; `detail` is only
    /// invoked when the entry is recorded. Returns whether it was logged.
    pub fn record(
        &self,
        what: &str,
        elapsed: Duration,
        detail: impl FnOnce() -> Vec<(String, String)>,
    ) -> bool {
        let ms = self.threshold_ms.load(Ordering::Relaxed);
        if ms == 0 || elapsed < Duration::from_millis(ms) {
            return false;
        }
        let entry = SlowEntry {
            what: what.to_string(),
            micros: elapsed.as_micros().min(u64::MAX as u128) as u64,
            detail: detail(),
        };
        let mut ring = self.ring.lock().expect("slow log lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
        true
    }

    /// Log an entry unconditionally, bypassing the duration threshold —
    /// for operational anomalies that are problems regardless of speed
    /// (a replica rejecting a corrupt snapshot, say). `micros` is 0: the
    /// entry records an event, not a duration.
    pub fn note(&self, what: &str, detail: Vec<(String, String)>) {
        let entry = SlowEntry {
            what: what.to_string(),
            micros: 0,
            detail,
        };
        let mut ring = self.ring.lock().expect("slow log lock");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.ring
            .lock()
            .expect("slow log lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow log lock").len()
    }

    /// Whether no entries are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How many slow-log entries a [`Recorder`] retains.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// The named metric registry: counters, gauges, histograms, and the slow
/// log, shared across threads behind an `Arc`.
///
/// Handles are registered on first use — `recorder.counter("x")` returns
/// the *same* `Arc<Counter>` every time, so a component restarted against
/// the same recorder continues the existing series (registry lifetime is
/// process lifetime, not component lifetime). Hot paths should resolve
/// handles once and keep the `Arc`; the lookup itself is one read-lock +
/// hash.
#[derive(Default)]
pub struct Recorder {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    /// Constant labeled info gauges (`build_info`-style): metric name →
    /// ordered label pairs; rendered with value 1.
    infos: RwLock<BTreeMap<String, Vec<(String, String)>>>,
    slow: Option<SlowLog>,
    traces: TraceStore,
}

impl Recorder {
    /// An empty registry (with a [`SLOW_LOG_CAPACITY`]-entry slow log,
    /// disabled until a threshold is set, and a
    /// [`TRACE_STORE_CAPACITY`]-trace store sampling every trace).
    pub fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            infos: RwLock::new(BTreeMap::new()),
            slow: Some(SlowLog::new(SLOW_LOG_CAPACITY)),
            traces: TraceStore::default(),
        }
    }

    fn get_or_register<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(v) = map.read().expect("registry lock").get(name) {
            return Arc::clone(v);
        }
        let mut w = map.write().expect("registry lock");
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_register(&self.counters, name)
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_register(&self.gauges, name)
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_register(&self.histograms, name)
    }

    /// Start a span that records its elapsed nanoseconds into the `name`
    /// histogram when dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::on(self.histogram(name))
    }

    /// The slow-operation ring log.
    pub fn slow_log(&self) -> &SlowLog {
        self.slow
            .as_ref()
            .expect("Recorder::new installs a slow log")
    }

    /// The request-trace store (see [`TraceStore`]).
    pub fn trace_store(&self) -> &TraceStore {
        &self.traces
    }

    /// Begin a request trace on this recorder's store — shorthand for
    /// `trace_store().begin(ctx)`.
    pub fn begin_trace(&self, ctx: Option<TraceContext>) -> TraceHandle {
        self.traces.begin(ctx)
    }

    /// Render retained completed traces as Chrome trace-event JSON
    /// (see [`chrome_trace_json`]); loadable in `chrome://tracing` and
    /// Perfetto.
    pub fn render_chrome_trace(&self) -> String {
        chrome_trace_json(&self.traces.last(usize::MAX))
    }

    /// Register (or replace) a constant labeled info gauge — the
    /// `build_info` idiom: rendered as `name{labels…} 1` in Prometheus
    /// exposition, and surfaced by [`infos_snapshot`](Self::infos_snapshot)
    /// for JSON metric views.
    pub fn set_info(&self, name: &str, labels: &[(&str, &str)]) {
        self.infos.write().expect("registry lock").insert(
            name.to_string(),
            labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        );
    }

    /// All info gauges as sorted `(name, labels)` pairs.
    pub fn infos_snapshot(&self) -> Vec<(String, Vec<(String, String)>)> {
        self.infos
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// All counters as sorted `(name, value)` pairs.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All gauges as sorted `(name, value)` pairs.
    pub fn gauges_snapshot(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// All histograms as sorted `(name, snapshot)` pairs.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Render the whole registry in Prometheus text exposition format
    /// (version 0.0.4). `prefix` namespaces every metric (`pfe` →
    /// `pfe_engine_queries_f0_total …`); counters get the conventional
    /// `_total` suffix, histograms emit cumulative `_bucket{le=…}` lines
    /// (nonzero buckets only) plus `_sum`/`_count`.
    pub fn render_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        let name = |metric: &str| -> String {
            if prefix.is_empty() {
                sanitize_metric_name(metric)
            } else {
                sanitize_metric_name(&format!("{prefix}_{metric}"))
            }
        };
        for (k, v) in self.counters_snapshot() {
            let n = format!("{}_total", name(&k));
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (k, v) in self.gauges_snapshot() {
            let n = name(&k);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (k, labels) in self.infos_snapshot() {
            let n = name(&k);
            let rendered: Vec<String> = labels
                .iter()
                .map(|(lk, lv)| {
                    let v = lv.replace('\\', "\\\\").replace('"', "\\\"");
                    format!("{}=\"{v}\"", sanitize_metric_name(lk))
                })
                .collect();
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n}{{{}}} 1\n",
                rendered.join(",")
            ));
        }
        let hists: Vec<(String, Arc<Histogram>)> = self
            .histograms
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect();
        for (k, h) in hists {
            let n = name(&k);
            let snap = h.snapshot();
            out.push_str(&format!("# TYPE {n} histogram\n"));
            for (ub, cum) in h.cumulative_buckets() {
                out.push_str(&format!("{n}_bucket{{le=\"{ub}\"}} {cum}\n"));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
            out.push_str(&format!("{n}_sum {}\n", snap.sum));
            out.push_str(&format!("{n}_count {}\n", snap.count));
        }
        out
    }
}

/// Map an arbitrary name onto the Prometheus metric-name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): invalid characters become `_`, a
/// leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        // Transient underflow clamps to 0 instead of wrapping huge.
        g.sub(100);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn bucket_roundtrip_bounds_every_value() {
        for v in (0u64..4096).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "v={v} above its bucket");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "v={v} fits a lower bucket");
            }
            // Quarter-octave resolution: upper bound within 25% above v.
            if v >= 16 && bucket_upper_bound(i) != u64::MAX {
                assert!(bucket_upper_bound(i) as f64 <= v as f64 * 1.25 + 1.0);
            }
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_exact() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        // Bucket-resolved quantiles are within 25% above the true value
        // and never exceed the recorded max.
        assert!((50..=63).contains(&s.p50), "p50={}", s.p50);
        assert!((90..=100).contains(&s.p90), "p90={}", s.p90);
        assert!((99..=100).contains(&s.p99), "p99={}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_single_value_histograms() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(7);
        let s = h.snapshot();
        assert_eq!((s.count, s.p50, s.p99, s.max), (1, 7, 7, 7));
    }

    #[test]
    fn histogram_concurrent_records_lose_nothing() {
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i % 997);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().expect("no panic");
        }
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn recorder_returns_the_same_handle_per_name() {
        let rec = Recorder::new();
        rec.counter("x").inc();
        rec.counter("x").inc();
        assert_eq!(rec.counter("x").get(), 2);
        assert_eq!(rec.counters_snapshot(), vec![("x".to_string(), 2)]);
        // Distinct kinds under one name do not collide.
        rec.gauge("x").set(9);
        assert_eq!(rec.gauges_snapshot(), vec![("x".to_string(), 9)]);
    }

    #[test]
    fn span_records_elapsed_into_named_histogram() {
        let rec = Recorder::new();
        {
            let span = rec.span("plan");
            std::thread::sleep(Duration::from_millis(2));
            assert!(span.elapsed() >= Duration::from_millis(2));
        }
        let s = rec.histogram("plan").snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 2_000_000, "recorded {} ns", s.max);
    }

    #[test]
    fn slow_log_threshold_ring_and_lazy_detail() {
        let log = SlowLog::new(2);
        // Disabled: nothing is logged, detail closure never runs.
        assert!(!log.record("q", Duration::from_secs(5), || unreachable!()));
        log.set_threshold_ms(10);
        assert!(!log.record("fast", Duration::from_millis(3), Vec::new));
        for i in 0..3 {
            assert!(
                log.record(&format!("q{i}"), Duration::from_millis(20 + i), || vec![(
                    "slot".into(),
                    i.to_string()
                )])
            );
        }
        // Capacity 2: the oldest entry fell off.
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].what, "q1");
        assert_eq!(entries[1].what, "q2");
        assert!(entries[1].micros >= 22_000);
        assert_eq!(
            entries[1].detail,
            vec![("slot".to_string(), "2".to_string())]
        );
    }

    #[test]
    fn prometheus_rendering_follows_the_grammar() {
        let rec = Recorder::new();
        rec.counter("requests").add(3);
        rec.gauge("open").set(2);
        rec.histogram("latency_ns").record(100);
        rec.histogram("latency_ns").record(200);
        let text = rec.render_prometheus("pfe");
        assert!(text.contains("# TYPE pfe_requests_total counter"));
        assert!(text.contains("pfe_requests_total 3"));
        assert!(text.contains("# TYPE pfe_open gauge"));
        assert!(text.contains("pfe_open 2"));
        assert!(text.contains("# TYPE pfe_latency_ns histogram"));
        assert!(text.contains("pfe_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("pfe_latency_ns_sum 300"));
        assert!(text.contains("pfe_latency_ns_count 2"));
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once(' ').expect("name value");
            let bare = name.split('{').next().expect("metric name");
            assert!(bare
                .chars()
                .enumerate()
                .all(|(i, c)| c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit())));
            assert!(value.parse::<f64>().is_ok(), "bad value in {line}");
        }
        // Cumulative bucket counts are monotone and end at count.
        let cum: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("pfe_latency_ns_bucket"))
            .map(|l| {
                l.split(' ')
                    .next_back()
                    .expect("count")
                    .parse()
                    .expect("u64")
            })
            .collect();
        assert!(cum.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cum.last().expect("buckets"), 2);
    }

    #[test]
    fn info_gauges_render_with_labels() {
        let rec = Recorder::new();
        rec.set_info(
            "build_info",
            &[("version", "1.2.3"), ("statistics", "f0|fp")],
        );
        let text = rec.render_prometheus("pfe");
        assert!(text.contains("# TYPE pfe_build_info gauge"));
        assert!(text.contains("pfe_build_info{version=\"1.2.3\",statistics=\"f0|fp\"} 1"));
        // Replacement, not accumulation.
        rec.set_info("build_info", &[("version", "2.0.0")]);
        assert_eq!(
            rec.infos_snapshot(),
            vec![(
                "build_info".to_string(),
                vec![("version".to_string(), "2.0.0".to_string())]
            )]
        );
        // Quotes in label values escape instead of breaking the line.
        rec.set_info("weird", &[("v", "a\"b\\c")]);
        assert!(rec
            .render_prometheus("pfe")
            .contains("pfe_weird{v=\"a\\\"b\\\\c\"} 1"));
    }

    #[test]
    fn recorder_trace_store_round_trip() {
        let rec = Recorder::new();
        let trace = rec.begin_trace(Some(TraceContext {
            trace_id: 5,
            parent: None,
        }));
        drop(trace.span("session"));
        rec.trace_store().finish(trace);
        assert_eq!(rec.trace_store().lookup(5).expect("kept").spans.len(), 1);
        assert!(rec.render_chrome_trace().contains("\"name\":\"session\""));
    }

    #[test]
    fn sanitize_covers_bad_names() {
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("9lead"), "_9lead");
        assert_eq!(sanitize_metric_name("sp ace-dash.dot"), "sp_ace_dash_dot");
        assert_eq!(sanitize_metric_name(""), "_");
    }
}
