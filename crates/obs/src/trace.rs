//! Request-scoped tracing: wire-propagated trace contexts, per-request
//! span trees, and a bounded head-sampled store of completed traces.
//!
//! A trace follows *one* request through every layer — session →
//! dispatch → plan → cache probe → compute → materialize (plus window
//! resolution, shard channel hops, and ingest chunks) — where the
//! aggregate [`Recorder`](crate::Recorder) series only say how the
//! fleet of requests behaved. The pieces:
//!
//! - [`TraceContext`]: the wire-propagated identity (128-bit trace id +
//!   optional parent span id) a client may attach to any request.
//! - [`TraceHandle`] / [`SpanGuard`]: the instrumentation surface. A
//!   handle is cheap to clone and thread through call stacks; opening a
//!   span borrows the handle's parent, and `guard.handle()` yields a
//!   child-parented handle for the next layer down. A disabled handle
//!   makes every operation a no-op, so untraced hot paths pay one
//!   branch.
//! - [`TraceStore`]: a bounded ring of [`CompletedTrace`]s with
//!   head-sampling — keep 1-in-N traces (N = 0 disables tracing
//!   entirely), always keep traces marked slow
//!   ([`TraceHandle::mark_slow`]) and traces whose id the client
//!   supplied (an explicit id is an explicit request to keep it).
//! - [`chrome_trace_json`]: completed traces as Chrome trace-event JSON
//!   (`[{"ph":"X","ts":…,"dur":…,…}]`), loadable in `chrome://tracing`
//!   and Perfetto.
//!
//! ```
//! use pfe_obs::{TraceContext, TraceStore};
//!
//! let store = TraceStore::new(16);
//! let trace = store.begin(Some(TraceContext { trace_id: 0xabc, parent: None }));
//! {
//!     let mut session = trace.span("session");
//!     session.attr("peer", "example");
//!     let session_handle = session.handle();
//!     let mut dispatch = session_handle.span("dispatch");
//!     dispatch.attr("op", "f0");
//! } // spans record on drop, innermost first
//! store.finish(trace);
//! let done = store.lookup(0xabc).expect("kept: client-supplied id");
//! assert_eq!(done.spans.len(), 2);
//! assert_eq!(done.spans[0].name, "dispatch"); // child closed first
//! assert_eq!(done.spans[1].parent, None);     // session is the root
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The process-wide monotonic clock base every span timestamp is
/// relative to, so spans from different threads and layers order
/// correctly within one process.
///
/// On x86-64 this reads the invariant TSC directly (a handful of
/// cycles) and converts with a once-calibrated fixed-point ratio —
/// span open/close is the tracing hot path and `clock_gettime` would
/// otherwise be its single largest cost. Elsewhere it falls back to
/// [`Instant`].
#[cfg(target_arch = "x86_64")]
fn now_ns() -> u64 {
    // (tsc_base, ns per 2^24 ticks)
    static CAL: OnceLock<(u64, u64)> = OnceLock::new();
    let (base, ns_per_tick_q24) = *CAL.get_or_init(|| {
        let t0 = Instant::now();
        let tsc0 = unsafe { core::arch::x86_64::_rdtsc() };
        // Spin long enough for a stable ratio; one-time cost at the
        // first span of the process.
        while t0.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let tsc1 = unsafe { core::arch::x86_64::_rdtsc() };
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        let ticks = tsc1.saturating_sub(tsc0).max(1);
        let q24 = ((elapsed_ns as u128) << 24) / ticks as u128;
        (tsc0, (q24 as u64).max(1))
    });
    let ticks = unsafe { core::arch::x86_64::_rdtsc() }.saturating_sub(base);
    (((ticks as u128) * ns_per_tick_q24 as u128) >> 24) as u64
}

#[cfg(not(target_arch = "x86_64"))]
fn now_ns() -> u64 {
    static BASE: OnceLock<Instant> = OnceLock::new();
    let base = *BASE.get_or_init(Instant::now);
    Instant::now()
        .duration_since(base)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// The wire-propagated identity of a trace: which trace a request
/// belongs to, and (optionally) which span in that trace is its parent.
///
/// Clients attach one via the optional `"trace"` field on any wire op —
/// either a bare hex trace id or `{"id": "…", "parent": "…"}`. The
/// server generates a fresh id when the client sends none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit trace id (rendered as 32 lowercase hex digits on the
    /// wire).
    pub trace_id: u128,
    /// Parent span id within the trace, when the request continues a
    /// span opened elsewhere (e.g. a client-side root span).
    pub parent: Option<u64>,
}

impl TraceContext {
    /// Parse a hex trace id (with or without a `0x` prefix).
    pub fn parse_id(s: &str) -> Option<u128> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok()
    }

    /// Render a trace id the way the wire protocol does: 32 lowercase
    /// hex digits.
    pub fn format_id(trace_id: u128) -> String {
        format!("{trace_id:032x}")
    }
}

/// A span attribute value, stored unformatted: the recording hot path
/// keeps numbers as numbers and static strings as pointers, so
/// attaching an attribute never allocates unless the value itself is
/// an owned `String`. Rendering to text happens only on the export
/// paths (wire JSON, Chrome trace).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A static string (stage labels, formats, statistic names).
    Str(&'static str),
    /// An owned string (peer addresses, client-supplied text).
    Text(String),
    /// An unsigned integer (counts, ids, epochs, fingerprints).
    U64(u64),
    /// An unsigned integer rendered as `0x…` hex (column masks), so hot
    /// paths need not `format!` one into a string.
    Hex(u64),
    /// A signed integer.
    I64(i64),
    /// A float (estimates, rates).
    F64(f64),
    /// A boolean (cache hit, cached).
    Bool(bool),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::Text(s) => f.write_str(s),
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Hex(v) => write!(f, "{v:#x}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&'static str> for AttrValue {
    fn from(v: &'static str) -> Self {
        AttrValue::Str(v)
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(i64::from(v))
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// One finished span: a named interval within a trace, with its parent
/// link and ordered key/value attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span id, unique within its trace.
    pub id: u64,
    /// Parent span id (`None` for a root span).
    pub parent: Option<u64>,
    /// Stage name (`session`, `dispatch`, `plan`, `compute`, …).
    /// Static so the hot recording path never allocates for it.
    pub name: &'static str,
    /// Start, in monotonic nanoseconds since the process trace clock
    /// base.
    pub start_ns: u64,
    /// End, same clock as `start_ns` (`end_ns >= start_ns`).
    pub end_ns: u64,
    /// Offset of this span's attributes in the owning trace's shared
    /// attribute arena ([`CompletedTrace::attrs_of`] resolves them).
    /// One arena per trace keeps per-span attribute storage off the
    /// recording hot path entirely.
    attr_start: u32,
    /// Number of attributes in the arena run starting at `attr_start`.
    attr_len: u32,
}

/// One completed request trace: every span recorded under one trace id.
///
/// Spans appear in completion (drop) order — children before their
/// parents — and every non-root span's parent id refers to another span
/// of the same trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// The trace's 128-bit id.
    pub trace_id: u128,
    /// Whether the trace was kept because a slow-log-qualifying request
    /// marked it (rather than by head-sampling).
    pub slow: bool,
    /// All recorded spans, completion order.
    pub spans: Vec<SpanRecord>,
    /// The trace-wide attribute arena the spans' `(attr_start,
    /// attr_len)` runs index into.
    attrs: Vec<(&'static str, AttrValue)>,
}

impl CompletedTrace {
    /// The ordered `(key, value)` attributes of one of this trace's
    /// spans (op, statistic, mask, epoch, cache hit, shard, chunk, …).
    pub fn attrs_of(&self, span: &SpanRecord) -> &[(&'static str, AttrValue)] {
        let start = span.attr_start as usize;
        &self.attrs[start..start + span.attr_len as usize]
    }
}

/// The span list and attribute arena of one trace: one allocation pair
/// per trace (not per span), recorded under one lock and recycled
/// through the store's buffer pool.
#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<SpanRecord>,
    attrs: Vec<(&'static str, AttrValue)>,
}

/// The shared mutable state of one in-flight trace.
#[derive(Debug)]
struct ActiveTrace {
    trace_id: u128,
    /// Next span id to hand out (span ids start at 1).
    next_id: AtomicU64,
    buf: Mutex<TraceBuf>,
    /// Head-sampling said keep this one.
    sampled: bool,
    /// The id came from the client, so a retained trace with the same
    /// id may already exist (server-generated ids never collide).
    client_id: bool,
    /// A slow-log-qualifying request marked it; overrides sampling.
    slow: AtomicBool,
}

/// A cheap, cloneable reference into an in-flight trace, carrying the
/// parent span id that new spans attach under.
///
/// The default / [`disabled`](TraceHandle::disabled) handle makes every
/// operation a no-op: untraced code paths thread the same calls and pay
/// one `Option` branch.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle {
    trace: Option<Arc<ActiveTrace>>,
    parent: Option<u64>,
}

impl TraceHandle {
    /// A handle that records nothing (all operations are no-ops).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether spans opened on this handle are recorded.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace id, when enabled.
    pub fn trace_id(&self) -> Option<u128> {
        self.trace.as_ref().map(|t| t.trace_id)
    }

    /// Open a span named `name` under this handle's parent. The span
    /// records into the trace when the guard drops.
    ///
    /// The guard borrows the handle rather than bumping the trace's
    /// refcount: span open/close is the hot path and the borrow keeps
    /// it free of atomic traffic.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        match &self.trace {
            None => SpanGuard {
                trace: None,
                id: 0,
                parent: None,
                name,
                start_ns: 0,
                attr_len: 0,
                attrs: Default::default(),
            },
            Some(t) => SpanGuard {
                id: t.next_id.fetch_add(1, Ordering::Relaxed),
                trace: Some(t),
                parent: self.parent,
                name,
                start_ns: now_ns(),
                attr_len: 0,
                attrs: Default::default(),
            },
        }
    }

    /// Whether the trace's id was supplied by the client — an explicit
    /// request to keep (and echo) it.
    pub fn client_supplied(&self) -> bool {
        self.trace.as_ref().is_some_and(|t| t.client_id)
    }

    /// Whether the trace has been marked slow-log-qualifying
    /// ([`mark_slow`](TraceHandle::mark_slow)).
    pub fn is_slow(&self) -> bool {
        self.trace
            .as_ref()
            .is_some_and(|t| t.slow.load(Ordering::Relaxed))
    }

    /// Mark the trace as slow-log-qualifying: it is kept regardless of
    /// the head-sampling decision.
    pub fn mark_slow(&self) {
        if let Some(t) = &self.trace {
            t.slow.store(true, Ordering::Relaxed);
        }
    }
}

/// The most attributes one span records; later [`SpanGuard::attr`]
/// calls are dropped. The cap lets attributes live inline in the guard
/// (on the caller's stack) until the span closes, so attaching one
/// never allocates.
pub const MAX_SPAN_ATTRS: usize = 8;

/// An open span: closes (and records) when dropped. Attributes are
/// attached while open; [`handle`](SpanGuard::handle) derives a
/// [`TraceHandle`] whose spans become children of this one.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    trace: Option<&'a Arc<ActiveTrace>>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_ns: u64,
    attr_len: u8,
    attrs: [Option<(&'static str, AttrValue)>; MAX_SPAN_ATTRS],
}

impl SpanGuard<'_> {
    /// Attach one `(key, value)` attribute (no-op when disabled; at
    /// most [`MAX_SPAN_ATTRS`] stick, extras are dropped).
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.trace.is_some() && (self.attr_len as usize) < MAX_SPAN_ATTRS {
            self.attrs[self.attr_len as usize] = Some((key, value.into()));
            self.attr_len += 1;
        }
    }

    /// A handle whose spans become children of this span.
    pub fn handle(&self) -> TraceHandle {
        TraceHandle {
            trace: self.trace.cloned(),
            parent: self.trace.map(|_| self.id),
        }
    }

    /// Whether this span records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.trace {
            let end_ns = now_ns().max(self.start_ns);
            let mut buf = t.buf.lock().expect("trace span lock");
            let attr_start = buf.attrs.len() as u32;
            for slot in &mut self.attrs[..self.attr_len as usize] {
                buf.attrs.push(slot.take().expect("attr slot filled"));
            }
            buf.spans.push(SpanRecord {
                id: self.id,
                parent: self.parent,
                name: self.name,
                start_ns: self.start_ns,
                end_ns,
                attr_start,
                attr_len: u32::from(self.attr_len),
            });
        }
    }
}

/// How many completed traces a [`TraceStore`] retains by default.
pub const TRACE_STORE_CAPACITY: usize = 256;

/// A bounded ring of completed traces with head-sampling.
///
/// [`begin`](TraceStore::begin) decides at the head whether a trace is
/// kept: every `sample`-th server-initiated trace is (1-in-N; `N = 0`
/// disables tracing entirely, `N = 1` keeps everything), traces with a
/// client-supplied [`TraceContext`] always are, and a trace marked slow
/// mid-flight ([`TraceHandle::mark_slow`]) is kept regardless of the
/// head decision. Unkept traces still collect spans (the slow override
/// needs them) but are dropped at [`finish`](TraceStore::finish).
#[derive(Debug)]
pub struct TraceStore {
    capacity: usize,
    /// Keep 1-in-`sample` (0 = tracing disabled).
    sample: AtomicU64,
    /// Server-initiated traces begun so far (the sampling counter).
    seq: AtomicU64,
    done: Mutex<VecDeque<CompletedTrace>>,
    /// Recycled span/attr buffers: traces evicted from the ring (and
    /// unkept traces) donate their allocations to the next
    /// [`begin`](TraceStore::begin), so steady-state tracing performs
    /// no per-request buffer allocation.
    pool: Mutex<Vec<TraceBuf>>,
}

impl Default for TraceStore {
    fn default() -> Self {
        Self::new(TRACE_STORE_CAPACITY)
    }
}

impl TraceStore {
    /// A store retaining the most recent `capacity` kept traces, with
    /// sampling 1 (keep every trace).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            sample: AtomicU64::new(1),
            seq: AtomicU64::new(0),
            done: Mutex::new(VecDeque::new()),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Set the head-sampling rate: keep 1-in-`n` traces (`0` disables
    /// tracing, `1` keeps all).
    pub fn set_sample(&self, n: u64) {
        self.sample.store(n, Ordering::Relaxed);
    }

    /// The current head-sampling rate.
    pub fn sample(&self) -> u64 {
        self.sample.load(Ordering::Relaxed)
    }

    /// Begin a trace. With a client-supplied `ctx` the trace keeps that
    /// id (and is always retained); otherwise a fresh id is generated
    /// and the head-sampler decides retention. Returns a disabled
    /// handle when tracing is off (`sample == 0`).
    pub fn begin(&self, ctx: Option<TraceContext>) -> TraceHandle {
        let n = self.sample.load(Ordering::Relaxed);
        if n == 0 {
            return TraceHandle::disabled();
        }
        let (trace_id, parent, sampled, client_id) = match ctx {
            Some(c) => (c.trace_id, c.parent, true, true),
            None => {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                (generate_trace_id(seq), None, seq.is_multiple_of(n), false)
            }
        };
        // Pooling is opportunistic: under contention a fresh allocation
        // is cheaper than waiting on the pool lock.
        let buf = self
            .pool
            .try_lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_else(|| {
                // Typical requests record well under 8 spans; sizing
                // fresh buffers up front keeps regrowth off the hot
                // path.
                TraceBuf {
                    spans: Vec::with_capacity(8),
                    attrs: Vec::with_capacity(16),
                }
            });
        TraceHandle {
            trace: Some(Arc::new(ActiveTrace {
                trace_id,
                next_id: AtomicU64::new(1),
                buf: Mutex::new(buf),
                sampled,
                client_id,
                slow: AtomicBool::new(false),
            })),
            parent,
        }
    }

    /// Finish a trace begun on this store: drain its spans and retain
    /// the completed trace if the head-sampler kept it or it was marked
    /// slow. Open [`SpanGuard`]s must be dropped first — spans still
    /// open at finish are lost.
    pub fn finish(&self, handle: TraceHandle) {
        let Some(t) = handle.trace else { return };
        // In the normal request path every guard and derived handle is
        // gone by finish, so the `Arc` unwraps and the buffers move out
        // without touching the span lock; a trace still shared (e.g. a
        // clone parked in a long-lived reader) drains under the lock.
        let (trace_id, sampled, client_id, slow, buf) = match Arc::try_unwrap(t) {
            Ok(t) => (
                t.trace_id,
                t.sampled,
                t.client_id,
                t.slow.into_inner(),
                t.buf.into_inner().expect("trace span lock"),
            ),
            Err(t) => (
                t.trace_id,
                t.sampled,
                t.client_id,
                t.slow.load(Ordering::Relaxed),
                std::mem::take(&mut *t.buf.lock().expect("trace span lock")),
            ),
        };
        if !sampled && !slow {
            // Unkept: recycle the buffers straight back to the pool.
            self.recycle(buf);
            return;
        }
        let done = CompletedTrace {
            trace_id,
            slow,
            spans: buf.spans,
            attrs: buf.attrs,
        };
        // The ring lock is shared by every worker thread: hold it only
        // for the pointer shuffles and recycle the evicted capture
        // after unlocking.
        let evicted = {
            let mut ring = self.done.lock().expect("trace store lock");
            // A re-used trace id (e.g. a client tracing several requests
            // under one id) replaces the older capture. Server-generated
            // ids are sequence-derived and never collide, so only
            // client-supplied ids pay the dedup scan.
            if client_id {
                ring.retain(|c| c.trace_id != done.trace_id);
            }
            let evicted = if ring.len() == self.capacity {
                ring.pop_front()
            } else {
                None
            };
            ring.push_back(done);
            evicted
        };
        if let Some(old) = evicted {
            self.recycle(TraceBuf {
                spans: old.spans,
                attrs: old.attrs,
            });
        }
    }

    /// Return a trace's buffers to the pool (bounded so a burst of huge
    /// traces cannot pin memory forever; skipped outright when the pool
    /// lock is contended — dropping the buffers is cheaper than
    /// waiting).
    fn recycle(&self, mut buf: TraceBuf) {
        const POOL_CAP: usize = 64;
        buf.spans.clear();
        buf.attrs.clear();
        if let Ok(mut pool) = self.pool.try_lock() {
            if pool.len() < POOL_CAP {
                pool.push(buf);
            }
        }
    }

    /// The completed trace with `trace_id`, if retained.
    pub fn lookup(&self, trace_id: u128) -> Option<CompletedTrace> {
        self.done
            .lock()
            .expect("trace store lock")
            .iter()
            .find(|c| c.trace_id == trace_id)
            .cloned()
    }

    /// The most recent `n` completed traces, newest last.
    pub fn last(&self, n: usize) -> Vec<CompletedTrace> {
        let ring = self.done.lock().expect("trace store lock");
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Number of retained completed traces.
    pub fn len(&self) -> usize {
        self.done.lock().expect("trace store lock").len()
    }

    /// Whether no completed traces are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Derive a well-mixed 128-bit trace id from the store's sequence
/// number and a once-sampled wall clock (SplitMix64 finalizer on both
/// halves). The wall clock seeds distinctness *across* processes; the
/// sequence number guarantees it within one (the mixer is a bijection,
/// so distinct `seq` always yields distinct ids). Sampling the wall
/// clock once keeps the per-request path down to one atomic increment.
fn generate_trace_id(seq: u64) -> u128 {
    static WALL: OnceLock<u64> = OnceLock::new();
    let wall = *WALL.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    });
    let mix = |mut z: u64| {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let hi = mix(wall ^ seq.rotate_left(32));
    let lo = mix(seq ^ wall.rotate_left(17) ^ 0x5851_f42d_4c95_7f2d);
    ((hi as u128) << 64) | lo as u128
}

/// Minimal JSON string escaping for span names and attribute values.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render completed traces as Chrome trace-event JSON: an array of
/// complete (`"ph":"X"`) events with microsecond `ts`/`dur`, loadable
/// in `chrome://tracing` and Perfetto. Each trace renders as its own
/// `tid` so concurrent requests stack side by side; span attributes
/// (plus the trace id and parent span) travel in `args`.
pub fn chrome_trace_json(traces: &[CompletedTrace]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (tid, trace) in traces.iter().enumerate() {
        for s in &trace.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let dur_us = (s.end_ns - s.start_ns) as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"pfe\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{",
                json_escape(s.name),
                s.start_ns as f64 / 1000.0,
                dur_us,
                tid + 1,
            ));
            out.push_str(&format!(
                "\"trace_id\":\"{}\",\"span\":{}",
                TraceContext::format_id(trace.trace_id),
                s.id
            ));
            if let Some(p) = s.parent {
                out.push_str(&format!(",\"parent\":{p}"));
            }
            for (k, v) in trace.attrs_of(s) {
                out.push_str(&format!(",\"{}\":", json_escape(k)));
                match v {
                    AttrValue::Str(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
                    AttrValue::Text(s) => out.push_str(&format!("\"{}\"", json_escape(s))),
                    AttrValue::U64(n) => out.push_str(&n.to_string()),
                    AttrValue::Hex(n) => out.push_str(&format!("\"{n:#x}\"")),
                    AttrValue::I64(n) => out.push_str(&n.to_string()),
                    AttrValue::F64(n) if n.is_finite() => out.push_str(&n.to_string()),
                    AttrValue::F64(_) => out.push_str("null"),
                    AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                }
            }
            out.push_str("}}");
        }
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_parse_and_format_roundtrip() {
        let id = 0xdead_beef_0102_0304_0506_0708_090a_0b0cu128;
        let s = TraceContext::format_id(id);
        assert_eq!(s.len(), 32);
        assert_eq!(TraceContext::parse_id(&s), Some(id));
        assert_eq!(TraceContext::parse_id("0xff"), Some(0xff));
        assert_eq!(TraceContext::parse_id(""), None);
        assert_eq!(TraceContext::parse_id("zz"), None);
        assert_eq!(TraceContext::parse_id(&"f".repeat(33)), None);
    }

    #[test]
    fn disabled_handle_is_a_no_op() {
        let h = TraceHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(h.trace_id(), None);
        let mut g = h.span("anything");
        g.attr("k", "v");
        assert!(!g.is_enabled());
        let child = g.handle();
        assert!(!child.is_enabled());
        h.mark_slow();
    }

    #[test]
    fn spans_nest_and_record_parent_links() {
        let store = TraceStore::new(4);
        let trace = store.begin(Some(TraceContext {
            trace_id: 7,
            parent: None,
        }));
        {
            let mut root = trace.span("session");
            root.attr("conn", 3u64);
            let child_handle = root.handle();
            {
                let mut child = child_handle.span("dispatch");
                child.attr("op", "f0");
                let grand_handle = child.handle();
                drop(grand_handle.span("plan"));
            }
            // Siblings share the parent.
            drop(child_handle.span("sibling"));
        }
        store.finish(trace);
        let done = store.lookup(7).expect("client-supplied id is kept");
        assert_eq!(done.spans.len(), 4);
        let by_name = |n: &str| done.spans.iter().find(|s| s.name == n).expect("span");
        let session = by_name("session");
        let dispatch = by_name("dispatch");
        let plan = by_name("plan");
        let sibling = by_name("sibling");
        assert_eq!(session.parent, None);
        assert_eq!(dispatch.parent, Some(session.id));
        assert_eq!(plan.parent, Some(dispatch.id));
        assert_eq!(sibling.parent, Some(session.id));
        assert_eq!(done.attrs_of(session), [("conn", AttrValue::U64(3))]);
        // Children nest within the parent interval.
        assert!(session.start_ns <= dispatch.start_ns);
        assert!(dispatch.end_ns <= session.end_ns);
        assert!(dispatch.start_ns <= plan.start_ns && plan.end_ns <= dispatch.end_ns);
        // Span ids are unique.
        let mut ids: Vec<u64> = done.spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn sampler_keeps_one_in_n_plus_slow_and_client_supplied() {
        let store = TraceStore::new(16);
        store.set_sample(1000);
        // Trace 0 is head-sampled (seq 0 % 1000 == 0); 1–4 are not.
        let ids: Vec<Option<u128>> = (0..5)
            .map(|i| {
                let t = store.begin(None);
                let id = t.trace_id();
                drop(t.span("work"));
                if i == 3 {
                    t.mark_slow(); // the slow override
                }
                store.finish(t);
                id
            })
            .collect();
        assert_eq!(store.len(), 2, "head sample + slow override");
        assert!(store.lookup(ids[0].unwrap()).is_some());
        let slow = store.lookup(ids[3].unwrap()).expect("slow trace kept");
        assert!(slow.slow);
        for &i in &[1usize, 2, 4] {
            assert!(store.lookup(ids[i].unwrap()).is_none(), "trace {i} dropped");
        }
        // Client-supplied ids bypass the sampler entirely.
        let t = store.begin(Some(TraceContext {
            trace_id: 42,
            parent: None,
        }));
        drop(t.span("explicit"));
        store.finish(t);
        assert!(store.lookup(42).is_some());
        // Sample 0 disables tracing: handles come back disabled.
        store.set_sample(0);
        assert!(!store.begin(None).is_enabled());
        assert!(!store
            .begin(Some(TraceContext {
                trace_id: 9,
                parent: None
            }))
            .is_enabled());
    }

    #[test]
    fn ring_evicts_oldest_and_replaces_reused_ids() {
        let store = TraceStore::new(2);
        for id in [1u128, 2, 3] {
            let t = store.begin(Some(TraceContext {
                trace_id: id,
                parent: None,
            }));
            drop(t.span("s"));
            store.finish(t);
        }
        assert_eq!(store.len(), 2);
        assert!(store.lookup(1).is_none(), "oldest evicted");
        assert_eq!(
            store
                .last(10)
                .iter()
                .map(|c| c.trace_id)
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(store.last(1)[0].trace_id, 3);
        // Re-finishing an id replaces the previous capture.
        let t = store.begin(Some(TraceContext {
            trace_id: 2,
            parent: None,
        }));
        drop(t.span("fresh"));
        drop(t.span("again"));
        store.finish(t);
        assert_eq!(store.len(), 2);
        assert_eq!(store.lookup(2).expect("kept").spans.len(), 2);
    }

    #[test]
    fn generated_ids_are_distinct() {
        let store = TraceStore::new(64);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..32 {
            let t = store.begin(None);
            assert!(seen.insert(t.trace_id().expect("enabled")));
            store.finish(t);
        }
    }

    #[test]
    fn chrome_trace_renders_complete_events() {
        let store = TraceStore::new(4);
        let trace = store.begin(Some(TraceContext {
            trace_id: 0xabc,
            parent: None,
        }));
        {
            let mut root = trace.span("session");
            root.attr("op", "f0");
            root.attr("quoted", "say \"hi\"\n");
            drop(root.handle().span("dispatch"));
        }
        store.finish(trace);
        let json = chrome_trace_json(&store.last(10));
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"session\""));
        assert!(json.contains("\"name\":\"dispatch\""));
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("\"ts\":"));
        assert!(json.contains("\"dur\":"));
        assert!(json.contains(&format!(
            "\"trace_id\":\"{}\"",
            TraceContext::format_id(0xabc)
        )));
        // The escaping kept it structurally valid: quotes balance and the
        // raw control byte never appears.
        assert!(json.contains("say \\\"hi\\\"\\n"));
        assert!(!json.contains('\n'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Empty input renders an empty (still valid) array.
        assert_eq!(chrome_trace_json(&[]), "[]");
    }

    #[test]
    fn concurrent_spans_from_multiple_threads_all_record() {
        let store = Arc::new(TraceStore::new(4));
        let trace = store.begin(Some(TraceContext {
            trace_id: 77,
            parent: None,
        }));
        let root = trace.span("root");
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let h = root.handle();
                std::thread::spawn(move || {
                    let mut s = h.span("worker");
                    s.attr("shard", i);
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panic");
        }
        drop(root);
        store.finish(trace);
        let done = store.lookup(77).expect("kept");
        assert_eq!(done.spans.len(), 5);
        let root_id = done
            .spans
            .iter()
            .find(|s| s.name == "root")
            .expect("root")
            .id;
        let mut ids = std::collections::BTreeSet::new();
        for s in done.spans.iter().filter(|s| s.name == "worker") {
            assert_eq!(s.parent, Some(root_id));
            assert!(ids.insert(s.id), "span ids unique under concurrency");
        }
        assert_eq!(ids.len(), 4);
    }
}
