//! The uniform-sampling summary of Theorem 5.1 / Corollary 5.2 —
//! `uSample(A, C, t, b)` in the paper's notation.
//!
//! A uniform reservoir of `t` full rows is taken **while observing the
//! data**, before any query is known; because uniform row sampling commutes
//! with column projection, the same sample serves every later query `C`:
//!
//! - point frequency: `f̂_{e(b)} = g/α` (`g` = matches in the sample,
//!   `α` = sampling rate) with additive error `ε‖f‖_1` for
//!   `t = O(ε⁻² log(1/δ))` — and since `‖f‖_1 ≤ ‖f‖_p` for `0 < p < 1`,
//!   the same bound holds against `‖f‖_p` (Corollary 5.2);
//! - `φ`-`ℓ_p` heavy hitters for `0 < p ≤ 1` by thresholding estimated
//!   frequencies (Section 5.1's remark);
//! - `ℓ_1` pattern sampling: a uniform sampled row, projected, is a pattern
//!   drawn with probability `f_i/n` — the easy side of the paper's
//!   sampling dichotomy.
//!
//! For `p > 1` no such summary can exist (Theorem 5.3); the experiment
//! harness demonstrates this summary failing on the adversarial instances.

use pfe_hash::rng::Xoshiro256pp;
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, Dataset, PatternKey};
use pfe_sketch::reservoir::Reservoir;
use pfe_sketch::traits::SpaceUsage;

use crate::problem::{check_dims, HeavyHitter, QueryError, SampledPattern};

/// Sampled rows, stored packed for binary data and dense otherwise.
#[derive(Debug, Clone)]
enum RowStore {
    Binary(Reservoir<u64>),
    Qary(Reservoir<Box<[u16]>>),
}

/// Uniform row-sample summary (Theorem 5.1).
///
/// ```
/// use pfe_core::UniformSampleSummary;
/// use pfe_row::ColumnSet;
/// use pfe_stream::gen::zipf_patterns;
///
/// let data = zipf_patterns(16, 10_000, 50, 1.3, 1);
/// // Sample taken before any query exists.
/// let summary = UniformSampleSummary::build(&data, 2048, 2);
/// // Query arrives afterwards; any C works.
/// let c = ColumnSet::from_indices(16, &[0, 5, 9]).unwrap();
/// let hh = summary.heavy_hitters(&c, 0.1, 1.0, 2.0).unwrap();
/// assert!(!hh.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct UniformSampleSummary {
    rows: RowStore,
    d: u32,
    q: u32,
}

impl UniformSampleSummary {
    /// The sample size achieving additive error `ε‖f‖_1` with probability
    /// `1 − δ`: `t = ⌈ln(2/δ)/ε²⌉` (the constant from the additive
    /// Chernoff bound in the paper's Appendix A.1).
    ///
    /// # Panics
    /// Panics if `eps` or `delta` are outside `(0, 1)`.
    pub fn sample_size_for(eps: f64, delta: f64) -> usize {
        assert!(eps > 0.0 && eps < 1.0, "eps {eps} outside (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
        ((2.0 / delta).ln() / (eps * eps)).ceil() as usize
    }

    /// Create an empty summary for a `d`-column stream over alphabet `q`.
    ///
    /// # Panics
    /// Panics if `t == 0` or `d > 63` or `q < 2`.
    pub fn new(d: u32, q: u32, t: usize, seed: u64) -> Self {
        assert!(d <= 63, "d must be <= 63");
        assert!(q >= 2, "alphabet must be >= 2");
        let rows = if q == 2 {
            RowStore::Binary(Reservoir::new(t, seed))
        } else {
            RowStore::Qary(Reservoir::new(t, seed))
        };
        Self { rows, d, q }
    }

    /// Build by streaming a whole dataset through the reservoir.
    pub fn build(data: &Dataset, t: usize, seed: u64) -> Self {
        let mut s = Self::new(data.dimension(), data.alphabet(), t, seed);
        match (data, &mut s.rows) {
            (Dataset::Binary(m), RowStore::Binary(r)) => {
                for &row in m.rows() {
                    r.insert(row);
                }
            }
            _ => {
                for i in 0..data.num_rows() {
                    s.push_dense(&data.row_dense(i));
                }
            }
        }
        s
    }

    /// Observe one dense row (streaming ingestion).
    ///
    /// # Panics
    /// Panics if the row has the wrong length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.d as usize, "row length != d");
        match &mut self.rows {
            RowStore::Binary(r) => {
                let mut packed = 0u64;
                for (i, &s) in row.iter().enumerate() {
                    assert!(s < 2, "symbol {s} not binary");
                    packed |= (s as u64) << i;
                }
                r.insert(packed);
            }
            RowStore::Qary(r) => {
                for &s in row {
                    assert!((s as u32) < self.q, "symbol {s} outside alphabet");
                }
                r.insert(row.into());
            }
        }
    }

    /// Merge a summary built over a disjoint segment of the same stream
    /// (same `d`, `Q`, and reservoir capacity): a seeded weighted reservoir
    /// union, so the merged sample is uniform over the concatenated stream
    /// (see [`Reservoir::merge`]). This is the shard-compaction path of the
    /// serving engine.
    ///
    /// # Panics
    /// Panics on shape, alphabet, or capacity mismatch.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.d, other.d, "uniform-sample merge: dimension mismatch");
        assert_eq!(self.q, other.q, "uniform-sample merge: alphabet mismatch");
        match (&mut self.rows, &other.rows) {
            (RowStore::Binary(a), RowStore::Binary(b)) => a.merge(b),
            (RowStore::Qary(a), RowStore::Qary(b)) => a.merge(b),
            _ => unreachable!("row store variant is determined by q"),
        }
    }

    /// Reservoir capacity `t`.
    pub fn capacity(&self) -> usize {
        match &self.rows {
            RowStore::Binary(r) => r.capacity(),
            RowStore::Qary(r) => r.capacity(),
        }
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Observe one packed binary row (fast path; `Q = 2` only).
    ///
    /// # Panics
    /// Panics if the summary is not binary or the row has bits at or above
    /// `d`.
    pub fn push_packed(&mut self, row: u64) {
        assert!(
            row & !((1u64 << self.d) - 1) == 0,
            "row has bits above d={}",
            self.d
        );
        match &mut self.rows {
            RowStore::Binary(r) => r.insert(row),
            RowStore::Qary(_) => panic!("push_packed requires a binary summary"),
        }
    }

    /// Stream length observed so far (`n = ‖f‖_1`).
    pub fn n(&self) -> u64 {
        match &self.rows {
            RowStore::Binary(r) => r.seen(),
            RowStore::Qary(r) => r.seen(),
        }
    }

    /// Current sample size (`min(t, n)`).
    pub fn sample_len(&self) -> usize {
        match &self.rows {
            RowStore::Binary(r) => r.sample().len(),
            RowStore::Qary(r) => r.sample().len(),
        }
    }

    /// The sampling rate `α`.
    pub fn rate(&self) -> f64 {
        match &self.rows {
            RowStore::Binary(r) => r.rate(),
            RowStore::Qary(r) => r.rate(),
        }
    }

    /// Projected pattern keys of the current sample under `cols`.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn projected_sample(&self, cols: &ColumnSet) -> Result<Vec<PatternKey>, QueryError> {
        check_dims(self.d, cols)?;
        match &self.rows {
            RowStore::Binary(r) => Ok(r
                .sample()
                .iter()
                .map(|&row| PatternKey::from(pfe_row::pext_u64(row, cols.mask())))
                .collect()),
            RowStore::Qary(r) => {
                let codec = pfe_row::PatternCodec::new(self.q, cols.len())?;
                Ok(r.sample()
                    .iter()
                    .map(|row| codec.encode_row(row, cols))
                    .collect())
            }
        }
    }

    /// Estimate the absolute frequency of the pattern `key` on projection
    /// `cols`: the `f̂_{e(b)} = g/α` estimator of Theorem 5.1.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn frequency(&self, cols: &ColumnSet, key: PatternKey) -> Result<f64, QueryError> {
        let sample = self.projected_sample(cols)?;
        let rate = self.rate();
        if rate == 0.0 {
            return Ok(0.0);
        }
        let g = sample.iter().filter(|&&k| k == key).count() as f64;
        Ok(g / rate)
    }

    /// The additive error `ε‖f‖_1` guaranteed (with prob. `1-δ` at build
    /// parameters) by the current sample size: `ε = √(ln(2/δ)/t)`; exposed
    /// for reporting with a caller-chosen `δ`.
    pub fn additive_error(&self, delta: f64) -> f64 {
        assert!(delta > 0.0 && delta < 1.0);
        let t = self.sample_len().max(1) as f64;
        ((2.0 / delta).ln() / t).sqrt() * self.n() as f64
    }

    /// `φ`-`ℓ_p` heavy hitters for `0 < p ≤ 1` with multiplicative slack
    /// `c > 1`: reports every pattern whose estimated frequency is at least
    /// `(φ/c)·n`. Since `‖f‖_p ≥ ‖f‖_1 = n` for `p ≤ 1`, every true
    /// `φ`-`ℓ_p` heavy hitter (frequency `≥ φ‖f‖_p ≥ φn`) is reported as
    /// long as the sampling error stays under `φ(1−1/c)n`.
    ///
    /// # Errors
    /// Dimension, codec, or parameter errors (`p` outside `(0,1]`, `phi`
    /// outside `(0,1]`, `c <= 1`).
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
        p: f64,
        c: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(QueryError::UnsupportedMoment {
                requested: p,
                supported: 1.0,
            });
        }
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(QueryError::BadParameter(format!("phi={phi} outside (0,1]")));
        }
        if c <= 1.0 || !c.is_finite() {
            return Err(QueryError::BadParameter(format!("slack c={c} must be > 1")));
        }
        let sample = self.projected_sample(cols)?;
        let rate = self.rate();
        if rate == 0.0 {
            return Ok(Vec::new());
        }
        // Count sample multiplicities per pattern.
        let mut counts: std::collections::BTreeMap<PatternKey, u64> =
            std::collections::BTreeMap::new();
        for k in sample {
            *counts.entry(k).or_insert(0) += 1;
        }
        let threshold = (phi / c) * self.n() as f64;
        let mut out: Vec<HeavyHitter> = counts
            .into_iter()
            .map(|(key, g)| HeavyHitter {
                key,
                estimate: g as f64 / rate,
            })
            .filter(|h| h.estimate >= threshold)
            .collect();
        out.sort_by(|a, b| {
            b.estimate
                .partial_cmp(&a.estimate)
                .expect("finite")
                .then(a.key.cmp(&b.key))
        });
        Ok(out)
    }

    /// Draw `count` patterns from the (approximate) `ℓ_1` distribution by
    /// re-sampling rows uniformly from the reservoir — the `p = 1` sampler
    /// of the dichotomy. Reported probabilities are the sample-estimated
    /// `f̂_i/n`.
    ///
    /// # Errors
    /// Dimension, codec, or empty-data errors.
    pub fn l1_sample(
        &self,
        cols: &ColumnSet,
        count: usize,
        seed: u64,
    ) -> Result<Vec<SampledPattern>, QueryError> {
        let sample = self.projected_sample(cols)?;
        if sample.is_empty() {
            return Err(QueryError::EmptyData);
        }
        let mut counts: std::collections::BTreeMap<PatternKey, u64> =
            std::collections::BTreeMap::new();
        for &k in &sample {
            *counts.entry(k).or_insert(0) += 1;
        }
        let m = sample.len() as f64;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Ok((0..count)
            .map(|_| {
                let key = sample[rng.range_u64(sample.len() as u64) as usize];
                SampledPattern {
                    key,
                    probability: counts[&key] as f64 / m,
                }
            })
            .collect())
    }
}

impl Persist for UniformSampleSummary {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.d);
        enc.put_u32(self.q);
        // The store variant is implied by q (binary iff q == 2), so only
        // the reservoir itself travels.
        match &self.rows {
            RowStore::Binary(r) => r.encode(enc),
            RowStore::Qary(r) => r.encode(enc),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let d = dec.take_u32()?;
        if d > 63 {
            return Err(PersistError::Malformed(format!("dimension d={d} above 63")));
        }
        let q = dec.take_u32()?;
        if q < 2 {
            return Err(PersistError::Malformed(format!("alphabet q={q} below 2")));
        }
        let rows = if q == 2 {
            let r: Reservoir<u64> = Reservoir::decode(dec)?;
            let limit = if d == 0 { 0 } else { (1u64 << d) - 1 };
            if let Some(&bad) = r.sample().iter().find(|&&row| row & !limit != 0) {
                return Err(PersistError::Malformed(format!(
                    "sampled row {bad:#b} has bits above d={d}"
                )));
            }
            RowStore::Binary(r)
        } else {
            let r: Reservoir<Box<[u16]>> = Reservoir::decode(dec)?;
            for row in r.sample() {
                if row.len() != d as usize {
                    return Err(PersistError::Malformed(format!(
                        "sampled row has {} symbol(s), dimension is {d}",
                        row.len()
                    )));
                }
                if let Some(&s) = row.iter().find(|&&s| s as u32 >= q) {
                    return Err(PersistError::Malformed(format!(
                        "sampled symbol {s} outside alphabet [{q}]"
                    )));
                }
            }
            RowStore::Qary(r)
        };
        Ok(Self { rows, d, q })
    }
}

impl SpaceUsage for UniformSampleSummary {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + match &self.rows {
                RowStore::Binary(r) => r.space_bytes(),
                RowStore::Qary(r) => {
                    r.space_bytes() + r.sample().iter().map(|b| b.len() * 2).sum::<usize>()
                }
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::{BinaryMatrix, FrequencyVector};
    use pfe_stream::gen::{uniform_qary, zipf_patterns};

    #[test]
    fn sample_size_formula() {
        // eps=0.1, delta=0.05: t = ln(40)/0.01 ~ 369.
        let t = UniformSampleSummary::sample_size_for(0.1, 0.05);
        assert!((368..=370).contains(&t), "t = {t}");
    }

    #[test]
    fn frequency_estimate_within_additive_error() {
        let d = 20;
        let data = zipf_patterns(d, 100_000, 100, 1.2, 1);
        let eps = 0.05;
        let t = UniformSampleSummary::sample_size_for(eps, 0.01);
        let s = UniformSampleSummary::build(&data, t, 2);
        let cols = ColumnSet::from_indices(d, &[0, 2, 4, 6, 8]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let n = exact.total() as f64;
        // Check the heaviest few patterns.
        let mut checked = 0;
        let mut worst: f64 = 0.0;
        for (key, count) in exact.sorted_counts().into_iter().take(10) {
            let est = s.frequency(&cols, key).expect("ok");
            worst = worst.max((est - count as f64).abs() / n);
            checked += 1;
        }
        assert!(checked > 0);
        // Allow 2x the one-shot eps since we take a max over 10 patterns.
        assert!(worst <= 2.0 * eps, "worst additive error {worst}");
    }

    #[test]
    fn projection_after_sampling_equals_sampling_after_projection() {
        // The key property: the sample was taken before knowing C, yet
        // estimates are valid for every C. Exercise several C on one build.
        let data = zipf_patterns(16, 20_000, 50, 1.0, 3);
        let s = UniformSampleSummary::build(&data, 2000, 4);
        for mask in [0b1u64, 0b1010, 0b111100001111] {
            let cols = ColumnSet::from_mask(16, mask).expect("valid");
            let exact = FrequencyVector::compute(&data, &cols).expect("fits");
            let (key, count) = exact.sorted_counts()[0];
            let est = s.frequency(&cols, key).expect("ok");
            let rel = (est - count as f64).abs() / exact.total() as f64;
            assert!(rel < 0.05, "mask {mask:#b}: additive error {rel}");
        }
    }

    #[test]
    fn heavy_hitters_recall_for_p_leq_1() {
        let data = zipf_patterns(18, 50_000, 30, 1.5, 5);
        let s = UniformSampleSummary::build(&data, 4000, 6);
        let cols = ColumnSet::full(18).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        for p in [0.5, 1.0] {
            let truth: Vec<PatternKey> = exact
                .heavy_hitters(0.1, p)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let reported: Vec<PatternKey> = s
                .heavy_hitters(&cols, 0.1, p, 2.0)
                .expect("ok")
                .into_iter()
                .map(|h| h.key)
                .collect();
            for k in &truth {
                assert!(reported.contains(k), "missed true HH at p={p}");
            }
            // Soundness with slack c=2: nothing below (phi/c^2)-ish mass.
            let floor = 0.1 / 4.0 * exact.total() as f64;
            for k in &reported {
                assert!(
                    exact.frequency(*k) as f64 >= floor * 0.5,
                    "reported spurious pattern at p={p}"
                );
            }
        }
    }

    #[test]
    fn p_above_one_rejected() {
        let data = zipf_patterns(10, 100, 10, 1.0, 7);
        let s = UniformSampleSummary::build(&data, 50, 8);
        let cols = ColumnSet::full(10).expect("valid");
        assert!(matches!(
            s.heavy_hitters(&cols, 0.1, 1.5, 2.0),
            Err(QueryError::UnsupportedMoment { .. })
        ));
    }

    #[test]
    fn l1_sampling_tracks_distribution() {
        let rows = vec![0b11u64; 60]
            .into_iter()
            .chain(vec![0b01u64; 40])
            .collect();
        let data = Dataset::Binary(BinaryMatrix::from_rows(2, rows));
        let s = UniformSampleSummary::build(&data, 100, 9); // full sample
        let cols = ColumnSet::full(2).expect("valid");
        let draws = s.l1_sample(&cols, 20_000, 10).expect("ok");
        let frac = draws
            .iter()
            .filter(|x| x.key == PatternKey::new(0b11))
            .count() as f64
            / draws.len() as f64;
        assert!((frac - 0.6).abs() < 0.02, "l1 sample fraction {frac}");
        // Probabilities reported match sample frequencies.
        let p11 = draws
            .iter()
            .find(|x| x.key == PatternKey::new(0b11))
            .expect("drawn")
            .probability;
        assert!((p11 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn qary_path_works() {
        let data = uniform_qary(5, 8, 5000, 11);
        let s = UniformSampleSummary::build(&data, 1000, 12);
        let cols = ColumnSet::from_indices(8, &[1, 3]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let (key, count) = exact.sorted_counts()[0];
        let est = s.frequency(&cols, key).expect("ok");
        let rel = (est - count as f64).abs() / exact.total() as f64;
        assert!(rel < 0.1, "qary additive error {rel}");
    }

    #[test]
    fn space_independent_of_stream_length() {
        let small = UniformSampleSummary::build(&zipf_patterns(12, 1000, 20, 1.0, 13), 256, 0);
        let large = UniformSampleSummary::build(&zipf_patterns(12, 100_000, 20, 1.0, 13), 256, 0);
        // Both hold <= 256 rows: same order of space.
        assert!(large.space_bytes() <= small.space_bytes() * 2 + 1024);
    }

    #[test]
    fn streaming_push_matches_build() {
        let data = uniform_qary(3, 6, 500, 14);
        let built = UniformSampleSummary::build(&data, 100, 15);
        let mut pushed = UniformSampleSummary::new(6, 3, 100, 15);
        for i in 0..data.num_rows() {
            pushed.push_dense(&data.row_dense(i));
        }
        assert_eq!(built.n(), pushed.n());
        let cols = ColumnSet::from_indices(6, &[0, 5]).expect("valid");
        assert_eq!(
            built.projected_sample(&cols).expect("ok"),
            pushed.projected_sample(&cols).expect("ok")
        );
    }

    #[test]
    fn merge_preserves_estimates_within_tolerance() {
        // Split one stream across two shards; the merged summary's
        // frequency estimates must stay within sampling tolerance of a
        // single-shard build over the full stream.
        let d = 16;
        let data = zipf_patterns(d, 60_000, 50, 1.3, 21);
        let (n, t) = (data.num_rows(), 4096);
        let mut a = UniformSampleSummary::new(d, 2, t, 100);
        let mut b = UniformSampleSummary::new(d, 2, t, 101);
        for i in 0..n {
            if i % 2 == 0 {
                a.push_dense(&data.row_dense(i));
            } else {
                b.push_dense(&data.row_dense(i));
            }
        }
        a.merge(&b);
        assert_eq!(a.n(), n as u64);
        assert_eq!(a.sample_len(), t);
        let cols = ColumnSet::from_indices(d, &[0, 3, 6, 9]).expect("valid");
        let exact = pfe_row::FrequencyVector::compute(&data, &cols).expect("fits");
        let total = exact.total() as f64;
        for (key, count) in exact.sorted_counts().into_iter().take(5) {
            let est = a.frequency(&cols, key).expect("ok");
            let rel = (est - count as f64).abs() / total;
            assert!(rel < 0.05, "merged additive error {rel}");
        }
    }

    #[test]
    fn merge_underfull_shards_is_lossless() {
        let data = uniform_qary(3, 6, 200, 31);
        let mut a = UniformSampleSummary::new(6, 3, 1000, 1);
        let mut b = UniformSampleSummary::new(6, 3, 1000, 2);
        for i in 0..100 {
            a.push_dense(&data.row_dense(i));
        }
        for i in 100..200 {
            b.push_dense(&data.row_dense(i));
        }
        a.merge(&b);
        let full = UniformSampleSummary::build(&data, 1000, 3);
        let cols = ColumnSet::from_indices(6, &[1, 4]).expect("valid");
        // Underfull on both sides: the merged sample is the whole stream,
        // so projected pattern multisets agree exactly.
        let mut ka = a.projected_sample(&cols).expect("ok");
        let mut kf = full.projected_sample(&cols).expect("ok");
        ka.sort_unstable();
        kf.sort_unstable();
        assert_eq!(ka, kf);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn merge_rejects_dimension_mismatch() {
        let mut a = UniformSampleSummary::new(8, 2, 16, 0);
        let b = UniformSampleSummary::new(9, 2, 16, 0);
        a.merge(&b);
    }

    #[test]
    fn push_packed_matches_push_dense() {
        let data = zipf_patterns(10, 500, 20, 1.0, 41);
        let mut packed = UniformSampleSummary::new(10, 2, 64, 5);
        let mut dense = UniformSampleSummary::new(10, 2, 64, 5);
        if let Dataset::Binary(m) = &data {
            for &row in m.rows() {
                packed.push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        for i in 0..data.num_rows() {
            dense.push_dense(&data.row_dense(i));
        }
        let cols = ColumnSet::full(10).expect("valid");
        assert_eq!(
            packed.projected_sample(&cols).expect("ok"),
            dense.projected_sample(&cols).expect("ok")
        );
    }

    #[test]
    fn empty_summary_behaviour() {
        let s = UniformSampleSummary::new(8, 2, 16, 0);
        let cols = ColumnSet::full(8).expect("valid");
        assert_eq!(s.frequency(&cols, PatternKey::new(0)).expect("ok"), 0.0);
        assert!(matches!(
            s.l1_sample(&cols, 5, 0),
            Err(QueryError::EmptyData)
        ));
    }
}
