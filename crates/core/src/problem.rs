//! Problem and answer types for projected frequency estimation
//! (Section 2.1 of the paper).

use pfe_row::{ColumnSet, PatternCodecError, PatternKey};

/// Errors surfaced by summaries at query time.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query's dimension does not match the summarized data.
    DimensionMismatch {
        /// Dimension of the summarized data.
        data: u32,
        /// Dimension of the query column set.
        query: u32,
    },
    /// The pattern domain `Q^{|C|}` cannot be packed bijectively.
    Codec(PatternCodecError),
    /// The summary does not support this moment order (e.g. an `F_2`-only
    /// net asked for `p = 0.5`).
    UnsupportedMoment {
        /// The requested order.
        requested: f64,
        /// The order the summary was built for; `NaN` when no moment
        /// summary was configured at all.
        supported: f64,
    },
    /// A parameter is outside its valid range.
    BadParameter(String),
    /// The summary holds no data.
    EmptyData,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch { data, query } => {
                write!(
                    f,
                    "query dimension {query} does not match data dimension {data}"
                )
            }
            Self::Codec(e) => write!(f, "pattern codec: {e}"),
            Self::UnsupportedMoment {
                requested,
                supported,
            } => {
                if supported.is_nan() {
                    write!(f, "no F_p summary configured for p={requested}")
                } else {
                    write!(f, "summary supports p={supported}, asked for p={requested}")
                }
            }
            Self::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            Self::EmptyData => write!(f, "summary holds no data"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<PatternCodecError> for QueryError {
    fn from(e: PatternCodecError) -> Self {
        Self::Codec(e)
    }
}

/// An approximate scalar answer with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarEstimate {
    /// The point estimate.
    pub value: f64,
    /// The column set the estimate was actually computed on (differs from
    /// the query when an α-net rounded it).
    pub answered_on: ColumnSet,
    /// Multiplicative error factor guaranteed by the summary for this
    /// answer (`β·r` in Theorem 6.5 terms); `1.0` means exact.
    pub factor_bound: f64,
}

/// A reported heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The pattern (packed).
    pub key: PatternKey,
    /// Estimated absolute frequency.
    pub estimate: f64,
}

/// A sampled pattern with its (approximate) sampling probability, matching
/// the paper's ℓ_p-sampling contract (return the item and a `(1±ε')`
/// approximation of its probability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampledPattern {
    /// The sampled pattern (packed).
    pub key: PatternKey,
    /// Approximate probability mass of this pattern under the ℓ_p
    /// distribution.
    pub probability: f64,
}

/// Validate that a query column set matches the data dimension.
pub fn check_dims(data_d: u32, cols: &ColumnSet) -> Result<(), QueryError> {
    if cols.dimension() != data_d {
        return Err(QueryError::DimensionMismatch {
            data: data_d,
            query: cols.dimension(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_check() {
        let cols = ColumnSet::full(8).expect("valid");
        assert!(check_dims(8, &cols).is_ok());
        assert_eq!(
            check_dims(9, &cols),
            Err(QueryError::DimensionMismatch { data: 9, query: 8 })
        );
    }

    #[test]
    fn error_display() {
        let e = QueryError::UnsupportedMoment {
            requested: 0.5,
            supported: 2.0,
        };
        assert!(e.to_string().contains("p=2"));
        assert!(QueryError::EmptyData.to_string().contains("no data"));
    }

    #[test]
    fn codec_error_converts() {
        let e: QueryError = PatternCodecError::EmptyAlphabet.into();
        assert!(matches!(e, QueryError::Codec(_)));
    }
}
