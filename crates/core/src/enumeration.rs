//! The naïve fixed-size enumeration baseline of Section 3.1: if the query
//! size `t = |C|` is known in advance, keep one sketch for each of the
//! `C(d, t)` subsets of that size. Answers size-`t` queries with pure
//! sketch error (no rounding distortion), but costs `Ω(d^t)` space and
//! cannot answer any other size — the comparison point that motivates the
//! α-net's rounding.

use pfe_codes::binomial::binomial;
use pfe_codes::subsets::FixedWeightIter;
use pfe_hash::builder::{seeded_map, SeededHashMap};
use pfe_row::{ColumnSet, Dataset, PatternCodec, PatternKey};
use pfe_sketch::traits::{DistinctSketch, SpaceUsage};

use crate::problem::{check_dims, QueryError};

/// Fingerprint seed shared with the α-net summaries.
const FINGERPRINT_SEED: u64 = 0xf1a9_f1a9_f1a9_f1a9;

/// One sketch per size-`t` subset.
pub struct SubsetEnumerationF0<S: DistinctSketch> {
    sketches: SeededHashMap<u64, S>,
    d: u32,
    t: u32,
}

impl<S: DistinctSketch> SubsetEnumerationF0<S> {
    /// Build for query size `t`. `max_subsets` caps `C(d, t)`.
    ///
    /// # Errors
    /// Parameter/codec errors; cap exceeded.
    pub fn build(
        data: &Dataset,
        t: u32,
        max_subsets: u128,
        mut factory: impl FnMut(u64) -> S,
    ) -> Result<Self, QueryError> {
        let d = data.dimension();
        if t > d {
            return Err(QueryError::BadParameter(format!("t={t} exceeds d={d}")));
        }
        let count = binomial(d as u64, t as u64).expect("fits for d <= 63");
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "C({d},{t}) = {count} subsets exceeds cap {max_subsets}"
            )));
        }
        let q = data.alphabet();
        let mut sketches: SeededHashMap<u64, S> = seeded_map(0xe11e);
        sketches.reserve(count as usize);
        for mask in FixedWeightIter::new(d, t) {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            let mut sketch = factory(mask);
            match data {
                Dataset::Binary(m) => {
                    for &row in m.rows() {
                        let key = pfe_row::pext_u64(row, mask);
                        sketch.insert(PatternKey::from(key).fingerprint64(FINGERPRINT_SEED));
                    }
                }
                Dataset::Qary(m) => {
                    let codec = PatternCodec::new(q, cols.len())?;
                    for i in 0..m.num_rows() {
                        let key = m.project_row(i, &cols, &codec);
                        sketch.insert(key.fingerprint64(FINGERPRINT_SEED));
                    }
                }
            }
            sketches.insert(mask, sketch);
        }
        Ok(Self { sketches, d, t })
    }

    /// The supported query size `t`.
    pub fn query_size(&self) -> u32 {
        self.t
    }

    /// Number of sketches (`= C(d, t)`).
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// Answer a size-`t` `F_0` query with pure sketch error.
    ///
    /// # Errors
    /// Dimension mismatch; `BadParameter` for any other query size.
    pub fn f0(&self, cols: &ColumnSet) -> Result<f64, QueryError> {
        check_dims(self.d, cols)?;
        if cols.len() != self.t {
            return Err(QueryError::BadParameter(format!(
                "enumeration summary only answers |C| = {}, got {}",
                self.t,
                cols.len()
            )));
        }
        Ok(self
            .sketches
            .get(&cols.mask())
            .expect("all size-t subsets materialized")
            .estimate())
    }
}

impl<S: DistinctSketch> SpaceUsage for SubsetEnumerationF0<S> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

/// One moment sketch per size-`t` subset — the `F_p` flavour of the
/// known-`|C|` strawman.
pub struct SubsetEnumerationFp<M: pfe_sketch::traits::MomentSketch> {
    sketches: SeededHashMap<u64, M>,
    d: u32,
    t: u32,
    p: f64,
}

impl<M: pfe_sketch::traits::MomentSketch> SubsetEnumerationFp<M> {
    /// Build for query size `t`. `max_subsets` caps `C(d, t)`.
    ///
    /// # Errors
    /// Parameter/codec errors; cap exceeded.
    pub fn build(
        data: &Dataset,
        t: u32,
        max_subsets: u128,
        mut factory: impl FnMut(u64) -> M,
    ) -> Result<Self, QueryError> {
        let d = data.dimension();
        if t > d {
            return Err(QueryError::BadParameter(format!("t={t} exceeds d={d}")));
        }
        let count = binomial(d as u64, t as u64).expect("fits for d <= 63");
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "C({d},{t}) = {count} subsets exceeds cap {max_subsets}"
            )));
        }
        let q = data.alphabet();
        let mut p = None;
        let mut sketches: SeededHashMap<u64, M> = seeded_map(0xe12e);
        sketches.reserve(count as usize);
        for mask in FixedWeightIter::new(d, t) {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            let mut sketch = factory(mask);
            p.get_or_insert(sketch.p());
            match data {
                Dataset::Binary(m) => {
                    for &row in m.rows() {
                        let key = pfe_row::pext_u64(row, mask);
                        sketch.update(PatternKey::from(key).fingerprint64(FINGERPRINT_SEED), 1);
                    }
                }
                Dataset::Qary(m) => {
                    let codec = PatternCodec::new(q, cols.len())?;
                    for i in 0..m.num_rows() {
                        let key = m.project_row(i, &cols, &codec);
                        sketch.update(key.fingerprint64(FINGERPRINT_SEED), 1);
                    }
                }
            }
            sketches.insert(mask, sketch);
        }
        Ok(Self {
            sketches,
            d,
            t,
            p: p.ok_or(QueryError::EmptyData)?,
        })
    }

    /// The supported query size `t`.
    pub fn query_size(&self) -> u32 {
        self.t
    }

    /// The moment order this summary answers.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of sketches (`= C(d, t)`).
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// Answer a size-`t` `F_p` query with pure sketch error.
    ///
    /// # Errors
    /// Dimension mismatch; `BadParameter` for any other query size;
    /// `UnsupportedMoment` for a different `p`.
    pub fn fp(&self, cols: &ColumnSet, p: f64) -> Result<f64, QueryError> {
        check_dims(self.d, cols)?;
        if (p - self.p).abs() > 1e-12 {
            return Err(QueryError::UnsupportedMoment {
                requested: p,
                supported: self.p,
            });
        }
        if cols.len() != self.t {
            return Err(QueryError::BadParameter(format!(
                "enumeration summary only answers |C| = {}, got {}",
                self.t,
                cols.len()
            )));
        }
        Ok(self
            .sketches
            .get(&cols.mask())
            .expect("all size-t subsets materialized")
            .estimate())
    }
}

impl<M: pfe_sketch::traits::MomentSketch> SpaceUsage for SubsetEnumerationFp<M> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::FrequencyVector;
    use pfe_sketch::kmv::Kmv;
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn answers_every_size_t_query() {
        let d = 10;
        let t = 3;
        let data = uniform_binary(d, 1000, 1);
        let s = SubsetEnumerationF0::build(&data, t, 1 << 20, |m| Kmv::new(128, m)).expect("build");
        assert_eq!(
            s.num_sketches() as u128,
            binomial(d as u64, t as u64).expect("fits")
        );
        for mask in FixedWeightIter::new(d, t).take(20) {
            let cols = ColumnSet::from_mask(d, mask).expect("v");
            let est = s.f0(&cols).expect("ok");
            let exact = FrequencyVector::compute(&data, &cols).expect("fits").f0() as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.4, "mask {mask:#b}: relative error {rel}");
        }
    }

    #[test]
    fn rejects_other_sizes() {
        let data = uniform_binary(8, 100, 2);
        let s = SubsetEnumerationF0::build(&data, 3, 1 << 20, |m| Kmv::new(16, m)).expect("build");
        let wrong = ColumnSet::from_indices(8, &[0, 1]).expect("v");
        assert!(matches!(s.f0(&wrong), Err(QueryError::BadParameter(_))));
    }

    #[test]
    fn cap_enforced() {
        let data = uniform_binary(30, 10, 3);
        assert!(matches!(
            SubsetEnumerationF0::build(&data, 15, 1000, |m| Kmv::new(8, m)),
            Err(QueryError::BadParameter(_))
        ));
    }

    #[test]
    fn fp_enumeration_answers_with_ams() {
        use pfe_sketch::ams_f2::AmsF2;
        let d = 10;
        let t = 3;
        let data = uniform_binary(d, 2000, 9);
        let s =
            SubsetEnumerationFp::build(&data, t, 1 << 20, |m| AmsF2::new(5, 64, m)).expect("build");
        assert_eq!(s.p(), 2.0);
        for mask in FixedWeightIter::new(d, t).take(10) {
            let cols = ColumnSet::from_mask(d, mask).expect("v");
            let est = s.fp(&cols, 2.0).expect("ok");
            let truth = FrequencyVector::compute(&data, &cols)
                .expect("fits")
                .fp(2.0);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.35, "mask {mask:#b}: F2 relative error {rel}");
        }
        // Wrong p and wrong size are typed errors.
        let cols = ColumnSet::from_indices(d, &[0, 1, 2]).expect("v");
        assert!(matches!(
            s.fp(&cols, 0.5),
            Err(QueryError::UnsupportedMoment { .. })
        ));
        let wrong = ColumnSet::from_indices(d, &[0, 1]).expect("v");
        assert!(matches!(
            s.fp(&wrong, 2.0),
            Err(QueryError::BadParameter(_))
        ));
    }

    #[test]
    fn fp_enumeration_with_stable_sketch() {
        use pfe_sketch::stable_fp::StableFp;
        let d = 8;
        let t = 2;
        let data = uniform_binary(d, 300, 10);
        let s = SubsetEnumerationFp::build(&data, t, 1 << 16, |m| StableFp::new(31, 0.5, m))
            .expect("build");
        assert_eq!(s.p(), 0.5);
        let cols = ColumnSet::from_indices(d, &[1, 4]).expect("v");
        let est = s.fp(&cols, 0.5).expect("ok");
        let truth = FrequencyVector::compute(&data, &cols)
            .expect("fits")
            .fp(0.5);
        let rel = (est - truth).abs() / truth;
        assert!(rel < 0.5, "F0.5 relative error {rel}");
    }

    #[test]
    fn space_grows_with_t_toward_half() {
        let data = uniform_binary(14, 100, 4);
        let s2 = SubsetEnumerationF0::build(&data, 2, 1 << 24, |m| Kmv::new(16, m)).expect("build");
        let s5 = SubsetEnumerationF0::build(&data, 5, 1 << 24, |m| Kmv::new(16, m)).expect("build");
        assert!(s5.space_bytes() > s2.space_bytes());
        assert!(s5.num_sketches() > 20 * s2.num_sketches());
    }
}
