//! The independence-assumption baseline (Kveton–Muthukrishnan–Vu–Xian
//! \[13\] in the paper): estimate projected pattern frequencies from
//! per-column marginals under a (Naïve) Bayes model.
//!
//! The paper's introduction positions this as prior art: "Prior work
//! proceeded under strong statistical independence assumptions about the
//! values in different dimensions." The summary here stores only the `d`
//! per-column value histograms — `O(d·Q)` words, exponentially below the
//! `2^{Ω(d)}` the assumption-free problem requires — and estimates
//!
//! `f̂(b on C) = n · Π_{c ∈ C} (count_c(b_c) / n)`.
//!
//! Exact when columns are independent; arbitrarily wrong otherwise. The
//! tests (and the paper's framing) show both sides: accurate on product
//! distributions, badly wrong on correlated columns where the
//! assumption-free `UniformSampleSummary` stays correct — the reason the
//! paper's model does not assume independence.

use pfe_row::{ColumnSet, Dataset, PatternCodec, PatternKey};
use pfe_sketch::traits::SpaceUsage;

use crate::problem::{check_dims, QueryError};

/// Per-column marginal histograms (the Naïve-Bayes summary).
#[derive(Debug, Clone)]
pub struct MarginalsSummary {
    /// `counts[c][v]` = occurrences of value `v` in column `c`.
    counts: Vec<Vec<u64>>,
    n: u64,
    q: u32,
}

impl MarginalsSummary {
    /// Build by one pass over the data (`O(dQ)` space).
    pub fn build(data: &Dataset) -> Self {
        let d = data.dimension();
        let q = data.alphabet();
        let mut counts = vec![vec![0u64; q as usize]; d as usize];
        for i in 0..data.num_rows() {
            for (c, &v) in data.row_dense(i).iter().enumerate() {
                counts[c][v as usize] += 1;
            }
        }
        Self {
            counts,
            n: data.num_rows() as u64,
            q,
        }
    }

    /// Rows ingested.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Marginal probability of value `v` in column `c`.
    ///
    /// # Panics
    /// Panics if `c` or `v` is out of range.
    pub fn marginal(&self, c: u32, v: u16) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.counts[c as usize][v as usize] as f64 / self.n as f64
    }

    /// Naïve-Bayes estimate of the frequency of pattern `key` on `cols`.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn frequency(&self, cols: &ColumnSet, key: PatternKey) -> Result<f64, QueryError> {
        check_dims(self.counts.len() as u32, cols)?;
        let codec = PatternCodec::new(self.q, cols.len())?;
        let pattern = codec.decode(key);
        let mut prob = 1.0;
        for (c, &v) in cols.iter().zip(pattern.iter()) {
            prob *= self.marginal(c, v);
        }
        Ok(self.n as f64 * prob)
    }

    /// Naïve-Bayes subcube heavy hitters: enumerate candidate patterns by
    /// taking, per column, the values with marginal at least `phi` (a
    /// superset of any pattern that could reach product mass `phi`), then
    /// threshold the product estimates.
    ///
    /// # Errors
    /// Dimension/codec/parameter errors; `BadParameter` if the candidate
    /// cross-product exceeds `2^20` entries.
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
    ) -> Result<Vec<(PatternKey, f64)>, QueryError> {
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(QueryError::BadParameter(format!("phi={phi} outside (0,1]")));
        }
        check_dims(self.counts.len() as u32, cols)?;
        let codec = PatternCodec::new(self.q, cols.len())?;
        // Per-column candidate values: marginal >= phi (any heavy product
        // needs every factor >= phi).
        let mut per_column: Vec<Vec<u16>> = Vec::with_capacity(cols.len() as usize);
        let mut combos: u128 = 1;
        for c in cols.iter() {
            let vals: Vec<u16> = (0..self.q as u16)
                .filter(|&v| self.marginal(c, v) >= phi)
                .collect();
            combos = combos.saturating_mul(vals.len() as u128);
            if combos > (1 << 20) {
                return Err(QueryError::BadParameter(
                    "candidate cross-product exceeds 2^20".into(),
                ));
            }
            per_column.push(vals);
        }
        if per_column.iter().any(Vec::is_empty) {
            return Ok(Vec::new());
        }
        // Enumerate the cross-product.
        let mut out = Vec::new();
        let mut idx = vec![0usize; per_column.len()];
        loop {
            let pattern: Vec<u16> = idx
                .iter()
                .zip(&per_column)
                .map(|(&i, vals)| vals[i])
                .collect();
            let mut prob = 1.0;
            for (c, &v) in cols.iter().zip(pattern.iter()) {
                prob *= self.marginal(c, v);
            }
            if prob >= phi {
                out.push((codec.encode_pattern(&pattern), self.n as f64 * prob));
            }
            // Advance the mixed-radix counter.
            let mut carry = true;
            for (slot, vals) in idx.iter_mut().zip(&per_column) {
                if !carry {
                    break;
                }
                *slot += 1;
                if *slot == vals.len() {
                    *slot = 0;
                } else {
                    carry = false;
                }
            }
            if carry {
                break;
            }
        }
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        Ok(out)
    }
}

impl SpaceUsage for MarginalsSummary {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .counts
                .iter()
                .map(|v| {
                    v.capacity() * std::mem::size_of::<u64>() + std::mem::size_of::<Vec<u64>>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_sample::UniformSampleSummary;
    use pfe_row::FrequencyVector;
    use pfe_stream::gen::{correlated_columns, uniform_binary};

    #[test]
    fn exact_on_independent_columns() {
        // Uniform binary data: every column independent with p = 1/2; the
        // product estimate n/2^{|C|} must match the exact count closely.
        let d = 12;
        let n = 50_000;
        let data = uniform_binary(d, n, 1);
        let m = MarginalsSummary::build(&data);
        let cols = ColumnSet::from_indices(d, &[0, 3, 6, 9]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        for (key, count) in exact.sorted_counts().into_iter().take(8) {
            let est = m.frequency(&cols, key).expect("ok");
            let rel = (est - count as f64).abs() / count as f64;
            assert!(rel < 0.15, "independent data: relative error {rel}");
        }
    }

    #[test]
    fn fails_on_correlated_columns_where_sampling_succeeds() {
        // The paper's point: independence is a *strong* assumption. On
        // correlated data (column 5.. copies of 0..5), the product estimate
        // is off by ~2^{copies}; the assumption-free sample is not.
        let d = 10;
        let n = 40_000;
        let data = correlated_columns(d, n, 5, 2);
        let marg = MarginalsSummary::build(&data);
        let samp = UniformSampleSummary::build(&data, 4096, 3);
        // Query a source column together with its (perfect) copies.
        let cols = ColumnSet::from_indices(d, &[0, 1, 5, 6, 7, 8, 9]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let (key, count) = exact
            .sorted_counts()
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("nonempty");
        let est_marg = marg.frequency(&cols, key).expect("ok");
        let est_samp = samp.frequency(&cols, key).expect("ok");
        let err_marg = (est_marg - count as f64).abs() / count as f64;
        let err_samp = (est_samp - count as f64).abs() / count as f64;
        assert!(
            err_marg > 0.5,
            "marginals unexpectedly accurate on correlated data: {err_marg}"
        );
        assert!(
            err_samp < 0.1,
            "sampling error {err_samp} on correlated data"
        );
    }

    #[test]
    fn space_is_o_of_dq() {
        let data = uniform_binary(20, 100_000, 4);
        let m = MarginalsSummary::build(&data);
        // 20 columns x 2 values x 8 bytes + overhead: tiny, independent of n.
        assert!(m.space_bytes() < 4096, "space {}", m.space_bytes());
    }

    #[test]
    fn heavy_hitters_on_independent_data() {
        let d = 8;
        let data = uniform_binary(d, 20_000, 5);
        let m = MarginalsSummary::build(&data);
        let cols = ColumnSet::from_indices(d, &[0, 1]).expect("valid");
        // Every 2-bit pattern has mass ~1/4: phi=0.2 keeps all four.
        let hh = m.heavy_hitters(&cols, 0.2).expect("ok");
        assert_eq!(hh.len(), 4);
        // phi=0.3 excludes all (mass ~0.25 < 0.3).
        assert!(m.heavy_hitters(&cols, 0.3).expect("ok").is_empty());
    }

    #[test]
    fn parameter_validation() {
        let data = uniform_binary(6, 100, 6);
        let m = MarginalsSummary::build(&data);
        let cols = ColumnSet::full(6).expect("valid");
        assert!(matches!(
            m.heavy_hitters(&cols, 0.0),
            Err(QueryError::BadParameter(_))
        ));
        let wrong = ColumnSet::full(5).expect("valid");
        assert!(matches!(
            m.frequency(&wrong, PatternKey::new(0)),
            Err(QueryError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_data_behaviour() {
        let data = Dataset::Binary(pfe_row::BinaryMatrix::new(4));
        let m = MarginalsSummary::build(&data);
        let cols = ColumnSet::full(4).expect("valid");
        assert_eq!(m.frequency(&cols, PatternKey::new(0)).expect("ok"), 0.0);
        assert!(m.heavy_hitters(&cols, 0.5).expect("ok").is_empty());
    }
}
