//! α-net summaries for point frequency and heavy hitters — the closing
//! remark of the paper's Section 6.
//!
//! > "similar results are possible for the other functions considered,
//! > ℓ_p frequency estimation, ℓ_p heavy hitters and ℓ_p sampling. The key
//! > insight is that all these functions depend at their heart on the
//! > quantity `f_j/‖f‖_p` [...] If we evaluate this quantity on a superset
//! > of columns, then both the numerator and denominator may shrink or
//! > grow, in the same ways as analyzed in Lemma 6.4."
//!
//! We realize the remark with *grow-side* rounding: a query `C` not in the
//! net is rounded to a superset `C′ ⊇ C` of size `(1/2+α)d`. On a superset,
//! a pattern `b ∈ [Q]^{|C|}` corresponds to the set of its extensions on
//! `C′ \ C`, and `f_C(b) = Σ_{ext} f_{C′}(b·ext)` exactly. So:
//!
//! - **point frequency**: sum the sketch's point estimates over all
//!   `Q^{|C′\C|}` extensions (at most `Q^{2αd}` terms — the same magnitude
//!   Lemma 6.4 charges the answer anyway). CountMin overestimates each
//!   term, so the summed estimate inherits a one-sided
//!   `ε‖f‖₁·Q^{|C′\C|}` error bound.
//! - **heavy hitters**: take the rounded subset's SpaceSaving candidates,
//!   *project* them onto `C` (projection can only merge, never split,
//!   heavy patterns — no false negatives among monitored items), aggregate
//!   their estimates, and threshold.

use pfe_hash::builder::{seeded_map, SeededHashMap};
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, Dataset, PatternCodec, PatternKey};
use pfe_sketch::count_min::CountMin;
use pfe_sketch::space_saving::SpaceSaving;
use pfe_sketch::traits::{FrequencySketch, SpaceUsage};

use crate::alpha_net::{AlphaNet, RoundedQuery};
use crate::problem::{check_dims, HeavyHitter, QueryError};

/// Upper bound on extension enumeration per query (`Q^{|C′\C|}` terms).
const MAX_EXTENSIONS: u128 = 1 << 20;

/// Grow-side rounding: the smallest net superset of `C` (or `C` itself if
/// it is already in the net). The cost is at most `large − small − 1 ≤
/// ⌈2αd⌉` columns, twice the nearest-neighbour bound — the price of
/// keeping the pattern correspondence exact.
fn round_up(net: &AlphaNet, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
    check_dims(net.dimension(), cols)?;
    if net.contains(cols) {
        return Ok(RoundedQuery {
            target: *cols,
            sym_diff: 0,
        });
    }
    let d = net.dimension();
    let target_w = net.large_size();
    let mut mask = cols.mask();
    let full = (1u64 << d) - 1;
    let cost = target_w - cols.len();
    for _ in 0..cost {
        let absent = full & !mask;
        mask |= 1u64 << absent.trailing_zeros();
    }
    Ok(RoundedQuery {
        target: ColumnSet::from_mask(d, mask).expect("valid"),
        sym_diff: cost,
    })
}

/// The per-query answer of the frequency net.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqNetAnswer {
    /// The (summed) frequency estimate for the queried pattern.
    pub estimate: f64,
    /// The net member the sketches were read from.
    pub answered_on: ColumnSet,
    /// Number of added columns (`|C′ \ C|`).
    pub grown_by: u32,
    /// Number of extension patterns summed.
    pub extensions: u128,
}

/// α-net point-frequency summary: one CountMin per net subset.
#[derive(Clone)]
pub struct AlphaNetFrequency {
    net: AlphaNet,
    sketches: SeededHashMap<u64, CountMin>,
    q: u32,
    n_rows: u64,
    fingerprint_seed: u64,
}

impl AlphaNetFrequency {
    /// Build over a dataset with `depth × width` CountMin sketches.
    ///
    /// # Errors
    /// Parameter/codec errors; net size above `max_subsets`.
    pub fn build(
        data: &Dataset,
        net: AlphaNet,
        depth: usize,
        width: usize,
        max_subsets: u128,
        seed: u64,
    ) -> Result<Self, QueryError> {
        if data.dimension() != net.dimension() {
            return Err(QueryError::DimensionMismatch {
                data: data.dimension(),
                query: net.dimension(),
            });
        }
        let count = net.size();
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        let q = data.alphabet();
        let fingerprint_seed = Self::fingerprint_seed_for(seed);
        let mut sketches: SeededHashMap<u64, CountMin> = seeded_map(0xcafe);
        sketches.reserve(count as usize);
        for mask in net.members(crate::alpha_net::NetMode::Full) {
            let cols = ColumnSet::from_mask(net.dimension(), mask).expect("valid");
            let mut cm = CountMin::new(depth, width, seed ^ mask);
            match data {
                Dataset::Binary(m) => {
                    for &row in m.rows() {
                        let key = pfe_row::pext_u64(row, mask);
                        cm.update(PatternKey::from(key).fingerprint64(fingerprint_seed), 1);
                    }
                }
                Dataset::Qary(m) => {
                    let codec = PatternCodec::new(q, cols.len())?;
                    for i in 0..m.num_rows() {
                        let key = m.project_row(i, &cols, &codec);
                        cm.update(key.fingerprint64(fingerprint_seed), 1);
                    }
                }
            }
            sketches.insert(mask, cm);
        }
        Ok(Self {
            net,
            sketches,
            q,
            n_rows: data.num_rows() as u64,
            fingerprint_seed,
        })
    }

    /// Create an empty streaming summary over alphabet `q`; feed rows with
    /// [`push_dense`](Self::push_dense) or (for `q = 2`)
    /// [`push_packed`](Self::push_packed). Same sketch contents as
    /// [`build`](Self::build) over the same rows.
    ///
    /// # Errors
    /// Parameter/codec errors; net size above `max_subsets`.
    pub fn new_streaming(
        net: AlphaNet,
        q: u32,
        depth: usize,
        width: usize,
        max_subsets: u128,
        seed: u64,
    ) -> Result<Self, QueryError> {
        if q < 2 {
            return Err(QueryError::BadParameter(format!(
                "alphabet q={q} must be >= 2"
            )));
        }
        let count = net.size();
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        if q > 2 {
            // Only the widths the Full net materializes (mirrors `build`).
            for w in (0..=net.small_size()).chain(net.large_size()..=net.dimension()) {
                PatternCodec::new(q, w)?;
            }
        }
        let fingerprint_seed = Self::fingerprint_seed_for(seed);
        let mut sketches: SeededHashMap<u64, CountMin> = seeded_map(0xcafe);
        sketches.reserve(count as usize);
        for mask in net.members(crate::alpha_net::NetMode::Full) {
            sketches.insert(mask, CountMin::new(depth, width, seed ^ mask));
        }
        Ok(Self {
            net,
            sketches,
            q,
            n_rows: 0,
            fingerprint_seed,
        })
    }

    /// Observe one packed binary row (`q = 2` fast path).
    ///
    /// # Panics
    /// Panics if the summary is not binary or the row has bits at or above
    /// `d`.
    pub fn push_packed(&mut self, row: u64) {
        assert_eq!(self.q, 2, "push_packed requires a binary summary");
        assert!(
            row & !((1u64 << self.net.dimension()) - 1) == 0,
            "row has bits above d={}",
            self.net.dimension()
        );
        for (&mask, cm) in self.sketches.iter_mut() {
            let key = pfe_row::pext_u64(row, mask);
            cm.update(
                PatternKey::from(key).fingerprint64(self.fingerprint_seed),
                1,
            );
        }
        self.n_rows += 1;
    }

    /// Observe one dense row (streaming ingestion; any alphabet).
    ///
    /// # Panics
    /// Panics on wrong row length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.net.dimension() as usize, "row length != d");
        for &s in row {
            assert!((s as u32) < self.q, "symbol {s} outside alphabet");
        }
        if self.q == 2 {
            let mut packed = 0u64;
            for (i, &s) in row.iter().enumerate() {
                packed |= (s as u64) << i;
            }
            self.push_packed(packed);
            return;
        }
        let d = self.net.dimension();
        let mut codecs: [Option<PatternCodec>; 64] = [None; 64];
        for (&mask, cm) in self.sketches.iter_mut() {
            let cols = ColumnSet::from_mask(d, mask).expect("valid member");
            let w = cols.len() as usize;
            let codec = *codecs[w].get_or_insert_with(|| {
                PatternCodec::new(self.q, w as u32).expect("validated at construction")
            });
            let key = codec.encode_row(row, &cols);
            cm.update(key.fingerprint64(self.fingerprint_seed), 1);
        }
        self.n_rows += 1;
    }

    /// Merge a summary built over a disjoint segment of the same stream:
    /// per-subset CountMin addition. Both sides must share the net,
    /// alphabet, seed, and sketch geometry (use identical build parameters).
    ///
    /// # Panics
    /// Panics on net/alphabet/seed mismatch (and propagates CountMin's
    /// parameter-mismatch panics).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.net, other.net, "frequency-net merge: net mismatch");
        assert_eq!(self.q, other.q, "frequency-net merge: alphabet mismatch");
        assert_eq!(
            self.fingerprint_seed, other.fingerprint_seed,
            "frequency-net merge: seed mismatch"
        );
        for (mask, theirs) in other.sketches.iter() {
            self.sketches
                .get_mut(mask)
                .expect("identical net membership")
                .merge(theirs);
        }
        self.n_rows += other.n_rows;
    }

    /// The net definition.
    pub fn net(&self) -> &AlphaNet {
        &self.net
    }

    /// Number of sketches kept.
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// Rows ingested (`n = ‖f‖₁`).
    pub fn n(&self) -> u64 {
        self.n_rows
    }

    /// The alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// The pattern-fingerprint seed actually in use (derived from the
    /// build seed via [`fingerprint_seed_for`](Self::fingerprint_seed_for)).
    pub fn fingerprint_seed(&self) -> u64 {
        self.fingerprint_seed
    }

    /// The fingerprint seed a build with base seed `seed` uses — exposed
    /// so a resume path can verify a decoded summary matches its config.
    pub fn fingerprint_seed_for(seed: u64) -> u64 {
        0xfe_0fe0 ^ seed
    }

    /// The CountMin materialized for `mask`, if it is a net member.
    pub fn sketch(&self, mask: u64) -> Option<&CountMin> {
        self.sketches.get(&mask)
    }

    /// Estimate `f_{e(b)}` for a pattern `b` given over the *query* columns
    /// `cols` (as a [`PatternKey`] in the `cols` codec).
    ///
    /// The estimate is the sum of CountMin point queries over all
    /// extensions of `b` to the rounded superset — an overestimate (like
    /// CountMin itself) by at most `#extensions × ε‖f‖₁`.
    ///
    /// # Errors
    /// Dimension/codec errors; `BadParameter` if `Q^{|C′\C|}` exceeds the
    /// enumeration cap.
    pub fn frequency(
        &self,
        cols: &ColumnSet,
        key: PatternKey,
    ) -> Result<FreqNetAnswer, QueryError> {
        let r = round_up(&self.net, cols)?;
        let sketch = self
            .sketches
            .get(&r.target.mask())
            .expect("rounded target materialized");
        // Enumerate extensions: patterns on target whose restriction to
        // cols equals `key`.
        let extra = r.target.symmetric_difference(cols);
        let num_ext = (self.q as u128)
            .checked_pow(extra.len())
            .filter(|&n| n <= MAX_EXTENSIONS)
            .ok_or_else(|| {
                QueryError::BadParameter(format!(
                    "extension enumeration Q^{} exceeds cap",
                    extra.len()
                ))
            })?;
        let query_codec = PatternCodec::new(self.q, cols.len())?;
        let target_codec = PatternCodec::new(self.q, r.target.len())?;
        let base_pattern = query_codec.decode(key);
        // Positions of the original columns inside the target's ascending
        // order, so digits can be interleaved correctly.
        let target_cols = r.target.to_indices();
        let orig_pos: Vec<usize> = cols
            .iter()
            .map(|c| {
                target_cols
                    .binary_search(&c)
                    .expect("cols subset of target")
            })
            .collect();
        let ext_pos: Vec<usize> = extra
            .iter()
            .map(|c| {
                target_cols
                    .binary_search(&c)
                    .expect("extra subset of target")
            })
            .collect();
        let mut pattern = vec![0u16; target_cols.len()];
        for (digit, &pos) in base_pattern.iter().zip(&orig_pos) {
            pattern[pos] = *digit;
        }
        let mut total = 0.0;
        for ext_index in 0..num_ext {
            let mut v = ext_index;
            for &pos in &ext_pos {
                pattern[pos] = (v % self.q as u128) as u16;
                v /= self.q as u128;
            }
            let ext_key = target_codec.encode_pattern(&pattern);
            total += sketch.estimate(ext_key.fingerprint64(self.fingerprint_seed));
        }
        Ok(FreqNetAnswer {
            estimate: total,
            answered_on: r.target,
            grown_by: r.sym_diff,
            extensions: num_ext,
        })
    }
}

impl Persist for AlphaNetFrequency {
    fn encode(&self, enc: &mut Encoder) {
        self.net.encode(enc);
        enc.put_u32(self.q);
        enc.put_u64(self.n_rows);
        enc.put_u64(self.fingerprint_seed);
        crate::alpha_net::encode_sketch_map(&self.sketches, enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let net = AlphaNet::decode(dec)?;
        let q = dec.take_u32()?;
        if q < 2 {
            return Err(PersistError::Malformed(format!("alphabet q={q} below 2")));
        }
        let n_rows = dec.take_u64()?;
        let fingerprint_seed = dec.take_u64()?;
        let sketches: SeededHashMap<u64, CountMin> = crate::alpha_net::decode_sketch_map(
            dec,
            &net,
            crate::alpha_net::NetMode::Full,
            0xcafe,
        )?;
        // Every CountMin must share one geometry, or merges would panic.
        let mut geom: Option<(usize, usize)> = None;
        for cm in sketches.values() {
            let this = (cm.depth(), cm.width());
            match geom {
                None => geom = Some(this),
                Some(g) if g != this => {
                    return Err(PersistError::Malformed(format!(
                        "CountMin geometry mismatch across subsets: {g:?} vs {this:?}"
                    )));
                }
                Some(_) => {}
            }
        }
        Ok(Self {
            net,
            sketches,
            q,
            n_rows,
            fingerprint_seed,
        })
    }
}

impl SpaceUsage for AlphaNetFrequency {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

/// α-net heavy-hitter summary: one SpaceSaving per net subset, with
/// candidate projection at query time.
pub struct AlphaNetHeavyHitters {
    net: AlphaNet,
    /// Per subset: SpaceSaving over *pattern keys* (not fingerprints — the
    /// keys must be decodable for projection).
    sketches: SeededHashMap<u64, SpaceSavingKeys>,
    q: u32,
    n_rows: u64,
}

/// SpaceSaving over `u128` pattern keys (thin adaptation: SpaceSaving in
/// `pfe-sketch` is keyed on `u64`; net subsets have `|C′| ≤ d ≤ 63`, and we
/// require `Q^{|C′|} ≤ 2^64` at build time so keys fit losslessly).
#[derive(Debug, Clone)]
struct SpaceSavingKeys(SpaceSaving);

impl AlphaNetHeavyHitters {
    /// Build with `slots` SpaceSaving slots per subset.
    ///
    /// # Errors
    /// Parameter/codec errors; cap exceeded; `Q^{large} > 2^64` (keys must
    /// fit `u64` losslessly for projection).
    pub fn build(
        data: &Dataset,
        net: AlphaNet,
        slots: usize,
        max_subsets: u128,
    ) -> Result<Self, QueryError> {
        if data.dimension() != net.dimension() {
            return Err(QueryError::DimensionMismatch {
                data: data.dimension(),
                query: net.dimension(),
            });
        }
        let count = net.size();
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        let q = data.alphabet();
        // Keys must fit u64: Q^{d} with the largest materialized width.
        let max_width = net.dimension(); // full set is in the net
        if (q as f64).log2() * max_width as f64 > 63.0 {
            return Err(QueryError::BadParameter(format!(
                "Q^{max_width} exceeds u64; SpaceSaving keys would alias"
            )));
        }
        let mut sketches: SeededHashMap<u64, SpaceSavingKeys> = seeded_map(0x55aa);
        sketches.reserve(count as usize);
        for mask in net.members(crate::alpha_net::NetMode::Full) {
            let cols = ColumnSet::from_mask(net.dimension(), mask).expect("valid");
            let mut ss = SpaceSaving::new(slots);
            match data {
                Dataset::Binary(m) => {
                    for &row in m.rows() {
                        ss.insert(pfe_row::pext_u64(row, mask));
                    }
                }
                Dataset::Qary(m) => {
                    let codec = PatternCodec::new(q, cols.len())?;
                    for i in 0..m.num_rows() {
                        ss.insert(m.project_row(i, &cols, &codec).raw() as u64);
                    }
                }
            }
            sketches.insert(mask, SpaceSavingKeys(ss));
        }
        Ok(Self {
            net,
            sketches,
            q,
            n_rows: data.num_rows() as u64,
        })
    }

    /// The net definition.
    pub fn net(&self) -> &AlphaNet {
        &self.net
    }

    /// Number of sketches kept.
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// `φ`-`ℓ₁` heavy hitters of the projection `cols` with slack `c > 1`:
    /// the rounded subset's monitored candidates are projected onto `cols`,
    /// aggregated, and thresholded at `(φ/c)·n`.
    ///
    /// Guarantee: every true `φ`-heavy pattern of `cols` whose mass is
    /// monitored on the rounded superset (SpaceSaving guarantees monitoring
    /// for mass `> n/slots`) is reported, because projection aggregates —
    /// never splits — its extensions' counts.
    ///
    /// # Errors
    /// Dimension/codec/parameter errors.
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
        c: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(QueryError::BadParameter(format!("phi={phi} outside (0,1]")));
        }
        if c <= 1.0 || !c.is_finite() {
            return Err(QueryError::BadParameter(format!("slack c={c} must be > 1")));
        }
        let r = round_up(&self.net, cols)?;
        let sketch = &self
            .sketches
            .get(&r.target.mask())
            .expect("rounded target materialized")
            .0;
        let target_codec = PatternCodec::new(self.q, r.target.len())?;
        let query_codec = PatternCodec::new(self.q, cols.len())?;
        // Project candidates onto the query columns and aggregate.
        let target_cols = r.target.to_indices();
        let keep: Vec<usize> = cols
            .iter()
            .map(|c| target_cols.binary_search(&c).expect("subset"))
            .collect();
        let mut agg: std::collections::BTreeMap<PatternKey, u64> =
            std::collections::BTreeMap::new();
        for (key64, count) in sketch.candidates(0) {
            let full_pattern = target_codec.decode(PatternKey::new(key64 as u128));
            let projected: Vec<u16> = keep.iter().map(|&i| full_pattern[i]).collect();
            *agg.entry(query_codec.encode_pattern(&projected))
                .or_insert(0) += count;
        }
        let threshold = (phi / c) * self.n_rows as f64;
        let mut out: Vec<HeavyHitter> = agg
            .into_iter()
            .filter(|&(_, count)| count as f64 >= threshold)
            .map(|(key, count)| HeavyHitter {
                key,
                estimate: count as f64,
            })
            .collect();
        out.sort_by(|a, b| {
            b.estimate
                .partial_cmp(&a.estimate)
                .expect("finite")
                .then(a.key.cmp(&b.key))
        });
        Ok(out)
    }
}

impl SpaceUsage for AlphaNetHeavyHitters {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.0.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::FrequencyVector;
    use pfe_stream::gen::zipf_patterns;

    fn fixture(d: u32, n: usize, seed: u64) -> Dataset {
        zipf_patterns(d, n, 30, 1.4, seed)
    }

    #[test]
    fn frequency_in_net_matches_count_min() {
        let d = 10;
        let data = fixture(d, 5000, 1);
        let net = AlphaNet::new(d, 0.25).expect("valid");
        let summary = AlphaNetFrequency::build(&data, net, 4, 512, 1 << 20, 7).expect("build");
        // In-net query (size 2 <= small): single point query, no extension.
        let cols = ColumnSet::from_indices(d, &[0, 1]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let (key, count) = exact
            .sorted_counts()
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("ne");
        let ans = summary.frequency(&cols, key).expect("ok");
        assert_eq!(ans.grown_by, 0);
        assert_eq!(ans.extensions, 1);
        // CountMin overestimates; error <= eps * n with eps = e/512.
        assert!(ans.estimate >= count as f64);
        assert!(ans.estimate <= count as f64 + 0.02 * 5000.0);
    }

    #[test]
    fn frequency_rounded_sums_extensions() {
        let d = 10;
        let data = fixture(d, 5000, 2);
        let net = AlphaNet::new(d, 0.2).expect("valid");
        let summary = AlphaNetFrequency::build(&data, net, 4, 1024, 1 << 20, 8).expect("build");
        // Mid-size query gets grown; the summed estimate still brackets the
        // true count from above, within #extensions * eps * n.
        let cols = ColumnSet::from_indices(d, &[0, 2, 4, 6]).expect("valid");
        assert!(!net.contains(&cols));
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        let (key, count) = exact
            .sorted_counts()
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("ne");
        let ans = summary.frequency(&cols, key).expect("ok");
        assert!(ans.grown_by >= 1);
        assert_eq!(ans.extensions, 2u128.pow(ans.grown_by));
        assert!(
            ans.estimate >= count as f64,
            "summed estimate {} below true count {count}",
            ans.estimate
        );
        let slack = ans.extensions as f64 * (std::f64::consts::E / 1024.0) * 5000.0;
        assert!(
            ans.estimate <= count as f64 + slack,
            "estimate {} above count {count} + slack {slack}",
            ans.estimate
        );
    }

    #[test]
    fn heavy_hitters_recall_through_rounding() {
        let d = 12;
        let data = fixture(d, 20_000, 3);
        let net = AlphaNet::new(d, 0.2).expect("valid");
        let summary = AlphaNetHeavyHitters::build(&data, net, 128, 1 << 22).expect("build");
        for mask in [0b111100001111u64, 0b10101010, 0b11] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            let exact = FrequencyVector::compute(&data, &cols).expect("fits");
            let truth: Vec<PatternKey> = exact
                .heavy_hitters(0.1, 1.0)
                .into_iter()
                .map(|(k, _)| k)
                .collect();
            let reported: Vec<PatternKey> = summary
                .heavy_hitters(&cols, 0.1, 2.0)
                .expect("ok")
                .into_iter()
                .map(|h| h.key)
                .collect();
            for k in &truth {
                assert!(
                    reported.contains(k),
                    "mask {mask:#b}: missed true heavy hitter {k:?}"
                );
            }
        }
    }

    #[test]
    fn heavy_hitter_estimates_bracket_truth() {
        let d = 10;
        let data = fixture(d, 10_000, 4);
        let net = AlphaNet::new(d, 0.25).expect("valid");
        let summary = AlphaNetHeavyHitters::build(&data, net, 256, 1 << 20).expect("build");
        let cols = ColumnSet::from_indices(d, &[1, 3, 5, 7]).expect("valid");
        let exact = FrequencyVector::compute(&data, &cols).expect("fits");
        for h in summary.heavy_hitters(&cols, 0.05, 2.0).expect("ok") {
            let truth = exact.frequency(h.key) as f64;
            // SpaceSaving overestimates by at most n/slots per candidate,
            // summed over extensions that were monitored.
            assert!(h.estimate >= truth * 0.5, "estimate far below truth");
            assert!(
                h.estimate <= truth + 10_000.0 / 256.0 * 64.0,
                "estimate {} too far above truth {truth}",
                h.estimate
            );
        }
    }

    #[test]
    fn extension_cap_enforced() {
        // Large alphabet + wide growth -> enumeration refused, typed error.
        let data = pfe_stream::gen::uniform_qary(64, 12, 100, 5);
        let net = AlphaNet::new(12, 0.3).expect("valid");
        let summary = AlphaNetFrequency::build(&data, net, 2, 64, 1 << 20, 9).expect("build");
        let cols = ColumnSet::from_indices(12, &[0, 1, 2, 3, 4]).expect("valid");
        // grown_by = large(10) - 5 = 5 -> 64^5 = 2^30 > cap.
        let r = summary.frequency(&cols, PatternKey::new(0));
        assert!(matches!(r, Err(QueryError::BadParameter(_))));
    }

    #[test]
    fn space_scales_with_net() {
        let d = 10;
        let data = fixture(d, 1000, 6);
        let tight = AlphaNetFrequency::build(
            &data,
            AlphaNet::new(d, 0.4).expect("valid"),
            2,
            64,
            1 << 20,
            0,
        )
        .expect("build");
        let loose = AlphaNetFrequency::build(
            &data,
            AlphaNet::new(d, 0.1).expect("valid"),
            2,
            64,
            1 << 20,
            0,
        )
        .expect("build");
        assert!(loose.num_sketches() > tight.num_sketches());
        assert!(loose.space_bytes() > tight.space_bytes());
    }

    #[test]
    fn u64_key_capacity_checked() {
        // Q=16, d=63 would need 252 bits for keys: rejected.
        let m = pfe_row::QaryMatrix::new(16, 63);
        let data = Dataset::Qary(m);
        let net = AlphaNet::new(63, 0.25).expect("valid");
        assert!(matches!(
            AlphaNetHeavyHitters::build(&data, net, 8, u128::MAX),
            Err(QueryError::BadParameter(_))
        ));
    }
}
