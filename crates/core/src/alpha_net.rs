//! The α-net summaries of Section 6 (Algorithm 1, Lemmas 6.2/6.4,
//! Theorem 6.5).
//!
//! An α-net `N = {U ⊆ [d] : |U| ≤ (1/2−α)d or |U| ≥ (1/2+α)d}` has size at
//! most `2^{H(1/2−α)d+1}` (Lemma 6.2) — strictly sublinear in `2^d`. The
//! summary keeps one β-approximate sketch per net subset; a query `C` not
//! in the net is *rounded* to an α-neighbour `C′ ∈ N` with
//! `|C Δ C′| ≤ ⌈αd⌉`, and the answer for `C′` is returned. The price is
//! the rounding distortion of Lemma 6.4:
//!
//! - `F_0`: `r = Q^{|CΔC′|}` (binary: `2^{αd}` worst case),
//! - `F_p, p > 1`: `r = Q^{|CΔC′|(p−1)}`,
//! - `F_p, p < 1`: `r = Q^{|CΔC′|(1−p)}`,
//!
//! for an overall `β·r(α,d)` approximation (Theorem 6.5). Against keeping
//! all `2^d` sketches this trades an `N^α`-type factor for
//! `min(N^{H(1/2−α)}, n)`-type space, `N = 2^d` — the tradeoff Figure 1
//! plots and our `figure1` bench regenerates.

use pfe_codes::binomial::binomial_sum;
use pfe_codes::entropy::{binary_entropy, net_size_bound_log2};
use pfe_codes::subsets::FixedWeightIter;
use pfe_hash::builder::{seeded_map, SeededHashMap};
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, Dataset, PatternCodec, PatternKey};
use pfe_sketch::traits::{DistinctSketch, MomentSketch, SpaceUsage};

use crate::problem::{check_dims, QueryError};

/// Seed for pattern-key fingerprinting; fixed so that the same pattern maps
/// to the same 64-bit item in every sketch (sketch-internal hashing is
/// seeded per sketch by the factory).
const FINGERPRINT_SEED: u64 = 0xf1a9_f1a9_f1a9_f1a9;

/// Which net subsets to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetMode {
    /// Every subset of the net (the paper's Algorithm 1).
    Full,
    /// Only the boundary weights `(1/2−α)d` and `(1/2+α)d` — an engineering
    /// ablation: all queries are rounded (even net members of other sizes),
    /// trading accuracy on small/large queries for far fewer sketches.
    BoundaryOnly,
}

/// The α-net over `P([d])` (Definition 6.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaNet {
    d: u32,
    alpha: f64,
    /// Largest "small" size `⌊(1/2−α)d⌋`.
    small: u32,
    /// Smallest "large" size `⌈(1/2+α)d⌉`.
    large: u32,
}

/// A query after net rounding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundedQuery {
    /// The net member the query was rounded to (equals the query if it was
    /// already a member).
    pub target: ColumnSet,
    /// `|C Δ C′|`.
    pub sym_diff: u32,
}

impl AlphaNet {
    /// Define the α-net for dimension `d`.
    ///
    /// ```
    /// use pfe_core::alpha_net::AlphaNet;
    ///
    /// let net = AlphaNet::new(20, 0.25).unwrap();
    /// assert_eq!(net.small_size(), 5);   // floor((1/2 - 0.25) * 20)
    /// assert_eq!(net.large_size(), 15);  // ceil((1/2 + 0.25) * 20)
    /// // Lemma 6.2: strictly sublinear in 2^d.
    /// assert!(net.size() < 1 << 20);
    /// ```
    ///
    /// # Errors
    /// Fails unless `1 ≤ d ≤ 63` and `α ∈ (0, 1/2)`.
    pub fn new(d: u32, alpha: f64) -> Result<Self, QueryError> {
        if d == 0 || d > 63 {
            return Err(QueryError::BadParameter(format!("d={d} outside 1..=63")));
        }
        if !(alpha > 0.0 && alpha < 0.5) {
            return Err(QueryError::BadParameter(format!(
                "alpha={alpha} outside (0, 1/2)"
            )));
        }
        let small = ((0.5 - alpha) * d as f64).floor() as u32;
        let large = ((0.5 + alpha) * d as f64).ceil() as u32;
        debug_assert!(small < large);
        Ok(Self {
            d,
            alpha,
            small,
            large,
        })
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// The parameter `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Largest small-side size `⌊(1/2−α)d⌋`.
    pub fn small_size(&self) -> u32 {
        self.small
    }

    /// Smallest large-side size `⌈(1/2+α)d⌉`.
    pub fn large_size(&self) -> u32 {
        self.large
    }

    /// Net membership (Definition 6.1).
    pub fn contains(&self, cols: &ColumnSet) -> bool {
        cols.dimension() == self.d && (cols.len() <= self.small || cols.len() >= self.large)
    }

    /// Exact net size `|N|`.
    pub fn size(&self) -> u128 {
        let lo = binomial_sum(self.d as u64, self.small as u64).expect("fits for d <= 63");
        let hi = binomial_sum(self.d as u64, (self.d - self.large) as u64).expect("fits");
        lo + hi
    }

    /// Lemma 6.2's bound `2^{H(1/2−α)d+1}` in log2 form.
    pub fn size_bound_log2(&self) -> f64 {
        net_size_bound_log2(self.d, self.alpha)
    }

    /// Worst-case rounding `max_C |C Δ C′|` over all queries — at most
    /// `⌈αd⌉` (paper's bound); exact value `⌈(large − small)/2⌉` attained
    /// at the middle size.
    pub fn max_rounding(&self) -> u32 {
        (self.large - self.small).div_ceil(2)
    }

    /// Round a query to its nearest net member (fewest column changes;
    /// ties prefer shrinking). Deterministic: shrinking drops the largest
    /// column indices, growing adds the smallest absent indices.
    ///
    /// ```
    /// use pfe_core::alpha_net::AlphaNet;
    /// use pfe_row::ColumnSet;
    ///
    /// let net = AlphaNet::new(12, 0.25).unwrap();   // small=3, large=9
    /// let mid = ColumnSet::from_indices(12, &[0, 2, 4, 6, 8]).unwrap();
    /// let r = net.round(&mid).unwrap();
    /// assert!(net.contains(&r.target));
    /// assert_eq!(r.sym_diff, 2);                     // 5 -> 3 columns
    /// ```
    ///
    /// # Errors
    /// Dimension mismatch.
    pub fn round(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        check_dims(self.d, cols)?;
        if self.contains(cols) {
            return Ok(RoundedQuery {
                target: *cols,
                sym_diff: 0,
            });
        }
        let len = cols.len();
        let shrink_cost = len - self.small;
        let grow_cost = self.large - len;
        if shrink_cost <= grow_cost {
            // Drop the largest indices.
            let mut mask = cols.mask();
            for _ in 0..shrink_cost {
                let top = 63 - mask.leading_zeros();
                mask &= !(1u64 << top);
            }
            Ok(RoundedQuery {
                target: ColumnSet::from_mask(self.d, mask).expect("subset of valid mask"),
                sym_diff: shrink_cost,
            })
        } else {
            // Add the smallest absent indices.
            let mut mask = cols.mask();
            let full = (1u64 << self.d) - 1;
            for _ in 0..grow_cost {
                let absent = full & !mask;
                let low = absent.trailing_zeros();
                mask |= 1u64 << low;
            }
            Ok(RoundedQuery {
                target: ColumnSet::from_mask(self.d, mask).expect("subset of valid mask"),
                sym_diff: grow_cost,
            })
        }
    }

    /// Iterate the masks of the materialized subsets under `mode`.
    pub fn members(&self, mode: NetMode) -> impl Iterator<Item = u64> + '_ {
        let weights: Vec<u32> = match mode {
            NetMode::Full => (0..=self.small).chain(self.large..=self.d).collect(),
            NetMode::BoundaryOnly => vec![self.small, self.large],
        };
        weights
            .into_iter()
            .flat_map(move |w| FixedWeightIter::new(self.d, w))
    }

    /// Number of materialized subsets under `mode`.
    pub fn member_count(&self, mode: NetMode) -> u128 {
        match mode {
            NetMode::Full => self.size(),
            NetMode::BoundaryOnly => {
                pfe_codes::binomial::binomial(self.d as u64, self.small as u64).expect("fits")
                    + pfe_codes::binomial::binomial(self.d as u64, self.large as u64).expect("fits")
            }
        }
    }

    /// Rounding distortion bound for `F_0` at this net's worst case over
    /// alphabet `q`: `q^{max_rounding}` (Lemma 6.4(1), generalized from the
    /// binary `2^{αd}`).
    pub fn f0_distortion_bound(&self, q: u32) -> f64 {
        (q as f64).powi(self.max_rounding() as i32)
    }

    /// Rounding distortion bound for `F_p`: `q^{max_rounding·|p−1|}`
    /// (Lemma 6.4(2)–(3)).
    pub fn fp_distortion_bound(&self, q: u32, p: f64) -> f64 {
        (q as f64).powf(self.max_rounding() as f64 * (p - 1.0).abs())
    }

    /// The relative-space curve value of Figure 1: `|N| / 2^d` (exact).
    pub fn relative_space(&self) -> f64 {
        self.size() as f64 / 2f64.powi(self.d as i32)
    }

    /// The analytic relative-space bound `2^{H(1/2−α)d}/2^d` plotted in
    /// Figure 1's leftmost pane.
    pub fn relative_space_bound(&self) -> f64 {
        (binary_entropy(0.5 - self.alpha) * self.d as f64 - self.d as f64).exp2()
    }

    /// The inverse of Lemma 6.2: the most accurate net (smallest α, hence
    /// smallest distortion) whose exact size fits within `max_sketches`.
    ///
    /// Scans the finitely many distinct nets for dimension `d` (the net is
    /// determined by the integer pair `(small, large)`), so the returned
    /// net is exactly optimal for the budget, not a bound-based guess.
    ///
    /// # Errors
    /// Fails if `d` is out of range or even the sparsest net (α near 1/2,
    /// size 2: the empty and full subsets... plus singletons) exceeds the
    /// budget.
    pub fn for_budget(d: u32, max_sketches: u128) -> Result<Self, QueryError> {
        let mut best: Option<AlphaNet> = None;
        // Alpha grid fine enough to hit every (small, large) pair.
        let steps = (4 * d).max(8);
        for i in 1..steps {
            let alpha = i as f64 / (2.0 * steps as f64); // (0, 1/2)
            let net = AlphaNet::new(d, alpha)?;
            if net.size() <= max_sketches {
                match best {
                    Some(b) if b.alpha <= alpha => {}
                    _ => best = Some(net),
                }
            }
        }
        best.ok_or_else(|| {
            QueryError::BadParameter(format!(
                "no alpha-net of dimension {d} fits within {max_sketches} sketches"
            ))
        })
    }
}

impl Persist for AlphaNet {
    fn encode(&self, enc: &mut Encoder) {
        // `small`/`large` are derived from (d, alpha) deterministically, so
        // the pair is the complete state.
        enc.put_u32(self.d);
        enc.put_f64(self.alpha);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let d = dec.take_u32()?;
        let alpha = dec.take_f64()?;
        Self::new(d, alpha)
            .map_err(|e| PersistError::Malformed(format!("alpha-net parameters: {e}")))
    }
}

impl Persist for NetMode {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            Self::Full => 0,
            Self::BoundaryOnly => 1,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        match dec.take_u8()? {
            0 => Ok(Self::Full),
            1 => Ok(Self::BoundaryOnly),
            other => Err(PersistError::Malformed(format!(
                "net mode tag must be 0 (Full) or 1 (BoundaryOnly), got {other}"
            ))),
        }
    }
}

/// Encode a per-mask sketch map in ascending mask order, so equal maps
/// always serialize to equal bytes (HashMap iteration order is not part of
/// the wire format).
pub(crate) fn encode_sketch_map<S: Persist>(map: &SeededHashMap<u64, S>, enc: &mut Encoder) {
    let mut masks: Vec<u64> = map.keys().copied().collect();
    masks.sort_unstable();
    enc.put_len(masks.len());
    for mask in masks {
        enc.put_u64(mask);
        map[&mask].encode(enc);
    }
}

/// Decode a per-mask sketch map and verify it holds *exactly* the net's
/// materialized membership under `mode` — a missing member would later
/// panic at query time, so it is rejected here as malformed input.
pub(crate) fn decode_sketch_map<S: Persist>(
    dec: &mut Decoder<'_>,
    net: &AlphaNet,
    mode: NetMode,
    map_seed: u64,
) -> Result<SeededHashMap<u64, S>, PersistError> {
    // Each entry is at least a mask (8 bytes) plus one sketch byte.
    let n = dec.take_len(9)?;
    let expected = net.member_count(mode);
    if n as u128 != expected {
        return Err(PersistError::Malformed(format!(
            "sketch map holds {n} subset(s), net materializes {expected}"
        )));
    }
    let limit = if net.d == 0 { 0 } else { (1u64 << net.d) - 1 };
    let mut map: SeededHashMap<u64, S> = seeded_map(map_seed);
    map.reserve(n);
    for _ in 0..n {
        let mask = dec.take_u64()?;
        if mask & !limit != 0 {
            return Err(PersistError::Malformed(format!(
                "subset mask {mask:#b} has bits above d={}",
                net.d
            )));
        }
        let sketch = S::decode(dec)?;
        if map.insert(mask, sketch).is_some() {
            return Err(PersistError::Malformed(format!(
                "duplicate subset mask {mask:#b}"
            )));
        }
    }
    if let Some(missing) = net.members(mode).find(|m| !map.contains_key(m)) {
        return Err(PersistError::Malformed(format!(
            "net member {missing:#b} missing from sketch map"
        )));
    }
    Ok(map)
}

/// Per-query answer from an α-net summary.
#[derive(Debug, Clone, PartialEq)]
pub struct NetAnswer {
    /// The sketch's estimate on the rounded query.
    pub estimate: f64,
    /// The net member actually answered.
    pub answered_on: ColumnSet,
    /// `|C Δ C′|` for this query.
    pub sym_diff: u32,
    /// The per-query distortion factor `q^{|CΔC′|}` (for `F_0`) or
    /// `q^{|CΔC′|·|p−1|}` (for `F_p`) — tighter than the worst-case
    /// `q^{αd}` when the query rounds by less.
    pub distortion_bound: f64,
}

/// Shared build loop: one sketch per net member, fed all projected rows.
///
/// Subset-major order (all rows per subset, then next subset) keeps each
/// sketch hot in cache; the binary path projects with `PEXT` and the Q-ary
/// path reuses one codec per subset width.
fn build_sketch_map<T>(
    data: &Dataset,
    net: &AlphaNet,
    mode: NetMode,
    max_subsets: u128,
    mut make: impl FnMut(u64) -> T,
    mut feed: impl FnMut(&mut T, u64),
) -> Result<SeededHashMap<u64, T>, QueryError> {
    check_dims(net.d, &ColumnSet::empty(data.dimension()).expect("d <= 63"))?;
    let count = net.member_count(mode);
    if count > max_subsets {
        return Err(QueryError::BadParameter(format!(
            "net would materialize {count} subsets, above the safety cap {max_subsets}"
        )));
    }
    let mut map: SeededHashMap<u64, T> = seeded_map(0xa1fa);
    map.reserve(count as usize);
    let q = data.alphabet();
    for mask in net.members(mode) {
        let cols = ColumnSet::from_mask(net.d, mask).expect("valid member");
        let mut sketch = make(mask);
        match data {
            Dataset::Binary(m) => {
                for &row in m.rows() {
                    let key = pfe_row::pext_u64(row, mask);
                    feed(
                        &mut sketch,
                        PatternKey::from(key).fingerprint64(FINGERPRINT_SEED),
                    );
                }
            }
            Dataset::Qary(m) => {
                let codec = PatternCodec::new(q, cols.len())?;
                for i in 0..m.num_rows() {
                    let key = m.project_row(i, &cols, &codec);
                    feed(&mut sketch, key.fingerprint64(FINGERPRINT_SEED));
                }
            }
        }
        map.insert(mask, sketch);
    }
    Ok(map)
}

/// BoundaryOnly fallback shared by the `F_0` and `F_p` nets: re-round an
/// in-net query of non-boundary size to the nearest boundary weight
/// (grow small queries to `small`, shrink large ones to `large`), with
/// the same deterministic index choice as [`AlphaNet::round`].
fn boundary_round(net: &AlphaNet, cols: &ColumnSet) -> RoundedQuery {
    let len = cols.len();
    let (target_w, cost) = if len <= net.small {
        (net.small, net.small - len)
    } else {
        (net.large, len - net.large)
    };
    let mut mask = cols.mask();
    if len < target_w {
        let full = (1u64 << net.d) - 1;
        for _ in 0..(target_w - len) {
            let absent = full & !mask;
            mask |= 1u64 << absent.trailing_zeros();
        }
    } else {
        for _ in 0..(len - target_w) {
            let top = 63 - mask.leading_zeros();
            mask &= !(1u64 << top);
        }
    }
    RoundedQuery {
        target: ColumnSet::from_mask(net.d, mask).expect("valid"),
        sym_diff: cost,
    }
}

/// α-net summary for projected `F_0` (Algorithm 1 with a distinct-count
/// plug-in).
#[derive(Clone)]
pub struct AlphaNetF0<S: DistinctSketch> {
    net: AlphaNet,
    mode: NetMode,
    sketches: SeededHashMap<u64, S>,
    q: u32,
}

impl<S: DistinctSketch> AlphaNetF0<S> {
    /// Build over a dataset. `factory(mask)` creates the β-approximate
    /// sketch for one subset (typically seeding it from the mask);
    /// `max_subsets` is a safety cap against runaway materialization.
    ///
    /// # Errors
    /// Parameter/codec errors, or net size above `max_subsets`.
    pub fn build(
        data: &Dataset,
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        mut factory: impl FnMut(u64) -> S,
    ) -> Result<Self, QueryError> {
        if data.dimension() != net.d {
            return Err(QueryError::DimensionMismatch {
                data: data.dimension(),
                query: net.d,
            });
        }
        let sketches = build_sketch_map(
            data,
            &net,
            mode,
            max_subsets,
            &mut factory,
            |s: &mut S, fp| s.insert(fp),
        )?;
        Ok(Self {
            net,
            mode,
            sketches,
            q: data.alphabet(),
        })
    }

    /// Build over a dataset with subset-level parallelism: the net members
    /// are partitioned across `threads` workers, each building its share of
    /// sketches over the full data (the build is embarrassingly parallel —
    /// sketches never interact). Produces *identical* sketches to
    /// [`build`](Self::build) with the same factory, since each sketch's
    /// randomness comes from its own mask-derived seed.
    ///
    /// # Errors
    /// Same as [`build`](Self::build); additionally rejects `threads == 0`.
    pub fn build_parallel(
        data: &Dataset,
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        factory: impl Fn(u64) -> S + Sync,
        threads: usize,
    ) -> Result<Self, QueryError>
    where
        S: Send,
    {
        if threads == 0 {
            return Err(QueryError::BadParameter("threads must be >= 1".into()));
        }
        if data.dimension() != net.d {
            return Err(QueryError::DimensionMismatch {
                data: data.dimension(),
                query: net.d,
            });
        }
        let count = net.member_count(mode);
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        let members: Vec<u64> = net.members(mode).collect();
        let q = data.alphabet();
        // Pre-validate codecs once (all widths that occur).
        if let Dataset::Qary(_) = data {
            for &mask in &members {
                PatternCodec::new(q, mask.count_ones())?;
            }
        }
        let chunk = members.len().div_ceil(threads).max(1);
        let partial_maps = std::thread::scope(|scope| {
            let handles: Vec<_> = members
                .chunks(chunk)
                .map(|slice| {
                    let factory = &factory;
                    scope.spawn(move || {
                        let mut local: Vec<(u64, S)> = Vec::with_capacity(slice.len());
                        for &mask in slice {
                            let mut sketch = factory(mask);
                            match data {
                                Dataset::Binary(m) => {
                                    for &row in m.rows() {
                                        let key = pfe_row::pext_u64(row, mask);
                                        sketch.insert(
                                            PatternKey::from(key).fingerprint64(FINGERPRINT_SEED),
                                        );
                                    }
                                }
                                Dataset::Qary(m) => {
                                    let cols =
                                        ColumnSet::from_mask(net.d, mask).expect("valid member");
                                    let codec =
                                        PatternCodec::new(q, cols.len()).expect("pre-validated");
                                    for i in 0..m.num_rows() {
                                        let key = m.project_row(i, &cols, &codec);
                                        sketch.insert(key.fingerprint64(FINGERPRINT_SEED));
                                    }
                                }
                            }
                            local.push((mask, sketch));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect::<Vec<_>>()
        });
        let mut sketches: SeededHashMap<u64, S> = seeded_map(0xa1fa);
        sketches.reserve(count as usize);
        for local in partial_maps {
            for (mask, sketch) in local {
                sketches.insert(mask, sketch);
            }
        }
        Ok(Self {
            net,
            mode,
            sketches,
            q,
        })
    }

    /// Create an empty streaming summary for binary rows (`Q = 2`); feed
    /// rows with [`push_packed`](Self::push_packed). One-pass semantics:
    /// identical to [`build`](Self::build) over the same rows in any order
    /// (for order-insensitive sketches).
    ///
    /// # Errors
    /// Parameter errors; net size above `max_subsets`.
    pub fn new_streaming(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        factory: impl FnMut(u64) -> S,
    ) -> Result<Self, QueryError> {
        Self::new_streaming_qary(net, mode, max_subsets, 2, factory)
    }

    /// Create an empty streaming summary over alphabet `q`; feed rows with
    /// [`push_dense`](Self::push_dense) (or [`push_packed`](Self::push_packed)
    /// when `q = 2`). Validates every net codec up front so pushes are
    /// panic-free on in-alphabet rows.
    ///
    /// # Errors
    /// Parameter/codec errors; net size above `max_subsets`.
    pub fn new_streaming_qary(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        q: u32,
        mut factory: impl FnMut(u64) -> S,
    ) -> Result<Self, QueryError> {
        if q < 2 {
            return Err(QueryError::BadParameter(format!(
                "alphabet q={q} must be >= 2"
            )));
        }
        let count = net.member_count(mode);
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        if q > 2 {
            // Only widths that actually occur among materialized members
            // (mirrors `build`, which never sees non-member widths).
            let widths: Vec<u32> = match mode {
                NetMode::Full => (0..=net.small).chain(net.large..=net.d).collect(),
                NetMode::BoundaryOnly => vec![net.small, net.large],
            };
            for w in widths {
                PatternCodec::new(q, w)?;
            }
        }
        let mut sketches: SeededHashMap<u64, S> = seeded_map(0xa1fa);
        sketches.reserve(count as usize);
        for mask in net.members(mode) {
            sketches.insert(mask, factory(mask));
        }
        Ok(Self {
            net,
            mode,
            sketches,
            q,
        })
    }

    /// Observe one dense row over alphabet `q` (streaming ingestion;
    /// row-major update of every net sketch). Produces the same sketch
    /// contents as [`build`](Self::build) over the same rows.
    ///
    /// # Panics
    /// Panics on wrong row length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.net.d as usize, "row length != d");
        for &s in row {
            assert!((s as u32) < self.q, "symbol {s} outside alphabet");
        }
        if self.q == 2 {
            let mut packed = 0u64;
            for (i, &s) in row.iter().enumerate() {
                packed |= (s as u64) << i;
            }
            self.push_packed(packed);
            return;
        }
        // One codec per projection width, built on the stack per call
        // (PatternCodec is Copy and cheap to construct).
        let mut codecs: [Option<PatternCodec>; 64] = [None; 64];
        for (&mask, sketch) in self.sketches.iter_mut() {
            let cols = ColumnSet::from_mask(self.net.d, mask).expect("valid member");
            let w = cols.len() as usize;
            let codec = *codecs[w].get_or_insert_with(|| {
                PatternCodec::new(self.q, w as u32).expect("validated at construction")
            });
            let key = codec.encode_row(row, &cols);
            sketch.insert(key.fingerprint64(FINGERPRINT_SEED));
        }
    }

    /// Merge a summary built over a disjoint segment of the same stream:
    /// per-subset sketch merge through [`DistinctSketch::merge`]. Both
    /// summaries must share the net, mode, alphabet, and per-mask sketch
    /// parameters/seeds (use the same factory on both sides); then merging
    /// shard summaries is *exactly* union-equivalent for union-mergeable
    /// sketches such as KMV, HLL, and LinearCounting.
    ///
    /// # Panics
    /// Panics on net/mode/alphabet mismatch (and propagates the underlying
    /// sketch's parameter-mismatch panics).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.net, other.net, "alpha-net merge: net mismatch");
        assert_eq!(self.mode, other.mode, "alpha-net merge: mode mismatch");
        assert_eq!(self.q, other.q, "alpha-net merge: alphabet mismatch");
        for (mask, theirs) in other.sketches.iter() {
            self.sketches
                .get_mut(mask)
                .expect("identical net membership")
                .merge(theirs);
        }
    }

    /// Observe one packed binary row (streaming ingestion; row-major
    /// update of every net sketch).
    ///
    /// # Panics
    /// Panics if the row has bits at or above `d`.
    pub fn push_packed(&mut self, row: u64) {
        assert!(
            row & !((1u64 << self.net.d) - 1) == 0,
            "row has bits above d={}",
            self.net.d
        );
        assert_eq!(self.q, 2, "push_packed requires a binary summary");
        for (&mask, sketch) in self.sketches.iter_mut() {
            let key = pfe_row::pext_u64(row, mask);
            sketch.insert(PatternKey::from(key).fingerprint64(FINGERPRINT_SEED));
        }
    }

    /// The net definition.
    pub fn net(&self) -> &AlphaNet {
        &self.net
    }

    /// The materialization mode.
    pub fn mode(&self) -> NetMode {
        self.mode
    }

    /// The alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Number of sketches kept.
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// The sketch materialized for `mask`, if it is a net member —
    /// exposed so callers (e.g. the engine's resume path) can verify
    /// sketch parameters without reaching into the map.
    pub fn sketch(&self, mask: u64) -> Option<&S> {
        self.sketches.get(&mask)
    }

    /// Round a query exactly as [`f0`](Self::f0) will (BoundaryOnly mode
    /// also rounds in-net queries of non-boundary sizes).
    pub fn effective_rounding(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        let mut r = self.net.round(cols)?;
        if self.mode == NetMode::BoundaryOnly && !self.sketches.contains_key(&r.target.mask()) {
            r = boundary_round(&self.net, cols);
        }
        Ok(r)
    }

    /// Answer a projected `F_0` query (Algorithm 1 lines 4–6).
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0(&self, cols: &ColumnSet) -> Result<NetAnswer, QueryError> {
        let r = self.effective_rounding(cols)?;
        let sketch = self
            .sketches
            .get(&r.target.mask())
            .expect("rounded target is materialized");
        Ok(NetAnswer {
            estimate: sketch.estimate(),
            answered_on: r.target,
            sym_diff: r.sym_diff,
            distortion_bound: (self.q as f64).powi(r.sym_diff as i32),
        })
    }
}

impl<S: DistinctSketch + Persist> Persist for AlphaNetF0<S> {
    fn encode(&self, enc: &mut Encoder) {
        self.net.encode(enc);
        self.mode.encode(enc);
        enc.put_u32(self.q);
        encode_sketch_map(&self.sketches, enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let net = AlphaNet::decode(dec)?;
        let mode = NetMode::decode(dec)?;
        let q = dec.take_u32()?;
        if q < 2 {
            return Err(PersistError::Malformed(format!("alphabet q={q} below 2")));
        }
        let sketches = decode_sketch_map(dec, &net, mode, 0xa1fa)?;
        Ok(Self {
            net,
            mode,
            sketches,
            q,
        })
    }
}

impl<S: DistinctSketch> SpaceUsage for AlphaNetF0<S> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

/// α-net summary for projected `F_p` (Algorithm 1 with a moment-sketch
/// plug-in: `AmsF2` for `p = 2`, `StableFp` for `0 < p < 2`).
#[derive(Clone)]
pub struct AlphaNetFp<M: MomentSketch> {
    net: AlphaNet,
    mode: NetMode,
    sketches: SeededHashMap<u64, M>,
    q: u32,
    p: f64,
}

impl<M: MomentSketch> AlphaNetFp<M> {
    /// Build over a dataset; `factory(mask)` must produce sketches whose
    /// [`MomentSketch::p`] all equal the same `p`.
    ///
    /// # Errors
    /// Parameter/codec errors, net size above `max_subsets`.
    pub fn build(
        data: &Dataset,
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        mut factory: impl FnMut(u64) -> M,
    ) -> Result<Self, QueryError> {
        if data.dimension() != net.d {
            return Err(QueryError::DimensionMismatch {
                data: data.dimension(),
                query: net.d,
            });
        }
        let mut p = None;
        let sketches = build_sketch_map(
            data,
            &net,
            mode,
            max_subsets,
            |mask| {
                let s = factory(mask);
                p.get_or_insert(s.p());
                s
            },
            |s: &mut M, fp| s.update(fp, 1),
        )?;
        let p = p.ok_or(QueryError::EmptyData)?;
        Ok(Self {
            net,
            mode,
            sketches,
            q: data.alphabet(),
            p,
        })
    }

    /// Create an empty streaming summary for binary rows (`Q = 2`); feed
    /// rows with [`push_packed`](Self::push_packed). One-pass semantics:
    /// identical to [`build`](Self::build) over the same rows in any order
    /// (moment sketches are sums, hence order-insensitive up to float
    /// rounding; exactly order-insensitive for integer-sum sketches).
    ///
    /// # Errors
    /// Parameter errors; net size above `max_subsets`.
    pub fn new_streaming(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        factory: impl FnMut(u64) -> M,
    ) -> Result<Self, QueryError> {
        Self::new_streaming_qary(net, mode, max_subsets, 2, factory)
    }

    /// Create an empty streaming summary over alphabet `q`; feed rows with
    /// [`push_dense`](Self::push_dense) (or [`push_packed`](Self::push_packed)
    /// when `q = 2`). Validates every net codec up front so pushes are
    /// panic-free on in-alphabet rows.
    ///
    /// # Errors
    /// Parameter/codec errors; net size above `max_subsets`.
    pub fn new_streaming_qary(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        q: u32,
        mut factory: impl FnMut(u64) -> M,
    ) -> Result<Self, QueryError> {
        if q < 2 {
            return Err(QueryError::BadParameter(format!(
                "alphabet q={q} must be >= 2"
            )));
        }
        let count = net.member_count(mode);
        if count > max_subsets {
            return Err(QueryError::BadParameter(format!(
                "net would materialize {count} subsets, above the safety cap {max_subsets}"
            )));
        }
        if q > 2 {
            // Only widths that actually occur among materialized members
            // (mirrors `build`, which never sees non-member widths).
            let widths: Vec<u32> = match mode {
                NetMode::Full => (0..=net.small).chain(net.large..=net.d).collect(),
                NetMode::BoundaryOnly => vec![net.small, net.large],
            };
            for w in widths {
                PatternCodec::new(q, w)?;
            }
        }
        let mut sketches: SeededHashMap<u64, M> = seeded_map(0xa1fa);
        sketches.reserve(count as usize);
        let mut p = None;
        for mask in net.members(mode) {
            let s = factory(mask);
            p.get_or_insert(s.p());
            sketches.insert(mask, s);
        }
        let p = p.ok_or(QueryError::EmptyData)?;
        Ok(Self {
            net,
            mode,
            sketches,
            q,
            p,
        })
    }

    /// Observe one dense row over alphabet `q` (streaming ingestion;
    /// row-major `+1` update of every net sketch). Produces the same
    /// sketch contents as [`build`](Self::build) over the same rows.
    ///
    /// # Panics
    /// Panics on wrong row length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        assert_eq!(row.len(), self.net.d as usize, "row length != d");
        for &s in row {
            assert!((s as u32) < self.q, "symbol {s} outside alphabet");
        }
        if self.q == 2 {
            let mut packed = 0u64;
            for (i, &s) in row.iter().enumerate() {
                packed |= (s as u64) << i;
            }
            self.push_packed(packed);
            return;
        }
        // One codec per projection width, built on the stack per call
        // (PatternCodec is Copy and cheap to construct).
        let mut codecs: [Option<PatternCodec>; 64] = [None; 64];
        for (&mask, sketch) in self.sketches.iter_mut() {
            let cols = ColumnSet::from_mask(self.net.d, mask).expect("valid member");
            let w = cols.len() as usize;
            let codec = *codecs[w].get_or_insert_with(|| {
                PatternCodec::new(self.q, w as u32).expect("validated at construction")
            });
            let key = codec.encode_row(row, &cols);
            sketch.update(key.fingerprint64(FINGERPRINT_SEED), 1);
        }
    }

    /// Observe one packed binary row (streaming ingestion; row-major
    /// update of every net sketch).
    ///
    /// # Panics
    /// Panics if the row has bits at or above `d`.
    pub fn push_packed(&mut self, row: u64) {
        assert!(
            row & !((1u64 << self.net.d) - 1) == 0,
            "row has bits above d={}",
            self.net.d
        );
        assert_eq!(self.q, 2, "push_packed requires a binary summary");
        for (&mask, sketch) in self.sketches.iter_mut() {
            let key = pfe_row::pext_u64(row, mask);
            sketch.update(PatternKey::from(key).fingerprint64(FINGERPRINT_SEED), 1);
        }
    }

    /// Merge a summary built over a disjoint segment of the same stream:
    /// per-subset sketch merge through [`MomentSketch::merge_with`]. Both
    /// summaries must share the net, mode, alphabet, order `p`, and
    /// per-mask sketch parameters/seeds (use the same factory on both
    /// sides). Integer-sum sketches (`AmsF2`) merge *bit-exactly* under
    /// any grouping; float-sum sketches (`StableFp`) merge exactly up to
    /// f64 addition order.
    ///
    /// # Panics
    /// Panics on net/mode/alphabet/order mismatch (and propagates the
    /// underlying sketch's parameter-mismatch panics).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.net, other.net, "alpha-net merge: net mismatch");
        assert_eq!(self.mode, other.mode, "alpha-net merge: mode mismatch");
        assert_eq!(self.q, other.q, "alpha-net merge: alphabet mismatch");
        assert_eq!(
            self.p.to_bits(),
            other.p.to_bits(),
            "alpha-net merge: moment order mismatch"
        );
        for (mask, theirs) in other.sketches.iter() {
            self.sketches
                .get_mut(mask)
                .expect("identical net membership")
                .merge_with(theirs);
        }
    }

    /// The moment order this net answers.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The net definition.
    pub fn net(&self) -> &AlphaNet {
        &self.net
    }

    /// The materialization mode.
    pub fn mode(&self) -> NetMode {
        self.mode
    }

    /// The alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// Number of sketches kept.
    pub fn num_sketches(&self) -> usize {
        self.sketches.len()
    }

    /// The sketch materialized for `mask`, if it is a net member —
    /// exposed so callers (e.g. guarantee reporting) can read sketch
    /// parameters without reaching into the map.
    pub fn sketch(&self, mask: u64) -> Option<&M> {
        self.sketches.get(&mask)
    }

    /// Round a query exactly as [`fp`](Self::fp) will (BoundaryOnly mode
    /// also rounds in-net queries of non-boundary sizes).
    pub fn effective_rounding(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        let mut r = self.net.round(cols)?;
        if self.mode == NetMode::BoundaryOnly && !self.sketches.contains_key(&r.target.mask()) {
            r = boundary_round(&self.net, cols);
        }
        Ok(r)
    }

    /// Answer a projected `F_p` query.
    ///
    /// # Errors
    /// Dimension errors; `UnsupportedMoment` if `p` differs from the build
    /// order.
    pub fn fp(&self, cols: &ColumnSet, p: f64) -> Result<NetAnswer, QueryError> {
        if (p - self.p).abs() > 1e-12 {
            return Err(QueryError::UnsupportedMoment {
                requested: p,
                supported: self.p,
            });
        }
        let r = self.effective_rounding(cols)?;
        let sketch = self
            .sketches
            .get(&r.target.mask())
            .expect("rounded target is materialized");
        Ok(NetAnswer {
            estimate: sketch.estimate(),
            answered_on: r.target,
            sym_diff: r.sym_diff,
            distortion_bound: (self.q as f64).powf(r.sym_diff as f64 * (self.p - 1.0).abs()),
        })
    }
}

impl<M: MomentSketch + Persist> Persist for AlphaNetFp<M> {
    fn encode(&self, enc: &mut Encoder) {
        self.net.encode(enc);
        self.mode.encode(enc);
        enc.put_u32(self.q);
        enc.put_f64(self.p);
        encode_sketch_map(&self.sketches, enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let net = AlphaNet::decode(dec)?;
        let mode = NetMode::decode(dec)?;
        let q = dec.take_u32()?;
        if q < 2 {
            return Err(PersistError::Malformed(format!("alphabet q={q} below 2")));
        }
        let p = dec.take_f64()?;
        let sketches: SeededHashMap<u64, M> = decode_sketch_map(dec, &net, mode, 0xa1fa)?;
        if let Some(bad) = sketches.values().find(|s| (s.p() - p).abs() > 1e-12) {
            return Err(PersistError::Malformed(format!(
                "summary claims moment order p={p} but holds a p={} sketch",
                bad.p()
            )));
        }
        Ok(Self {
            net,
            mode,
            sketches,
            q,
            p,
        })
    }
}

impl<M: MomentSketch> SpaceUsage for AlphaNetFp<M> {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .sketches
                .values()
                .map(|s| s.space_bytes() + std::mem::size_of::<u64>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_sketch::kmv::Kmv;
    use pfe_stream::gen::uniform_binary;

    fn net(d: u32, alpha: f64) -> AlphaNet {
        AlphaNet::new(d, alpha).expect("valid")
    }

    #[test]
    fn definition_sizes() {
        let n = net(20, 0.25);
        assert_eq!(n.small_size(), 5);
        assert_eq!(n.large_size(), 15);
        assert!(n.contains(&ColumnSet::from_indices(20, &[0, 1, 2]).expect("v")));
        assert!(!n.contains(&ColumnSet::from_indices(20, &(0..8).collect::<Vec<_>>()).expect("v")));
        assert!(n.contains(&ColumnSet::full(20).expect("v")));
    }

    #[test]
    fn size_matches_lemma_bound() {
        for d in [12u32, 16, 20] {
            for &alpha in &[0.1, 0.2, 0.3] {
                let n = net(d, alpha);
                assert!(
                    (n.size() as f64).log2() <= n.size_bound_log2() + 1e-9,
                    "Lemma 6.2 violated at d={d}, alpha={alpha}"
                );
                assert!(n.size() < 1u128 << d, "net not sublinear in 2^d");
            }
        }
    }

    #[test]
    fn member_enumeration_matches_size() {
        let n = net(12, 0.2);
        assert_eq!(n.members(NetMode::Full).count() as u128, n.size());
        assert_eq!(
            n.members(NetMode::BoundaryOnly).count() as u128,
            n.member_count(NetMode::BoundaryOnly)
        );
        // All members really are members.
        for mask in n.members(NetMode::Full) {
            let c = ColumnSet::from_mask(12, mask).expect("v");
            assert!(n.contains(&c));
        }
    }

    #[test]
    fn rounding_bounds_and_membership() {
        let n = net(20, 0.2);
        for len in 0..=20u32 {
            let cols = ColumnSet::from_indices(20, &(0..len).collect::<Vec<_>>()).expect("v");
            let r = n.round(&cols).expect("ok");
            assert!(n.contains(&r.target), "rounded target not in net");
            assert!(
                r.sym_diff <= n.max_rounding(),
                "rounding {} exceeds max {}",
                r.sym_diff,
                n.max_rounding()
            );
            assert_eq!(
                r.target.symmetric_difference(&cols).len(),
                r.sym_diff,
                "sym_diff miscounted"
            );
            // Rounding is monotone: either subset or superset of the query.
            assert!(r.target.is_subset_of(&cols) || cols.is_subset_of(&r.target));
        }
    }

    #[test]
    fn max_rounding_at_most_alpha_d() {
        for d in [10u32, 15, 20, 30] {
            for &alpha in &[0.05, 0.15, 0.25, 0.4] {
                let n = net(d, alpha);
                let bound = (alpha * d as f64).ceil() as u32 + 1;
                assert!(
                    n.max_rounding() <= bound,
                    "max rounding {} above ceil(alpha d)+1 = {bound} at d={d}, alpha={alpha}",
                    n.max_rounding()
                );
            }
        }
    }

    #[test]
    fn f0_net_exact_on_members_within_sketch_error() {
        let d = 10;
        let data = uniform_binary(d, 2000, 1);
        let n = net(d, 0.2);
        let summary = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 20, |mask| {
            Kmv::new(256, mask ^ 0xbeef)
        })
        .expect("build");
        // A query already in the net: answer within KMV error of exact.
        let cols = ColumnSet::from_indices(d, &[0, 1, 2]).expect("v");
        assert!(n.contains(&cols));
        let ans = summary.f0(&cols).expect("ok");
        assert_eq!(ans.sym_diff, 0);
        assert_eq!(ans.distortion_bound, 1.0);
        let exact = pfe_row::FrequencyVector::compute(&data, &cols).expect("fits");
        let rel = (ans.estimate - exact.f0() as f64).abs() / exact.f0() as f64;
        assert!(rel < 0.3, "in-net estimate off by {rel}");
    }

    #[test]
    fn f0_net_respects_distortion_bound_on_rounded_queries() {
        let d = 12;
        let data = uniform_binary(d, 4000, 2);
        let n = net(d, 0.25);
        let summary = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 20, |mask| {
            Kmv::new(512, mask ^ 0xcafe)
        })
        .expect("build");
        // Mid-size queries get rounded; estimate must stay within
        // (sketch error) x (distortion bound) of the exact answer.
        for mask in [0b111111u64, 0b101010101010, 0b110011001100] {
            let cols = ColumnSet::from_mask(d, mask).expect("v");
            let ans = summary.f0(&cols).expect("ok");
            let exact = pfe_row::FrequencyVector::compute(&data, &cols).expect("fits");
            let ratio = ans.estimate / exact.f0() as f64;
            let allowed = ans.distortion_bound * 1.5; // sketch slack
            assert!(
                ratio <= allowed && ratio >= 1.0 / allowed,
                "mask {mask:#b}: ratio {ratio} outside ±{allowed}x"
            );
        }
    }

    #[test]
    fn boundary_mode_far_fewer_sketches() {
        let d = 14;
        let data = uniform_binary(d, 500, 3);
        let n = net(d, 0.2);
        let full = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 24, |m| Kmv::new(16, m))
            .expect("build");
        let boundary = AlphaNetF0::build(&data, n, NetMode::BoundaryOnly, 1 << 24, |m| {
            Kmv::new(16, m)
        })
        .expect("build");
        // Boundary mode keeps exactly C(d, small) + C(d, large) sketches —
        // strictly fewer than the full net (which adds all interior
        // small/large weights).
        assert_eq!(
            boundary.num_sketches() as u128,
            n.member_count(NetMode::BoundaryOnly)
        );
        assert!(boundary.num_sketches() < full.num_sketches());
        // Boundary mode still answers every query.
        for len in 0..=d {
            let cols = ColumnSet::from_indices(d, &(0..len).collect::<Vec<_>>()).expect("v");
            boundary.f0(&cols).expect("answerable");
        }
    }

    #[test]
    fn safety_cap_enforced() {
        let d = 20;
        let data = uniform_binary(d, 10, 4);
        let n = net(d, 0.05); // huge net
        let r = AlphaNetF0::build(&data, n, NetMode::Full, 1000, |m| Kmv::new(8, m));
        assert!(matches!(r, Err(QueryError::BadParameter(_))));
    }

    #[test]
    fn space_tracks_sketch_count() {
        let d = 12;
        let data = uniform_binary(d, 200, 5);
        let tight = AlphaNetF0::build(&data, net(d, 0.4), NetMode::Full, 1 << 24, |m| {
            Kmv::new(16, m)
        })
        .expect("build");
        let loose = AlphaNetF0::build(&data, net(d, 0.1), NetMode::Full, 1 << 24, |m| {
            Kmv::new(16, m)
        })
        .expect("build");
        assert!(loose.num_sketches() > tight.num_sketches());
        assert!(loose.space_bytes() > tight.space_bytes());
    }

    #[test]
    fn bad_params_rejected() {
        assert!(AlphaNet::new(0, 0.2).is_err());
        assert!(AlphaNet::new(64, 0.2).is_err());
        assert!(AlphaNet::new(10, 0.0).is_err());
        assert!(AlphaNet::new(10, 0.5).is_err());
    }

    #[test]
    fn parallel_build_identical_to_sequential() {
        let d = 12;
        let data = uniform_binary(d, 1500, 21);
        let n = net(d, 0.25);
        let seq = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 22, |m| Kmv::new(64, m))
            .expect("build");
        for threads in [1usize, 2, 4, 7] {
            let par = AlphaNetF0::build_parallel(
                &data,
                n,
                NetMode::Full,
                1 << 22,
                |m| Kmv::new(64, m),
                threads,
            )
            .expect("parallel build");
            assert_eq!(par.num_sketches(), seq.num_sketches());
            for mask in [0b11u64, 0b111111000000, 0b101010101010] {
                let cols = ColumnSet::from_mask(d, mask).expect("valid");
                assert_eq!(
                    par.f0(&cols).expect("ok").estimate,
                    seq.f0(&cols).expect("ok").estimate,
                    "threads={threads}: parallel diverged at mask {mask:#b}"
                );
            }
        }
    }

    #[test]
    fn parallel_build_qary_and_errors() {
        let data = pfe_stream::gen::uniform_qary(3, 8, 300, 22);
        let n = net(8, 0.3);
        let par =
            AlphaNetF0::build_parallel(&data, n, NetMode::Full, 1 << 16, |m| Kmv::new(32, m), 3)
                .expect("qary parallel build");
        let seq = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 16, |m| Kmv::new(32, m))
            .expect("build");
        let cols = ColumnSet::from_indices(8, &[0, 3, 6]).expect("valid");
        assert_eq!(
            par.f0(&cols).expect("ok").estimate,
            seq.f0(&cols).expect("ok").estimate
        );
        // threads = 0 is a typed error.
        assert!(matches!(
            AlphaNetF0::build_parallel(&data, n, NetMode::Full, 1 << 16, |m| Kmv::new(8, m), 0),
            Err(QueryError::BadParameter(_))
        ));
    }

    #[test]
    fn budget_planner_returns_optimal_feasible_net() {
        let d = 16;
        for &budget in &[4u128, 64, 1024, 1 << 15] {
            let net = AlphaNet::for_budget(d, budget).expect("feasible");
            assert!(net.size() <= budget, "planner exceeded budget");
            // No distinct net with smaller alpha fits: check the next finer
            // grid step below the chosen alpha.
            let finer = net.alpha() - 1.0 / (8.0 * d as f64);
            if finer > 0.0 {
                let tighter = AlphaNet::new(d, finer).expect("valid");
                if tighter.small_size() != net.small_size()
                    || tighter.large_size() != net.large_size()
                {
                    assert!(
                        tighter.size() > budget,
                        "a strictly finer net also fits: planner suboptimal"
                    );
                }
            }
        }
        // Budget 1 is infeasible (even the sparsest net has >= 2 members).
        assert!(AlphaNet::for_budget(d, 1).is_err());
    }

    #[test]
    fn budget_planner_monotone_in_budget() {
        let d = 14;
        let mut prev_alpha = 1.0;
        for &budget in &[8u128, 128, 2048, 1 << 13] {
            let net = AlphaNet::for_budget(d, budget).expect("feasible");
            assert!(
                net.alpha() <= prev_alpha,
                "larger budget produced worse alpha"
            );
            prev_alpha = net.alpha();
        }
    }

    #[test]
    fn streaming_matches_batch_build() {
        // The one-pass model: pushing rows one at a time must produce the
        // same summary as the batch build (KMV is order-insensitive).
        let d = 10;
        let data = uniform_binary(d, 800, 7);
        let n = net(d, 0.25);
        let batch = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 20, |m| Kmv::new(64, m))
            .expect("build");
        let mut streamed =
            AlphaNetF0::new_streaming(n, NetMode::Full, 1 << 20, |m| Kmv::new(64, m)).expect("new");
        if let pfe_row::Dataset::Binary(m) = &data {
            for &row in m.rows() {
                streamed.push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        for mask in [0b11u64, 0b1111100000, 0b1010101010, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            assert_eq!(
                batch.f0(&cols).expect("ok").estimate,
                streamed.f0(&cols).expect("ok").estimate,
                "streamed summary diverged at mask {mask:#b}"
            );
        }
    }

    #[test]
    fn sharded_merge_equals_single_build() {
        // KMV with per-mask seeds is union-mergeable: building shards over
        // disjoint row segments and merging must equal one build exactly.
        let d = 12;
        let data = uniform_binary(d, 2000, 17);
        let n = net(d, 0.25);
        let single = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 22, |m| Kmv::new(64, m))
            .expect("build");
        let mut shards: Vec<AlphaNetF0<Kmv>> = (0..3)
            .map(|_| {
                AlphaNetF0::new_streaming(n, NetMode::Full, 1 << 22, |m| Kmv::new(64, m))
                    .expect("new")
            })
            .collect();
        if let pfe_row::Dataset::Binary(m) = &data {
            for (i, &row) in m.rows().iter().enumerate() {
                shards[i % 3].push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        for mask in [0b11u64, 0b111111000000, 0b101010101010, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            assert_eq!(
                merged.f0(&cols).expect("ok").estimate,
                single.f0(&cols).expect("ok").estimate,
                "sharded merge diverged at mask {mask:#b}"
            );
        }
    }

    #[test]
    fn qary_streaming_push_matches_build() {
        let data = pfe_stream::gen::uniform_qary(4, 7, 400, 23);
        let n = net(7, 0.3);
        let built = AlphaNetF0::build(&data, n, NetMode::Full, 1 << 16, |m| Kmv::new(32, m))
            .expect("build");
        let mut streamed =
            AlphaNetF0::new_streaming_qary(n, NetMode::Full, 1 << 16, 4, |m| Kmv::new(32, m))
                .expect("new");
        for i in 0..data.num_rows() {
            streamed.push_dense(&data.row_dense(i));
        }
        for mask in [0b1u64, 0b11, 0b1111110] {
            let cols = ColumnSet::from_mask(7, mask).expect("valid");
            assert_eq!(
                built.f0(&cols).expect("ok").estimate,
                streamed.f0(&cols).expect("ok").estimate,
                "qary streamed summary diverged at mask {mask:#b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "net mismatch")]
    fn merge_rejects_net_mismatch() {
        let a = AlphaNetF0::<Kmv>::new_streaming(net(8, 0.2), NetMode::Full, 1 << 16, |m| {
            Kmv::new(16, m)
        })
        .expect("new");
        let b = AlphaNetF0::<Kmv>::new_streaming(net(8, 0.3), NetMode::Full, 1 << 16, |m| {
            Kmv::new(16, m)
        })
        .expect("new");
        let mut a = a;
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "bits above d")]
    fn push_packed_rejects_out_of_range() {
        let n = net(4, 0.25);
        let mut s =
            AlphaNetF0::new_streaming(n, NetMode::Full, 1 << 10, |m| Kmv::new(8, m)).expect("new");
        s.push_packed(1 << 5);
    }

    #[test]
    fn fp_streaming_and_sharded_merge_match_batch_build_bit_exactly() {
        use pfe_sketch::ams_f2::AmsF2;
        // AMS sums are integers: streaming pushes and any merge grouping
        // must be bit-identical to the single batch build.
        let d = 10;
        let data = uniform_binary(d, 1200, 29);
        let n = net(d, 0.25);
        let batch = AlphaNetFp::build(&data, n, NetMode::Full, 1 << 20, |m| {
            AmsF2::new(5, 8, m ^ 0xf2f2)
        })
        .expect("build");
        let mut shards: Vec<AlphaNetFp<AmsF2>> = (0..3)
            .map(|_| {
                AlphaNetFp::new_streaming(n, NetMode::Full, 1 << 20, |m| {
                    AmsF2::new(5, 8, m ^ 0xf2f2)
                })
                .expect("new")
            })
            .collect();
        if let pfe_row::Dataset::Binary(m) = &data {
            for (i, &row) in m.rows().iter().enumerate() {
                shards[i % 3].push_packed(row);
            }
        } else {
            unreachable!("generator yields binary data");
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged.p(), 2.0);
        assert_eq!(merged.alphabet(), 2);
        assert_eq!(merged.mode(), NetMode::Full);
        for mask in [0b11u64, 0b1111100000, 0b1010101010, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            assert_eq!(
                merged.fp(&cols, 2.0).expect("ok").estimate.to_bits(),
                batch.fp(&cols, 2.0).expect("ok").estimate.to_bits(),
                "sharded Fp merge diverged at mask {mask:#b}"
            );
        }
    }

    #[test]
    fn fp_boundary_mode_rounds_and_reports_distortion() {
        use pfe_sketch::stable_fp::StableFp;
        let d = 10;
        let data = uniform_binary(d, 400, 31);
        let n = net(d, 0.25);
        let summary = AlphaNetFp::build(&data, n, NetMode::BoundaryOnly, 1 << 20, |m| {
            StableFp::new(8, 1.0, m ^ 0x51ab)
        })
        .expect("build");
        // In-net but non-boundary size: rounded, and the effective
        // rounding must agree with what fp() answers on.
        let cols = ColumnSet::from_indices(d, &[0]).expect("v");
        let r = summary.effective_rounding(&cols).expect("ok");
        let ans = summary.fp(&cols, 1.0).expect("ok");
        assert_eq!(ans.answered_on, r.target);
        assert_eq!(ans.sym_diff, r.sym_diff);
        assert!(r.sym_diff > 0);
        // p = 1 pays no rounding distortion (Lemma 6.4(2): |p-1| = 0).
        assert_eq!(ans.distortion_bound, 1.0);
        // Wrong order is a typed error.
        assert!(matches!(
            summary.fp(&cols, 1.5),
            Err(QueryError::UnsupportedMoment { .. })
        ));
    }

    #[test]
    fn relative_space_below_bound() {
        for &alpha in &[0.1, 0.2, 0.3, 0.4] {
            let n = net(20, alpha);
            assert!(n.relative_space() <= 2.0 * n.relative_space_bound() + 1e-12);
            assert!(n.relative_space() < 1.0);
        }
    }
}
