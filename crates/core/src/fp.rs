//! The `F_p` moment dispatch layer: configuration plus a two-variant net.
//!
//! The paper's Algorithm 1 is parameterized by a β-approximate sketch for
//! the base statistic; for frequency moments `F_p = Σ f_i^p` the right
//! plug-in depends on `p`:
//!
//! - `p = 2` — AMS sign sketches ([`AmsF2`]). Integer sums, so shard
//!   merges are **bit-exact** under any grouping or order.
//! - `0 < p < 2` — Indyk stable projections ([`StableFp`]) per Ping Li's
//!   skewed-projection analysis. Float sums: merges are exact up to f64
//!   addition order, so differently-grouped builds agree only up to ulps.
//!
//! [`FpNet`] is the closed dispatch over the two, keyed off the configured
//! order at construction; [`FpConfig`] names which orders an engine
//! materializes (each order gets its own α-net of sketches).

use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, Dataset};
use pfe_sketch::ams_f2::AmsF2;
use pfe_sketch::stable_fp::StableFp;
use pfe_sketch::traits::SpaceUsage;

use crate::alpha_net::{AlphaNet, AlphaNetFp, NetAnswer, NetMode, RoundedQuery};
use crate::bounds::{ams_f2_beta, stable_fp_beta};
use crate::problem::QueryError;

/// Salt folded into the engine seed before deriving per-order sketch
/// seeds, so the `F_p` nets draw randomness independent of the KMV /
/// CountMin / sample streams that share the same base seed.
const FP_SEED_SALT: u64 = 0xf9f9_0b5e_55aa_1e0f;

/// Derive the per-order base seed for the `idx`-th configured moment
/// order. The per-mask sketch seed is then `fp_seed(base, idx) ^ mask` —
/// a pure function of `(base seed, order index, subset)`, so every shard
/// derives identical sketch parameters and merges are well-defined.
pub fn fp_seed(base: u64, idx: usize) -> u64 {
    pfe_hash::mix::hash_u64(idx as u64, base ^ FP_SEED_SALT)
}

/// Configuration of the optional `F_p` moment nets.
///
/// Empty `orders` (the default) materializes nothing — `F_p` support is
/// opt-in because each order costs one full α-net of moment sketches.
#[derive(Debug, Clone, PartialEq)]
pub struct FpConfig {
    /// Moment orders to materialize, each in `(0, 2]`. Order `2.0`
    /// dispatches to AMS; fractional orders to stable projections.
    pub orders: Vec<f64>,
    /// Estimator count `t` of each [`StableFp`] sketch (fractional
    /// orders); the sketch β is [`stable_fp_beta`]`(stable_t)`.
    pub stable_t: usize,
    /// Median-group count of each [`AmsF2`] sketch (`p = 2`).
    pub ams_groups: usize,
    /// Estimators per AMS group; the sketch β is
    /// [`ams_f2_beta`]`(ams_per_group)`.
    pub ams_per_group: usize,
}

impl Default for FpConfig {
    fn default() -> Self {
        Self {
            orders: Vec::new(),
            stable_t: 32,
            ams_groups: 5,
            ams_per_group: 16,
        }
    }
}

impl FpConfig {
    /// Convenience: the default shape over the given orders.
    pub fn with_orders(orders: impl Into<Vec<f64>>) -> Self {
        Self {
            orders: orders.into(),
            ..Self::default()
        }
    }

    /// Check orders and sketch shapes.
    ///
    /// # Errors
    /// `BadParameter` on an order outside `(0, 2]`, a duplicate order, or
    /// a zero sketch dimension.
    pub fn validate(&self) -> Result<(), QueryError> {
        for (i, &p) in self.orders.iter().enumerate() {
            if !(p.is_finite() && p > 0.0 && p <= 2.0) {
                return Err(QueryError::BadParameter(format!(
                    "fp order p={p} outside (0, 2]"
                )));
            }
            if self.orders[..i].iter().any(|&q| q.to_bits() == p.to_bits()) {
                return Err(QueryError::BadParameter(format!("duplicate fp order {p}")));
            }
        }
        if !self.orders.is_empty() {
            if self.stable_t == 0 {
                return Err(QueryError::BadParameter("fp stable_t must be >= 1".into()));
            }
            if self.ams_groups == 0 || self.ams_per_group == 0 {
                return Err(QueryError::BadParameter(
                    "fp ams_groups/ams_per_group must be >= 1".into(),
                ));
            }
        }
        Ok(())
    }
}

impl Persist for FpConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len(self.orders.len());
        for &p in &self.orders {
            enc.put_f64(p);
        }
        enc.put_u64(self.stable_t as u64);
        enc.put_u64(self.ams_groups as u64);
        enc.put_u64(self.ams_per_group as u64);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let n = dec.take_len(8)?;
        let mut orders = Vec::with_capacity(n);
        for _ in 0..n {
            orders.push(dec.take_f64()?);
        }
        let cfg = Self {
            orders,
            stable_t: dec.take_u64()? as usize,
            ams_groups: dec.take_u64()? as usize,
            ams_per_group: dec.take_u64()? as usize,
        };
        cfg.validate()
            .map_err(|e| PersistError::Malformed(format!("fp config: {e}")))?;
        Ok(cfg)
    }
}

/// One materialized `F_p` α-net, dispatched on the order's sketch family.
#[derive(Clone)]
pub enum FpNet {
    /// `p = 2`: AMS sign sketches — bit-exact mergeable.
    Ams(AlphaNetFp<AmsF2>),
    /// `0 < p < 2`: Indyk stable projections — mergeable up to f64
    /// addition order.
    Stable(AlphaNetFp<StableFp>),
}

impl FpNet {
    /// Create an empty streaming net for order `p` over alphabet `q`.
    /// `seed` is the per-order base seed (see [`fp_seed`]); each subset's
    /// sketch is seeded `seed ^ mask`, shard-independently.
    ///
    /// # Errors
    /// `BadParameter` on an order outside `(0, 2]` or net/codec errors.
    pub fn new_streaming_qary(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        q: u32,
        p: f64,
        cfg: &FpConfig,
        seed: u64,
    ) -> Result<Self, QueryError> {
        if !(p.is_finite() && p > 0.0 && p <= 2.0) {
            return Err(QueryError::BadParameter(format!(
                "fp order p={p} outside (0, 2]"
            )));
        }
        if p == 2.0 {
            let inner = AlphaNetFp::new_streaming_qary(net, mode, max_subsets, q, |mask| {
                AmsF2::new(cfg.ams_groups, cfg.ams_per_group, seed ^ mask)
            })?;
            Ok(Self::Ams(inner))
        } else {
            let inner = AlphaNetFp::new_streaming_qary(net, mode, max_subsets, q, |mask| {
                StableFp::new(cfg.stable_t, p, seed ^ mask)
            })?;
            Ok(Self::Stable(inner))
        }
    }

    /// Binary (`q = 2`) variant of
    /// [`new_streaming_qary`](Self::new_streaming_qary).
    ///
    /// # Errors
    /// Same as [`new_streaming_qary`](Self::new_streaming_qary).
    pub fn new_streaming(
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        p: f64,
        cfg: &FpConfig,
        seed: u64,
    ) -> Result<Self, QueryError> {
        Self::new_streaming_qary(net, mode, max_subsets, 2, p, cfg, seed)
    }

    /// Batch build over a dataset (same sketches as streaming the rows).
    ///
    /// # Errors
    /// Same as [`new_streaming_qary`](Self::new_streaming_qary), plus
    /// dimension mismatch.
    pub fn build(
        data: &Dataset,
        net: AlphaNet,
        mode: NetMode,
        max_subsets: u128,
        p: f64,
        cfg: &FpConfig,
        seed: u64,
    ) -> Result<Self, QueryError> {
        if !(p.is_finite() && p > 0.0 && p <= 2.0) {
            return Err(QueryError::BadParameter(format!(
                "fp order p={p} outside (0, 2]"
            )));
        }
        if p == 2.0 {
            Ok(Self::Ams(AlphaNetFp::build(
                data,
                net,
                mode,
                max_subsets,
                |mask| AmsF2::new(cfg.ams_groups, cfg.ams_per_group, seed ^ mask),
            )?))
        } else {
            Ok(Self::Stable(AlphaNetFp::build(
                data,
                net,
                mode,
                max_subsets,
                |mask| StableFp::new(cfg.stable_t, p, seed ^ mask),
            )?))
        }
    }

    /// Observe one packed binary row.
    ///
    /// # Panics
    /// Panics if the row has bits at or above `d` or the net is not binary.
    pub fn push_packed(&mut self, row: u64) {
        match self {
            Self::Ams(n) => n.push_packed(row),
            Self::Stable(n) => n.push_packed(row),
        }
    }

    /// Observe one dense row over the net's alphabet.
    ///
    /// # Panics
    /// Panics on wrong row length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) {
        match self {
            Self::Ams(n) => n.push_dense(row),
            Self::Stable(n) => n.push_dense(row),
        }
    }

    /// Merge a net built over a disjoint segment of the same stream.
    ///
    /// # Panics
    /// Panics on sketch-family, net, mode, alphabet, or order mismatch.
    pub fn merge(&mut self, other: &Self) {
        match (self, other) {
            (Self::Ams(a), Self::Ams(b)) => a.merge(b),
            (Self::Stable(a), Self::Stable(b)) => a.merge(b),
            _ => panic!("fp-net merge: sketch family mismatch (AMS vs stable)"),
        }
    }

    /// The moment order this net answers.
    pub fn p(&self) -> f64 {
        match self {
            Self::Ams(n) => n.p(),
            Self::Stable(n) => n.p(),
        }
    }

    /// The net definition.
    pub fn net(&self) -> &AlphaNet {
        match self {
            Self::Ams(n) => n.net(),
            Self::Stable(n) => n.net(),
        }
    }

    /// The materialization mode.
    pub fn mode(&self) -> NetMode {
        match self {
            Self::Ams(n) => n.mode(),
            Self::Stable(n) => n.mode(),
        }
    }

    /// The alphabet size `Q`.
    pub fn alphabet(&self) -> u32 {
        match self {
            Self::Ams(n) => n.alphabet(),
            Self::Stable(n) => n.alphabet(),
        }
    }

    /// Number of sketches kept.
    pub fn num_sketches(&self) -> usize {
        match self {
            Self::Ams(n) => n.num_sketches(),
            Self::Stable(n) => n.num_sketches(),
        }
    }

    /// Whether this is the bit-exact AMS (`p = 2`) path.
    pub fn is_ams(&self) -> bool {
        matches!(self, Self::Ams(_))
    }

    /// The sketch β of this net's plug-in, read off the live sketch shape:
    /// [`ams_f2_beta`] for the AMS path, [`stable_fp_beta`] for the
    /// stable-projection path. Multiply by the per-query rounding
    /// distortion for the full Theorem 6.5 guarantee factor.
    pub fn beta(&self) -> f64 {
        match self {
            Self::Ams(n) => {
                let mask = n.net().members(n.mode()).next().expect("net has members");
                let s = n.sketch(mask).expect("member materialized");
                ams_f2_beta(s.per_group())
            }
            Self::Stable(n) => {
                let mask = n.net().members(n.mode()).next().expect("net has members");
                let s = n.sketch(mask).expect("member materialized");
                stable_fp_beta(s.estimators())
            }
        }
    }

    /// Sketch shape of the per-subset plug-in: `(groups, per_group)` for
    /// AMS, `(estimators, 0)` for stable projections. Two nets merge only
    /// if their shapes (and families) are identical.
    pub fn sketch_shape(&self) -> (usize, usize) {
        match self {
            Self::Ams(n) => {
                let mask = n.net().members(n.mode()).next().expect("net has members");
                let s = n.sketch(mask).expect("member materialized");
                (s.groups(), s.per_group())
            }
            Self::Stable(n) => {
                let mask = n.net().members(n.mode()).next().expect("net has members");
                let s = n.sketch(mask).expect("member materialized");
                (s.estimators(), 0)
            }
        }
    }

    /// Round a query exactly as [`fp`](Self::fp) will.
    ///
    /// # Errors
    /// Dimension errors.
    pub fn effective_rounding(&self, cols: &ColumnSet) -> Result<RoundedQuery, QueryError> {
        match self {
            Self::Ams(n) => n.effective_rounding(cols),
            Self::Stable(n) => n.effective_rounding(cols),
        }
    }

    /// Answer a projected `F_p` query at this net's own order.
    ///
    /// # Errors
    /// Dimension errors.
    pub fn fp(&self, cols: &ColumnSet) -> Result<NetAnswer, QueryError> {
        match self {
            Self::Ams(n) => n.fp(cols, n.p()),
            Self::Stable(n) => n.fp(cols, n.p()),
        }
    }
}

impl SpaceUsage for FpNet {
    fn space_bytes(&self) -> usize {
        match self {
            Self::Ams(n) => n.space_bytes(),
            Self::Stable(n) => n.space_bytes(),
        }
    }
}

impl Persist for FpNet {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Self::Ams(n) => {
                enc.put_u8(0);
                n.encode(enc);
            }
            Self::Stable(n) => {
                enc.put_u8(1);
                n.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        match dec.take_u8()? {
            0 => {
                let n: AlphaNetFp<AmsF2> = AlphaNetFp::decode(dec)?;
                if n.p() != 2.0 {
                    return Err(PersistError::Malformed(format!(
                        "AMS fp-net claims order p={}, must be 2",
                        n.p()
                    )));
                }
                Ok(Self::Ams(n))
            }
            1 => Ok(Self::Stable(AlphaNetFp::decode(dec)?)),
            other => Err(PersistError::Malformed(format!(
                "fp-net family tag must be 0 (AMS) or 1 (stable), got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_stream::gen::uniform_binary;

    fn binary_rows(data: &Dataset) -> &[u64] {
        match data {
            Dataset::Binary(m) => m.rows(),
            Dataset::Qary(_) => unreachable!("generator yields binary data"),
        }
    }

    #[test]
    fn config_validation() {
        assert!(FpConfig::default().validate().is_ok());
        assert!(FpConfig::with_orders([0.5, 1.0, 2.0]).validate().is_ok());
        for bad in [0.0, -1.0, 2.5, f64::NAN, f64::INFINITY] {
            assert!(
                FpConfig::with_orders([bad]).validate().is_err(),
                "order {bad} accepted"
            );
        }
        assert!(FpConfig::with_orders([1.0, 1.0]).validate().is_err());
        let mut zero_t = FpConfig::with_orders([1.0]);
        zero_t.stable_t = 0;
        assert!(zero_t.validate().is_err());
    }

    #[test]
    fn config_persist_round_trip_and_corruption() {
        let cfg = FpConfig::with_orders([0.5, 2.0]);
        let mut enc = Encoder::new();
        cfg.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = FpConfig::decode(&mut Decoder::new(&bytes)).expect("round trip");
        assert_eq!(back, cfg);
        // A decoded config re-validates: corrupt an order to NaN.
        let mut bad = bytes.clone();
        // First order starts after the length varint (1 byte here).
        for b in bad.iter_mut().skip(1).take(8) {
            *b = 0xff;
        }
        assert!(FpConfig::decode(&mut Decoder::new(&bad)).is_err());
    }

    #[test]
    fn dispatch_picks_family_by_order() {
        let net = AlphaNet::new(8, 0.25).expect("valid");
        let cfg = FpConfig::with_orders([1.0, 2.0]);
        let ams = FpNet::new_streaming(net, NetMode::Full, 1 << 16, 2.0, &cfg, 7).expect("new");
        assert!(ams.is_ams());
        assert_eq!(ams.p(), 2.0);
        let stable = FpNet::new_streaming(net, NetMode::Full, 1 << 16, 1.0, &cfg, 7).expect("new");
        assert!(!stable.is_ams());
        assert_eq!(stable.p(), 1.0);
        assert!(FpNet::new_streaming(net, NetMode::Full, 1 << 16, 2.5, &cfg, 7).is_err());
        // Betas come from the configured sketch shapes.
        assert_eq!(ams.beta(), ams_f2_beta(cfg.ams_per_group));
        assert_eq!(stable.beta(), stable_fp_beta(cfg.stable_t));
    }

    #[test]
    fn streaming_matches_build_and_persists() {
        let d = 8;
        let data = uniform_binary(d, 500, 11);
        let net = AlphaNet::new(d, 0.25).expect("valid");
        let cfg = FpConfig {
            orders: vec![1.5, 2.0],
            stable_t: 8,
            ..FpConfig::default()
        };
        for (idx, &p) in cfg.orders.iter().enumerate() {
            let seed = fp_seed(42, idx);
            let built =
                FpNet::build(&data, net, NetMode::Full, 1 << 16, p, &cfg, seed).expect("build");
            let mut streamed =
                FpNet::new_streaming(net, NetMode::Full, 1 << 16, p, &cfg, seed).expect("new");
            for &row in binary_rows(&data) {
                streamed.push_packed(row);
            }
            let cols = ColumnSet::from_indices(d, &[0, 1]).expect("v");
            assert_eq!(
                built.fp(&cols).expect("ok").estimate.to_bits(),
                streamed.fp(&cols).expect("ok").estimate.to_bits(),
                "p={p}: streaming diverged from build"
            );
            // Persist round-trips to bit-identical answers.
            let mut enc = Encoder::new();
            streamed.encode(&mut enc);
            let bytes = enc.into_bytes();
            let back = FpNet::decode(&mut Decoder::new(&bytes)).expect("decode");
            assert_eq!(back.is_ams(), streamed.is_ams());
            assert_eq!(
                back.fp(&cols).expect("ok").estimate.to_bits(),
                streamed.fp(&cols).expect("ok").estimate.to_bits(),
                "p={p}: persisted net diverged"
            );
            // A flipped family tag is a typed error, not a panic.
            let mut bad = bytes.clone();
            bad[0] = 2;
            assert!(matches!(
                FpNet::decode(&mut Decoder::new(&bad)),
                Err(PersistError::Malformed(_))
            ));
        }
    }

    #[test]
    fn family_mismatch_merge_panics_with_message() {
        let net = AlphaNet::new(6, 0.25).expect("valid");
        let cfg = FpConfig::with_orders([1.0, 2.0]);
        let mut a = FpNet::new_streaming(net, NetMode::Full, 1 << 16, 2.0, &cfg, 1).expect("new");
        let b = FpNet::new_streaming(net, NetMode::Full, 1 << 16, 1.0, &cfg, 1).expect("new");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.merge(&b)))
            .expect_err("must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("family mismatch"), "unexpected panic: {msg}");
    }

    #[test]
    fn fp_seed_decorrelates_orders_and_shards() {
        // Distinct per-order seeds from one base; identical across calls
        // (shard-independence is what makes merges well-defined).
        assert_ne!(fp_seed(42, 0), fp_seed(42, 1));
        assert_ne!(fp_seed(42, 0), fp_seed(43, 0));
        assert_eq!(fp_seed(42, 3), fp_seed(42, 3));
    }
}
