//! The `F_1` summary — one word of space.
//!
//! Section 5.3: "For `p = 1`, the frequency is always the number `n` of
//! rows in the original instance irrespective of the column set `C`, so
//! only one word of space is required." This type is that word. It exists
//! so the problem family's space-complexity picture is complete in code:
//! `F_1` is the unique point where the projected problem is trivial, and
//! the rounding distortion of Lemma 6.4 correspondingly degenerates to 1
//! as `p → 1` from either side.

use pfe_row::{ColumnSet, Dataset};
use pfe_sketch::traits::SpaceUsage;

use crate::problem::{check_dims, QueryError, ScalarEstimate};

/// One-word projected-`F_1` summary: a row counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F1Counter {
    n: u64,
    d: u32,
}

impl F1Counter {
    /// Create an empty counter for `d`-column streams.
    pub fn new(d: u32) -> Self {
        Self { n: 0, d }
    }

    /// Build from a dataset (counts rows; looks at nothing else).
    pub fn build(data: &Dataset) -> Self {
        Self {
            n: data.num_rows() as u64,
            d: data.dimension(),
        }
    }

    /// Observe one row (streaming ingestion; the row content is irrelevant).
    pub fn push(&mut self) {
        self.n += 1;
    }

    /// Answer `F_1(A, C) = n` for **any** projection, exactly.
    ///
    /// # Errors
    /// Dimension mismatch (the only thing that can go wrong).
    pub fn f1(&self, cols: &ColumnSet) -> Result<ScalarEstimate, QueryError> {
        check_dims(self.d, cols)?;
        Ok(ScalarEstimate {
            value: self.n as f64,
            answered_on: *cols,
            factor_bound: 1.0,
        })
    }

    /// The count itself.
    pub fn n(&self) -> u64 {
        self.n
    }
}

impl SpaceUsage for F1Counter {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() // the paper's "one word" (plus d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::FrequencyVector;
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn exact_for_every_projection() {
        let data = uniform_binary(12, 777, 1);
        let c = F1Counter::build(&data);
        for mask in [0u64, 0b1, 0b101010101010, (1 << 12) - 1] {
            let cols = ColumnSet::from_mask(12, mask).expect("valid");
            let ans = c.f1(&cols).expect("ok");
            assert_eq!(ans.value, 777.0);
            assert_eq!(ans.factor_bound, 1.0);
            // Cross-check against the exact frequency vector.
            let f = FrequencyVector::compute(&data, &cols).expect("fits");
            assert_eq!(f.fp(1.0), ans.value);
        }
    }

    #[test]
    fn streaming_push() {
        let mut c = F1Counter::new(8);
        for _ in 0..100 {
            c.push();
        }
        assert_eq!(c.n(), 100);
        let cols = ColumnSet::full(8).expect("valid");
        assert_eq!(c.f1(&cols).expect("ok").value, 100.0);
    }

    #[test]
    fn one_word_of_space() {
        let c = F1Counter::new(20);
        assert!(c.space_bytes() <= 16, "space {} bytes", c.space_bytes());
    }

    #[test]
    fn dimension_checked() {
        let c = F1Counter::new(8);
        let wrong = ColumnSet::full(9).expect("valid");
        assert!(matches!(
            c.f1(&wrong),
            Err(QueryError::DimensionMismatch { .. })
        ));
    }
}
