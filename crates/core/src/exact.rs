//! The exact baseline: retain the entire input and answer every query
//! exactly — the paper's "trivial naïve solution" taking `Θ(nd)` space
//! (Section 3.1). Every approximate summary in this crate is measured
//! against it, both for accuracy and for space.

use pfe_row::{ColumnSet, Dataset, FrequencyVector, PatternKey};
use pfe_sketch::traits::SpaceUsage;

use crate::problem::{check_dims, HeavyHitter, QueryError, ScalarEstimate};
use crate::sampling::ExactLpSampler;

/// Exact summary: the full dataset.
#[derive(Debug, Clone)]
pub struct ExactSummary {
    data: Dataset,
}

impl pfe_persist::Persist for ExactSummary {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        pfe_persist::Persist::encode(&self.data, enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        Ok(Self {
            data: pfe_persist::Persist::decode(dec)?,
        })
    }
}

impl ExactSummary {
    /// Ingest the dataset (stores a copy — `Θ(nd)` space by design).
    pub fn build(data: &Dataset) -> Self {
        Self { data: data.clone() }
    }

    /// The underlying data.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Materialize the exact frequency vector `f(A, C)`.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn freq_vector(&self, cols: &ColumnSet) -> Result<FrequencyVector, QueryError> {
        check_dims(self.data.dimension(), cols)?;
        Ok(FrequencyVector::compute(&self.data, cols)?)
    }

    /// Exact projected `F_0`.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn f0(&self, cols: &ColumnSet) -> Result<ScalarEstimate, QueryError> {
        let f = self.freq_vector(cols)?;
        Ok(ScalarEstimate {
            value: f.f0() as f64,
            answered_on: *cols,
            factor_bound: 1.0,
        })
    }

    /// Exact projected `F_p` for `p ≥ 0`.
    ///
    /// # Errors
    /// Dimension, codec, or parameter errors.
    pub fn fp(&self, cols: &ColumnSet, p: f64) -> Result<ScalarEstimate, QueryError> {
        if !p.is_finite() || p < 0.0 {
            return Err(QueryError::BadParameter(format!(
                "p={p} must be finite and >= 0"
            )));
        }
        let f = self.freq_vector(cols)?;
        Ok(ScalarEstimate {
            value: f.fp(p),
            answered_on: *cols,
            factor_bound: 1.0,
        })
    }

    /// Exact point frequency of a pattern.
    ///
    /// # Errors
    /// Dimension or codec errors.
    pub fn frequency(&self, cols: &ColumnSet, key: PatternKey) -> Result<f64, QueryError> {
        Ok(self.freq_vector(cols)?.frequency(key) as f64)
    }

    /// Exact `φ`-`ℓ_p` heavy hitters.
    ///
    /// # Errors
    /// Dimension, codec, or parameter errors.
    pub fn heavy_hitters(
        &self,
        cols: &ColumnSet,
        phi: f64,
        p: f64,
    ) -> Result<Vec<HeavyHitter>, QueryError> {
        if !(phi > 0.0 && phi <= 1.0) {
            return Err(QueryError::BadParameter(format!("phi={phi} outside (0,1]")));
        }
        if !p.is_finite() || p <= 0.0 {
            return Err(QueryError::BadParameter(format!(
                "p={p} must be finite and > 0"
            )));
        }
        let f = self.freq_vector(cols)?;
        Ok(f.heavy_hitters(phi, p)
            .into_iter()
            .map(|(key, c)| HeavyHitter {
                key,
                estimate: c as f64,
            })
            .collect())
    }

    /// An exact `ℓ_p` sampler over the projected patterns (the offline
    /// sampler Theorem 5.5 proves cannot be compressed for `p ≠ 1`).
    ///
    /// # Errors
    /// Dimension, codec, parameter, or empty-data errors.
    pub fn lp_sampler(
        &self,
        cols: &ColumnSet,
        p: f64,
        seed: u64,
    ) -> Result<ExactLpSampler, QueryError> {
        let f = self.freq_vector(cols)?;
        ExactLpSampler::from_freq_vector(&f, p, seed)
    }
}

impl SpaceUsage for ExactSummary {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.space_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::BinaryMatrix;

    fn paper_example() -> (ExactSummary, ColumnSet) {
        let rows = vec![0b011u64, 0b010, 0b100, 0b111, 0b011];
        let data = Dataset::Binary(BinaryMatrix::from_rows(3, rows));
        (
            ExactSummary::build(&data),
            ColumnSet::from_indices(3, &[0, 1]).expect("valid"),
        )
    }

    #[test]
    fn exact_f0_matches_paper_example() {
        let (s, cols) = paper_example();
        let ans = s.f0(&cols).expect("ok");
        assert_eq!(ans.value, 3.0);
        assert_eq!(ans.factor_bound, 1.0);
        assert_eq!(ans.answered_on, cols);
    }

    #[test]
    fn exact_fp_and_frequency() {
        let (s, cols) = paper_example();
        assert_eq!(s.fp(&cols, 2.0).expect("ok").value, 11.0);
        assert_eq!(s.fp(&cols, 1.0).expect("ok").value, 5.0);
        assert_eq!(s.frequency(&cols, PatternKey::new(3)).expect("ok"), 3.0);
    }

    #[test]
    fn heavy_hitters_exact() {
        let (s, cols) = paper_example();
        let hh = s.heavy_hitters(&cols, 0.5, 1.0).expect("ok");
        assert_eq!(hh.len(), 1);
        assert_eq!(hh[0].estimate, 3.0);
    }

    #[test]
    fn parameter_validation() {
        let (s, cols) = paper_example();
        assert!(matches!(
            s.fp(&cols, -1.0),
            Err(QueryError::BadParameter(_))
        ));
        assert!(matches!(
            s.heavy_hitters(&cols, 0.0, 1.0),
            Err(QueryError::BadParameter(_))
        ));
        assert!(matches!(
            s.heavy_hitters(&cols, 0.5, 0.0),
            Err(QueryError::BadParameter(_))
        ));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (s, _) = paper_example();
        let wrong = ColumnSet::full(5).expect("valid");
        assert!(matches!(
            s.f0(&wrong),
            Err(QueryError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn space_is_theta_nd() {
        let big = Dataset::Binary(BinaryMatrix::from_rows(20, vec![0u64; 10_000]));
        let small = Dataset::Binary(BinaryMatrix::from_rows(20, vec![0u64; 10]));
        let sb = ExactSummary::build(&big).space_bytes();
        let ss = ExactSummary::build(&small).space_bytes();
        assert!(
            sb > 100 * ss / 2,
            "space not proportional to n: {sb} vs {ss}"
        );
    }
}
