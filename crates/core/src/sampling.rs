//! `ℓ_p` sampling over projected patterns (Section 2.1, fourth problem).
//!
//! Two samplers:
//!
//! - [`ExactLpSampler`] — draws i.i.d. patterns from the exact distribution
//!   `p_i = f_i^p / F_p` given a materialized frequency vector. This is the
//!   "naïve" sampler available when the whole input is retained; Theorem
//!   5.5 shows that for `p ≠ 1` no small-space summary can replace it.
//! - ℓ_1 sampling comes for free from a uniform row sample (a uniform row,
//!   projected, is a pattern drawn with probability `f_i/n`); see
//!   [`UniformSampleSummary::l1_sample`](crate::uniform_sample::UniformSampleSummary::l1_sample)
//!   — the `p = 1` side of the paper's dichotomy.

use pfe_hash::rng::Xoshiro256pp;
use pfe_row::{FrequencyVector, PatternKey};
use pfe_sketch::traits::SpaceUsage;

use crate::problem::{QueryError, SampledPattern};

/// Exact `ℓ_p` sampler: inverse-CDF over the materialized distribution.
#[derive(Debug, Clone)]
pub struct ExactLpSampler {
    keys: Vec<PatternKey>,
    cdf: Vec<f64>,
    probs: Vec<f64>,
    p: f64,
    rng: Xoshiro256pp,
}

impl ExactLpSampler {
    /// Build from an exact frequency vector.
    ///
    /// # Errors
    /// Fails on `p <= 0`, non-finite `p`, or an empty vector.
    pub fn from_freq_vector(f: &FrequencyVector, p: f64, seed: u64) -> Result<Self, QueryError> {
        if !p.is_finite() || p <= 0.0 {
            return Err(QueryError::BadParameter(format!(
                "p={p} must be finite and > 0"
            )));
        }
        if f.support_size() == 0 {
            return Err(QueryError::EmptyData);
        }
        let dist = f.lp_distribution(p);
        let mut keys = Vec::with_capacity(dist.len());
        let mut probs = Vec::with_capacity(dist.len());
        let mut cdf = Vec::with_capacity(dist.len());
        let mut acc = 0.0;
        for (k, pr) in dist {
            keys.push(k);
            probs.push(pr);
            acc += pr;
            cdf.push(acc);
        }
        // Guard the final entry against floating-point undershoot.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Self {
            keys,
            cdf,
            probs,
            p,
            rng: Xoshiro256pp::seed_from_u64(seed),
        })
    }

    /// The moment order `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of distinct patterns in the support.
    pub fn support_size(&self) -> usize {
        self.keys.len()
    }

    /// Draw one pattern with its exact probability (the paper's contract:
    /// the sampler returns the item *and* an approximation of `p_i`; here
    /// the probability is exact).
    pub fn sample(&mut self) -> SampledPattern {
        let u = self.rng.f64();
        let idx = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.keys.len() - 1);
        SampledPattern {
            key: self.keys[idx],
            probability: self.probs[idx],
        }
    }

    /// Draw `count` i.i.d. patterns.
    pub fn sample_many(&mut self, count: usize) -> Vec<SampledPattern> {
        (0..count).map(|_| self.sample()).collect()
    }

    /// The exact probability of a given pattern (0 if unsupported).
    pub fn probability(&self, key: PatternKey) -> f64 {
        match self.keys.binary_search(&key) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }
}

impl SpaceUsage for ExactLpSampler {
    fn space_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.keys.capacity() * std::mem::size_of::<PatternKey>()
            + self.cdf.capacity() * std::mem::size_of::<f64>()
            + self.probs.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::{BinaryMatrix, ColumnSet, Dataset};

    fn fixture() -> FrequencyVector {
        // Counts: pattern 0 -> 1, pattern 2 -> 1, pattern 3 -> 3.
        let rows = vec![0b011u64, 0b010, 0b100, 0b111, 0b011];
        let data = Dataset::Binary(BinaryMatrix::from_rows(3, rows));
        let cols = ColumnSet::from_indices(3, &[0, 1]).expect("valid");
        FrequencyVector::compute(&data, &cols).expect("fits")
    }

    #[test]
    fn l1_matches_relative_frequencies() {
        let f = fixture();
        let mut s = ExactLpSampler::from_freq_vector(&f, 1.0, 1).expect("ok");
        let n = 50_000;
        let mut count3 = 0;
        for _ in 0..n {
            if s.sample().key == PatternKey::new(3) {
                count3 += 1;
            }
        }
        let frac = count3 as f64 / n as f64;
        assert!((frac - 0.6).abs() < 0.01, "l1 sampling fraction {frac}");
    }

    #[test]
    fn l2_squares_the_bias() {
        let f = fixture();
        // f = (1,1,3): l2 weights (1,1,9)/11 -> pattern 3 has mass 9/11.
        let mut s = ExactLpSampler::from_freq_vector(&f, 2.0, 2).expect("ok");
        let n = 50_000;
        let mut count3 = 0;
        for _ in 0..n {
            if s.sample().key == PatternKey::new(3) {
                count3 += 1;
            }
        }
        let frac = count3 as f64 / n as f64;
        assert!(
            (frac - 9.0 / 11.0).abs() < 0.01,
            "l2 sampling fraction {frac}"
        );
    }

    #[test]
    fn reported_probability_is_exact() {
        let f = fixture();
        let mut s = ExactLpSampler::from_freq_vector(&f, 2.0, 3).expect("ok");
        let drawn = s.sample();
        assert!((s.probability(drawn.key) - drawn.probability).abs() < 1e-15);
        assert_eq!(s.probability(PatternKey::new(1)), 0.0);
    }

    #[test]
    fn p_half_flattens_the_distribution() {
        let f = fixture();
        // p=0.5: weights (1,1,sqrt 3); pattern 3 mass = sqrt3/(2+sqrt3) ~ 0.464,
        // less than its l1 share of 0.6 — small p flattens.
        let mut s = ExactLpSampler::from_freq_vector(&f, 0.5, 4).expect("ok");
        let n = 50_000;
        let mut count3 = 0;
        for _ in 0..n {
            if s.sample().key == PatternKey::new(3) {
                count3 += 1;
            }
        }
        let frac = count3 as f64 / n as f64;
        let expect = 3f64.sqrt() / (2.0 + 3f64.sqrt());
        assert!(
            (frac - expect).abs() < 0.01,
            "p=0.5 fraction {frac} vs {expect}"
        );
    }

    #[test]
    fn errors_on_bad_params() {
        let f = fixture();
        assert!(matches!(
            ExactLpSampler::from_freq_vector(&f, 0.0, 0),
            Err(QueryError::BadParameter(_))
        ));
        assert!(matches!(
            ExactLpSampler::from_freq_vector(&f, f64::NAN, 0),
            Err(QueryError::BadParameter(_))
        ));
    }

    #[test]
    fn sample_many_length() {
        let f = fixture();
        let mut s = ExactLpSampler::from_freq_vector(&f, 1.0, 5).expect("ok");
        assert_eq!(s.sample_many(17).len(), 17);
    }

    #[test]
    fn deterministic_per_seed() {
        let f = fixture();
        let draw = |seed| {
            let mut s = ExactLpSampler::from_freq_vector(&f, 1.5, seed).expect("ok");
            s.sample_many(20).iter().map(|x| x.key).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
    }
}
