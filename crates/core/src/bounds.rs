//! Theorem-derived accuracy constants, exposed so serving layers can
//! attach an `(α, ε)` guarantee to every answer.
//!
//! The numbers here are the paper's bounds specialized to the summaries
//! this repo ships: the Theorem 5.1 additive error of the uniform row
//! sample, the β of the KMV plug-in sketch, and the Lemma 6.4 rounding
//! distortion of the α-net. They are *reporting* constants — the
//! summaries themselves never read them.

/// Default failure probability `δ` used when a guarantee is reported
/// without a caller-chosen confidence.
pub const DEFAULT_DELTA: f64 = 0.05;

/// Theorem 5.1: the additive-error coefficient `ε = √(ln(2/δ)/t)` of a
/// `t`-row uniform sample at confidence `1 − δ`. Multiply by `‖f‖₁ = n`
/// for the error in absolute counts; it bounds probability-mass error
/// directly.
///
/// ```
/// use pfe_core::bounds::sample_epsilon;
///
/// // More rows => tighter epsilon.
/// assert!(sample_epsilon(4096, 0.05) < sample_epsilon(256, 0.05));
/// ```
///
/// # Panics
/// Panics if `t == 0` or `delta` is outside `(0, 1)`.
pub fn sample_epsilon(t: usize, delta: f64) -> f64 {
    assert!(t > 0, "sample size t must be >= 1");
    assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
    ((2.0 / delta).ln() / t as f64).sqrt()
}

/// The `β` of a `k`-minimum-values sketch at two standard errors: the
/// KMV estimate has relative standard error `1/√(k−2)`, so a
/// `β = 1 + 2/√(k−2)` multiplicative factor holds with ≈95% confidence —
/// the plug-in `β` of Theorem 6.5.
///
/// ```
/// use pfe_core::bounds::kmv_beta;
///
/// assert!(kmv_beta(1024) < kmv_beta(64));
/// assert!(kmv_beta(64) > 1.0);
/// ```
pub fn kmv_beta(k: usize) -> f64 {
    1.0 + 2.0 / ((k.max(3) - 2) as f64).sqrt()
}

/// Lemma 6.4(1): the `F_0` rounding distortion `Q^{|CΔC′|}` for a query
/// rounded by `sym_diff` columns over alphabet `q`.
pub fn f0_rounding_distortion(q: u32, sym_diff: u32) -> f64 {
    (q as f64).powi(sym_diff as i32)
}

/// Lemma 6.4(2)–(3): the `F_p` rounding distortion `Q^{|CΔC′|·|p−1|}`.
pub fn fp_rounding_distortion(q: u32, sym_diff: u32, p: f64) -> f64 {
    (q as f64).powf(sym_diff as f64 * (p - 1.0).abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_epsilon_matches_summary_formula() {
        // UniformSampleSummary::sample_size_for inverts this: t rows give
        // back (approximately) the eps the size was chosen for.
        let (eps, delta) = (0.05, 0.01);
        let t = crate::UniformSampleSummary::sample_size_for(eps, delta);
        let back = sample_epsilon(t, delta);
        assert!((back - eps).abs() < 1e-3, "eps {eps} round-trips to {back}");
    }

    #[test]
    fn kmv_beta_decreasing_and_above_one() {
        let mut prev = f64::INFINITY;
        for k in [8usize, 64, 256, 4096] {
            let b = kmv_beta(k);
            assert!(b > 1.0 && b < prev);
            prev = b;
        }
        // Degenerate capacities do not divide by zero.
        assert!(kmv_beta(2).is_finite());
    }

    #[test]
    fn distortions_match_lemma_6_4() {
        assert_eq!(f0_rounding_distortion(2, 3), 8.0);
        assert_eq!(f0_rounding_distortion(4, 0), 1.0);
        // p = 1 is free; p = 0 and p = 2 pay the same factor.
        assert_eq!(fp_rounding_distortion(2, 3, 1.0), 1.0);
        assert_eq!(
            fp_rounding_distortion(2, 3, 0.0),
            fp_rounding_distortion(2, 3, 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn sample_epsilon_rejects_bad_delta() {
        sample_epsilon(16, 1.5);
    }
}
