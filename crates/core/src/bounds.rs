//! Theorem-derived accuracy constants, exposed so serving layers can
//! attach an `(α, ε)` guarantee to every answer.
//!
//! The numbers here are the paper's bounds specialized to the summaries
//! this repo ships: the Theorem 5.1 additive error of the uniform row
//! sample, the β of the KMV plug-in sketch, and the Lemma 6.4 rounding
//! distortion of the α-net. They are *reporting* constants — the
//! summaries themselves never read them.

/// Default failure probability `δ` used when a guarantee is reported
/// without a caller-chosen confidence.
pub const DEFAULT_DELTA: f64 = 0.05;

/// Theorem 5.1: the additive-error coefficient `ε = √(ln(2/δ)/t)` of a
/// `t`-row uniform sample at confidence `1 − δ`. Multiply by `‖f‖₁ = n`
/// for the error in absolute counts; it bounds probability-mass error
/// directly.
///
/// ```
/// use pfe_core::bounds::sample_epsilon;
///
/// // More rows => tighter epsilon.
/// assert!(sample_epsilon(4096, 0.05) < sample_epsilon(256, 0.05));
/// ```
///
/// # Panics
/// Panics if `t == 0` or `delta` is outside `(0, 1)`.
pub fn sample_epsilon(t: usize, delta: f64) -> f64 {
    assert!(t > 0, "sample size t must be >= 1");
    assert!(delta > 0.0 && delta < 1.0, "delta {delta} outside (0,1)");
    ((2.0 / delta).ln() / t as f64).sqrt()
}

/// The `β` of a `k`-minimum-values sketch at two standard errors: the
/// KMV estimate has relative standard error `1/√(k−2)`, so a
/// `β = 1 + 2/√(k−2)` multiplicative factor holds with ≈95% confidence —
/// the plug-in `β` of Theorem 6.5.
///
/// ```
/// use pfe_core::bounds::kmv_beta;
///
/// assert!(kmv_beta(1024) < kmv_beta(64));
/// assert!(kmv_beta(64) > 1.0);
/// ```
pub fn kmv_beta(k: usize) -> f64 {
    1.0 + 2.0 / ((k.max(3) - 2) as f64).sqrt()
}

/// Lemma 6.4(1): the `F_0` rounding distortion `Q^{|CΔC′|}` for a query
/// rounded by `sym_diff` columns over alphabet `q`.
pub fn f0_rounding_distortion(q: u32, sym_diff: u32) -> f64 {
    (q as f64).powi(sym_diff as i32)
}

/// Lemma 6.4(2)–(3): the `F_p` rounding distortion `Q^{|CΔC′|·|p−1|}`.
pub fn fp_rounding_distortion(q: u32, sym_diff: u32, p: f64) -> f64 {
    (q as f64).powf(sym_diff as f64 * (p - 1.0).abs())
}

/// The `β` of a `t`-estimator Indyk stable-projection `ℓ_p` sketch
/// (Ping Li, "On Approximating Frequency Moments of Data Streams with
/// Skewed Projections"): the median-of-`t` estimator has relative
/// standard error `O(1/√t)`, so `β = 1 + 3/√t` holds the constant-factor
/// guarantee at ≈95% confidence — the plug-in `β` of Theorem 6.5 for the
/// fractional-`p` path.
///
/// ```
/// use pfe_core::bounds::stable_fp_beta;
///
/// assert!(stable_fp_beta(256) < stable_fp_beta(16));
/// assert!(stable_fp_beta(16) > 1.0);
/// ```
///
/// # Panics
/// Panics if `t == 0`.
pub fn stable_fp_beta(t: usize) -> f64 {
    assert!(t > 0, "estimator count t must be >= 1");
    1.0 + 3.0 / (t as f64).sqrt()
}

/// The `β` of a median-of-means AMS `F_2` sketch with `per_group`
/// estimators per group: `Var[mean of m] ≤ 2F_2²/m`, so two standard
/// errors give `β = 1 + √(8/per_group)` — bit-exact mergeable, used on
/// the `p = 2` dispatch path. Inverts `AmsF2::with_error`
/// (`per_group = ⌈8/ε²⌉`).
///
/// ```
/// use pfe_core::bounds::ams_f2_beta;
///
/// assert!(ams_f2_beta(128) < ams_f2_beta(16));
/// assert!(ams_f2_beta(16) > 1.0);
/// ```
///
/// # Panics
/// Panics if `per_group == 0`.
pub fn ams_f2_beta(per_group: usize) -> f64 {
    assert!(per_group > 0, "per_group must be >= 1");
    1.0 + (8.0 / per_group as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_epsilon_matches_summary_formula() {
        // UniformSampleSummary::sample_size_for inverts this: t rows give
        // back (approximately) the eps the size was chosen for.
        let (eps, delta) = (0.05, 0.01);
        let t = crate::UniformSampleSummary::sample_size_for(eps, delta);
        let back = sample_epsilon(t, delta);
        assert!((back - eps).abs() < 1e-3, "eps {eps} round-trips to {back}");
    }

    #[test]
    fn kmv_beta_decreasing_and_above_one() {
        let mut prev = f64::INFINITY;
        for k in [8usize, 64, 256, 4096] {
            let b = kmv_beta(k);
            assert!(b > 1.0 && b < prev);
            prev = b;
        }
        // Degenerate capacities do not divide by zero.
        assert!(kmv_beta(2).is_finite());
    }

    #[test]
    fn distortions_match_lemma_6_4() {
        assert_eq!(f0_rounding_distortion(2, 3), 8.0);
        assert_eq!(f0_rounding_distortion(4, 0), 1.0);
        // p = 1 is free; p = 0 and p = 2 pay the same factor.
        assert_eq!(fp_rounding_distortion(2, 3, 1.0), 1.0);
        assert_eq!(
            fp_rounding_distortion(2, 3, 0.0),
            fp_rounding_distortion(2, 3, 2.0)
        );
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn sample_epsilon_rejects_bad_delta() {
        sample_epsilon(16, 1.5);
    }

    #[test]
    fn moment_betas_decrease_and_invert_with_error() {
        let mut prev = f64::INFINITY;
        for t in [4usize, 16, 64, 1024] {
            let b = stable_fp_beta(t);
            assert!(b > 1.0 && b < prev);
            prev = b;
        }
        // ams_f2_beta inverts AmsF2::with_error's per_group = ceil(8/eps^2):
        // the sketch sized for eps reports beta <= 1 + eps (up to ceiling).
        for eps in [0.5f64, 0.25, 0.1] {
            let per_group = (8.0 / (eps * eps)).ceil() as usize;
            let b = ams_f2_beta(per_group);
            assert!(b <= 1.0 + eps + 1e-12, "beta {b} for eps {eps}");
            assert!(b > 1.0);
        }
    }
}
