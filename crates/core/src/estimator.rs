//! A convenience facade bundling the summaries for side-by-side use — the
//! configuration the examples and experiment binaries drive.

use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::{ColumnSet, Dataset};
use pfe_sketch::kmv::Kmv;
use pfe_sketch::traits::SpaceUsage;

use crate::alpha_net::{AlphaNet, AlphaNetF0, NetAnswer, NetMode};
use crate::exact::ExactSummary;
use crate::fp::{fp_seed, FpConfig, FpNet};
use crate::problem::QueryError;
use crate::uniform_sample::UniformSampleSummary;

/// Configuration for [`SummarySuite`].
#[derive(Debug, Clone, Copy)]
pub struct SuiteConfig {
    /// α-net parameter.
    pub alpha: f64,
    /// KMV capacity per net subset.
    pub kmv_k: usize,
    /// Uniform-sample reservoir size.
    pub sample_t: usize,
    /// Net materialization cap.
    pub max_subsets: u128,
    /// Base seed.
    pub seed: u64,
    /// Whether to retain the exact baseline (Θ(nd) space).
    pub keep_exact: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            alpha: 0.25,
            kmv_k: 256,
            sample_t: 4096,
            max_subsets: 1 << 22,
            seed: 0,
            keep_exact: true,
        }
    }
}

/// Exact + uniform-sample + α-net summaries over one dataset.
pub struct SummarySuite {
    exact: Option<ExactSummary>,
    sample: UniformSampleSummary,
    net_f0: AlphaNetF0<Kmv>,
    /// One moment net per configured `F_p` order (empty by default).
    fp_nets: Vec<FpNet>,
}

impl SummarySuite {
    /// Build all summaries over `data`.
    ///
    /// # Errors
    /// Propagates parameter/codec/cap errors from the component builders.
    pub fn build(data: &Dataset, cfg: &SuiteConfig) -> Result<Self, QueryError> {
        Self::build_with_fp(data, cfg, &FpConfig::default())
    }

    /// Build all summaries plus one `F_p` moment net per order in
    /// `fp_cfg.orders` (seeded from `cfg.seed` via [`fp_seed`], so two
    /// suites with equal configs answer bit-identically).
    ///
    /// # Errors
    /// Propagates parameter/codec/cap errors from the component builders.
    pub fn build_with_fp(
        data: &Dataset,
        cfg: &SuiteConfig,
        fp_cfg: &FpConfig,
    ) -> Result<Self, QueryError> {
        fp_cfg.validate()?;
        let net = AlphaNet::new(data.dimension(), cfg.alpha)?;
        let kmv_k = cfg.kmv_k;
        let seed = cfg.seed;
        let net_f0 = AlphaNetF0::build(data, net, NetMode::Full, cfg.max_subsets, |mask| {
            Kmv::new(kmv_k, mask ^ seed)
        })?;
        let mut fp_nets = Vec::with_capacity(fp_cfg.orders.len());
        for (idx, &p) in fp_cfg.orders.iter().enumerate() {
            fp_nets.push(FpNet::build(
                data,
                net,
                NetMode::Full,
                cfg.max_subsets,
                p,
                fp_cfg,
                fp_seed(cfg.seed, idx),
            )?);
        }
        Ok(Self {
            exact: cfg.keep_exact.then(|| ExactSummary::build(data)),
            sample: UniformSampleSummary::build(data, cfg.sample_t, cfg.seed ^ 0x5a5a),
            net_f0,
            fp_nets,
        })
    }

    /// The exact baseline, if retained.
    pub fn exact(&self) -> Option<&ExactSummary> {
        self.exact.as_ref()
    }

    /// The Theorem 5.1 uniform-sample summary.
    pub fn sample(&self) -> &UniformSampleSummary {
        &self.sample
    }

    /// The Section 6 α-net `F_0` summary.
    pub fn net_f0(&self) -> &AlphaNetF0<Kmv> {
        &self.net_f0
    }

    /// The materialized `F_p` moment nets, one per configured order.
    pub fn fp_nets(&self) -> &[FpNet] {
        &self.fp_nets
    }

    /// Answer `F_0` through the α-net.
    ///
    /// # Errors
    /// Dimension errors.
    pub fn f0(&self, cols: &ColumnSet) -> Result<NetAnswer, QueryError> {
        self.net_f0.f0(cols)
    }

    /// Answer `F_p` through the moment net materialized for order `p`.
    ///
    /// # Errors
    /// `UnsupportedMoment` if no net was built for `p` (matching up to
    /// `1e-12`); dimension errors.
    pub fn fp(&self, cols: &ColumnSet, p: f64) -> Result<NetAnswer, QueryError> {
        let net = self
            .fp_nets
            .iter()
            .find(|n| (n.p() - p).abs() <= 1e-12)
            .ok_or(QueryError::UnsupportedMoment {
                requested: p,
                supported: f64::NAN,
            })?;
        net.fp(cols)
    }

    /// Space of each component in bytes: `(exact, sample, net)`.
    pub fn space_breakdown(&self) -> (usize, usize, usize) {
        (
            self.exact.as_ref().map(|e| e.space_bytes()).unwrap_or(0),
            self.sample.space_bytes(),
            self.net_f0.space_bytes(),
        )
    }
}

impl Persist for SummarySuite {
    fn encode(&self, enc: &mut Encoder) {
        self.exact.encode(enc);
        self.sample.encode(enc);
        self.net_f0.encode(enc);
        enc.put_len(self.fp_nets.len());
        for net in &self.fp_nets {
            net.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let exact = Option::<ExactSummary>::decode(dec)?;
        let sample = UniformSampleSummary::decode(dec)?;
        let net_f0 = AlphaNetF0::<Kmv>::decode(dec)?;
        // Each fp net is at least a family tag plus net parameters.
        let n_fp = dec.take_len(13)?;
        let mut fp_nets = Vec::with_capacity(n_fp);
        for _ in 0..n_fp {
            fp_nets.push(FpNet::decode(dec)?);
        }
        // Cross-component consistency: all parts summarize one (d, Q).
        let (d, q) = (sample.dimension(), sample.alphabet());
        if net_f0.net().dimension() != d || net_f0.alphabet() != q {
            return Err(PersistError::Malformed(format!(
                "net summarizes ({}, Q={}) but the sample holds ({d}, Q={q})",
                net_f0.net().dimension(),
                net_f0.alphabet()
            )));
        }
        if let Some(e) = &exact {
            if e.data().dimension() != d || e.data().alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "exact baseline holds ({}, Q={}) but the sample holds ({d}, Q={q})",
                    e.data().dimension(),
                    e.data().alphabet()
                )));
            }
        }
        for net in &fp_nets {
            if net.net().dimension() != d || net.alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "fp net (p={}) summarizes ({}, Q={}) but the sample holds ({d}, Q={q})",
                    net.p(),
                    net.net().dimension(),
                    net.alphabet()
                )));
            }
        }
        Ok(Self {
            exact,
            sample,
            net_f0,
            fp_nets,
        })
    }
}

impl SpaceUsage for SummarySuite {
    fn space_bytes(&self) -> usize {
        let (exact, sample, net) = self.space_breakdown();
        exact + sample + net + self.fp_nets.iter().map(|n| n.space_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn suite_builds_and_answers() {
        let data = uniform_binary(12, 1000, 1);
        let suite = SummarySuite::build(&data, &SuiteConfig::default()).expect("build");
        let cols = ColumnSet::from_indices(12, &[0, 1, 2, 3, 4, 5]).expect("v");
        let net_ans = suite.f0(&cols).expect("ok");
        let exact = suite.exact().expect("kept").f0(&cols).expect("ok").value;
        let ratio = net_ans.estimate / exact;
        assert!(
            ratio <= net_ans.distortion_bound * 1.5
                && ratio >= 1.0 / (net_ans.distortion_bound * 1.5),
            "suite answer ratio {ratio} outside bound {}",
            net_ans.distortion_bound
        );
    }

    #[test]
    fn space_breakdown_ordering() {
        // With a large-enough dataset the exact baseline dominates the
        // sample, while the net dominates everything at small alpha.
        let data = uniform_binary(14, 50_000, 2);
        let suite = SummarySuite::build(
            &data,
            &SuiteConfig {
                alpha: 0.35,
                sample_t: 512,
                kmv_k: 64,
                ..Default::default()
            },
        )
        .expect("build");
        let (exact, sample, _net) = suite.space_breakdown();
        assert!(exact > sample, "exact {exact} not above sample {sample}");
    }

    #[test]
    fn suite_fp_orders_answer_and_round_trip() {
        let data = uniform_binary(10, 800, 9);
        let cfg = SuiteConfig {
            kmv_k: 64,
            sample_t: 256,
            seed: 42,
            keep_exact: true,
            ..Default::default()
        };
        let fp_cfg = FpConfig {
            orders: vec![0.5, 1.0, 2.0],
            stable_t: 8,
            ..FpConfig::default()
        };
        let suite = SummarySuite::build_with_fp(&data, &cfg, &fp_cfg).expect("build");
        assert_eq!(suite.fp_nets().len(), 3);
        let cols = ColumnSet::from_indices(10, &[0, 1]).expect("v");
        for &p in &fp_cfg.orders {
            let ans = suite.fp(&cols, p).expect("ok");
            assert!(ans.estimate.is_finite(), "p={p} estimate not finite");
        }
        // Unconfigured order is a typed error.
        assert!(matches!(
            suite.fp(&cols, 1.7),
            Err(QueryError::UnsupportedMoment { .. })
        ));
        // Persist round-trips to bit-identical fp answers.
        let mut enc = Encoder::new();
        suite.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = SummarySuite::decode(&mut Decoder::new(&bytes)).expect("decode");
        for &p in &fp_cfg.orders {
            assert_eq!(
                back.fp(&cols, p).expect("ok").estimate.to_bits(),
                suite.fp(&cols, p).expect("ok").estimate.to_bits(),
                "p={p}: persisted suite diverged"
            );
        }
        // Two independent builds with equal configs agree bit-for-bit.
        let twin = SummarySuite::build_with_fp(&data, &cfg, &fp_cfg).expect("build");
        for &p in &fp_cfg.orders {
            assert_eq!(
                twin.fp(&cols, p).expect("ok").estimate.to_bits(),
                suite.fp(&cols, p).expect("ok").estimate.to_bits(),
            );
        }
    }

    #[test]
    fn no_exact_mode() {
        let data = uniform_binary(10, 100, 3);
        let suite = SummarySuite::build(
            &data,
            &SuiteConfig {
                keep_exact: false,
                ..Default::default()
            },
        )
        .expect("build");
        assert!(suite.exact().is_none());
        assert_eq!(suite.space_breakdown().0, 0);
    }
}
