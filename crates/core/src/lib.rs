#![warn(missing_docs)]
//! Projected frequency estimation — the core library reproducing
//! Cormode, Dickens & Woodruff, "Subspace Exploration: Bounds on Projected
//! Frequency Estimation" (PODS 2021).
//!
//! The model (Section 2): data `A ∈ [Q]^{n×d}` arrives as a stream; a
//! column query `C ⊆ [d]` arrives only afterwards; statistics are functions
//! of the projected frequency vector `f(A, C)`. This crate implements every
//! summary the paper analyses:
//!
//! - [`exact::ExactSummary`] — the `Θ(nd)` retain-everything
//!   baseline (Section 3.1);
//! - [`uniform_sample::UniformSampleSummary`] — the
//!   Theorem 5.1 / Corollary 5.2 uniform row sample: `ε‖f‖_1` frequency
//!   estimates, `ℓ_p` heavy hitters for `p ≤ 1`, and `ℓ_1` sampling in
//!   `O(ε⁻² log 1/δ)` rows;
//! - [`alpha_net::AlphaNetF0`] /
//!   [`alpha_net::AlphaNetFp`] — Algorithm 1: β-approximate
//!   sketches over an α-net of subsets, answering any query after rounding
//!   with distortion `r(α, P)` (Lemma 6.4, Theorem 6.5);
//! - [`enumeration::SubsetEnumerationF0`] — the naïve
//!   known-`|C|` enumeration strawman (Section 3.1);
//! - [`sampling::ExactLpSampler`] — offline `ℓ_p` sampling
//!   from the materialized frequency vector (the object Theorem 5.5 proves
//!   incompressible for `p ≠ 1`);
//! - [`bounds`] — the theorem-derived accuracy constants (Theorem 5.1
//!   `ε`, KMV `β`, Lemma 6.4 distortion) serving layers attach to
//!   answers as `(α, ε)` guarantees.

pub mod alpha_net;
pub mod alpha_net_freq;
pub mod bounds;
pub mod enumeration;
pub mod estimator;
pub mod exact;
pub mod f1;
pub mod fp;
pub mod marginals;
pub mod problem;
pub mod sampling;
pub mod uniform_sample;

pub use alpha_net::{AlphaNet, AlphaNetF0, AlphaNetFp, NetAnswer, NetMode, RoundedQuery};
pub use alpha_net_freq::{AlphaNetFrequency, AlphaNetHeavyHitters, FreqNetAnswer};
pub use enumeration::{SubsetEnumerationF0, SubsetEnumerationFp};
pub use estimator::{SuiteConfig, SummarySuite};
pub use exact::ExactSummary;
pub use f1::F1Counter;
pub use fp::{fp_seed, FpConfig, FpNet};
pub use marginals::MarginalsSummary;
pub use problem::{HeavyHitter, QueryError, SampledPattern, ScalarEstimate};
pub use sampling::ExactLpSampler;
pub use uniform_sample::UniformSampleSummary;
