//! Round-trip property tests at the summary level: a decoded summary must
//! answer every query bit-identically to the one that was encoded — the
//! contract the engine's durable snapshots are built on.

use pfe_core::alpha_net::{AlphaNet, AlphaNetF0, AlphaNetFp, NetMode};
use pfe_core::{AlphaNetFrequency, SuiteConfig, SummarySuite, UniformSampleSummary};
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_row::ColumnSet;
use pfe_sketch::kmv::Kmv;
use pfe_sketch::stable_fp::StableFp;
use pfe_stream::gen::{uniform_binary, uniform_qary, zipf_patterns};
use proptest::prelude::*;

fn encode_to_vec<T: Persist>(value: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.into_bytes()
}

fn decode_all<T: Persist>(bytes: &[u8]) -> Result<T, PersistError> {
    let mut dec = Decoder::new(bytes);
    let v = T::decode(&mut dec)?;
    dec.expect_end()?;
    Ok(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn uniform_sample_roundtrip_identical_answers(
        seed in 0u64..500,
        n in 1usize..3_000,
        t in 1usize..512,
    ) {
        let d = 12;
        let data = zipf_patterns(d, n, 20, 1.2, seed);
        let original = UniformSampleSummary::build(&data, t, seed ^ 0xf00d);
        let bytes = encode_to_vec(&original);
        let restored: UniformSampleSummary = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        for mask in [0b1u64, 0b1010, 0b111111111111] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            prop_assert_eq!(
                original.projected_sample(&cols).expect("ok"),
                restored.projected_sample(&cols).expect("ok")
            );
            let hh_a = original.heavy_hitters(&cols, 0.1, 1.0, 2.0).expect("ok");
            let hh_b = restored.heavy_hitters(&cols, 0.1, 1.0, 2.0).expect("ok");
            prop_assert_eq!(hh_a, hh_b);
        }
    }

    #[test]
    fn alpha_net_f0_roundtrip_identical_answers(
        seed in 0u64..500,
        n in 1usize..2_000,
    ) {
        let d = 10;
        let data = uniform_binary(d, n, seed);
        let net = AlphaNet::new(d, 0.25).expect("valid");
        let original = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 20, |mask| {
            Kmv::new(32, mask ^ seed)
        })
        .expect("build");
        let bytes = encode_to_vec(&original);
        let restored: AlphaNetF0<Kmv> = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        for mask in [0b1u64, 0b11111, 0b1010101010, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            prop_assert_eq!(
                original.f0(&cols).expect("ok"),
                restored.f0(&cols).expect("ok")
            );
        }
    }

    #[test]
    fn alpha_net_fp_roundtrip_identical_answers(
        seed in 0u64..200,
        n in 1usize..500,
    ) {
        let d = 8;
        let data = uniform_binary(d, n, seed);
        let net = AlphaNet::new(d, 0.3).expect("valid");
        let original = AlphaNetFp::build(&data, net, NetMode::Full, 1 << 16, |mask| {
            StableFp::new(5, 0.5, mask ^ seed)
        })
        .expect("build");
        let bytes = encode_to_vec(&original);
        let restored: AlphaNetFp<StableFp> = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        for mask in [0b1u64, 0b1111, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            prop_assert_eq!(
                original.fp(&cols, 0.5).expect("ok"),
                restored.fp(&cols, 0.5).expect("ok")
            );
        }
    }

    #[test]
    fn frequency_net_roundtrip_identical_answers(
        seed in 0u64..200,
        n in 1usize..800,
    ) {
        let d = 8;
        let data = uniform_qary(3, d, n, seed);
        let net = AlphaNet::new(d, 0.3).expect("valid");
        let original =
            AlphaNetFrequency::build(&data, net, 3, 64, 1 << 16, seed).expect("build");
        let bytes = encode_to_vec(&original);
        let restored: AlphaNetFrequency = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        prop_assert_eq!(original.n(), restored.n());
        let cols = ColumnSet::from_indices(d, &[0, 3]).expect("valid");
        let codec = pfe_row::PatternCodec::new(3, 2).expect("fits");
        for raw in 0..9u128 {
            let key = codec.encode_pattern(&[(raw % 3) as u16, (raw / 3) as u16]);
            prop_assert_eq!(
                original.frequency(&cols, key).expect("ok"),
                restored.frequency(&cols, key).expect("ok")
            );
        }
    }

    #[test]
    fn summary_suite_roundtrip_identical_answers(
        seed in 0u64..200,
        n in 1usize..1_500,
        keep_exact in proptest::strategy::Just(true),
    ) {
        let d = 10;
        let data = uniform_binary(d, n, seed);
        let cfg = SuiteConfig {
            kmv_k: 32,
            sample_t: 256,
            keep_exact,
            seed,
            ..Default::default()
        };
        let original = SummarySuite::build(&data, &cfg).expect("build");
        let bytes = encode_to_vec(&original);
        let restored: SummarySuite = decode_all(&bytes).expect("roundtrip");
        prop_assert_eq!(encode_to_vec(&restored), bytes);
        for mask in [0b11u64, 0b1111100000, (1 << d) - 1] {
            let cols = ColumnSet::from_mask(d, mask).expect("valid");
            prop_assert_eq!(
                original.f0(&cols).expect("ok"),
                restored.f0(&cols).expect("ok")
            );
            // The exact baseline travelled too.
            prop_assert_eq!(
                original.exact().expect("kept").f0(&cols).expect("ok").value,
                restored.exact().expect("kept").f0(&cols).expect("ok").value
            );
        }
    }

    #[test]
    fn summaries_never_panic_on_random_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        let _ = decode_all::<UniformSampleSummary>(&bytes);
        let _ = decode_all::<AlphaNetF0<Kmv>>(&bytes);
        let _ = decode_all::<AlphaNetFrequency>(&bytes);
        let _ = decode_all::<SummarySuite>(&bytes);
    }
}

#[test]
fn cross_dimension_tampering_rejected() {
    // Encode a valid suite, then splice the sample's dimension field: the
    // cross-component consistency check must reject the hybrid.
    let data = uniform_binary(10, 200, 1);
    let suite = SummarySuite::build(
        &data,
        &SuiteConfig {
            keep_exact: false,
            kmv_k: 16,
            sample_t: 64,
            ..Default::default()
        },
    )
    .expect("build");
    let mut enc = Encoder::new();
    suite.encode(&mut enc);
    let mut bytes = enc.into_bytes();
    // Layout: option tag (1 byte), then the sample's d: u32.
    assert_eq!(bytes[0], 0, "exact baseline omitted");
    bytes[1] = 9; // d: 10 -> 9
    let mut dec = Decoder::new(&bytes);
    let r = SummarySuite::decode(&mut dec);
    assert!(
        matches!(r.as_ref().err(), Some(PersistError::Malformed(_))),
        "tampered dimension accepted: {:?}",
        r.is_ok()
    );
}
