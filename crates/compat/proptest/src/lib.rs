//! Offline, API-compatible stand-in for the `proptest` property-testing
//! framework.
//!
//! The build environment has no crate registry, so the workspace vendors
//! this minimal subset: the [`proptest!`] macro (with optional
//! `#![proptest_config(...)]`), integer-range / tuple / `any::<T>()`
//! strategies, `collection::{vec, btree_set}`, and the `prop_assert*`
//! macros. Values are generated from a deterministic per-test RNG; there is
//! no shrinking — a failing case panics with the ordinary assert message.

/// Strategy abstraction: anything that can produce values from an RNG.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. The stub has no shrinking, so a strategy is just
    /// a seeded sampler.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128) - (self.start as i128);
                    (self.start as i128 + (rng.below(span as u128) as i128)) as $t
                }
            }
            impl Strategy for ::core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128) - (lo as i128) + 1;
                    (lo as i128 + (rng.below(span as u128) as i128)) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy yielding a fixed value, mirroring `proptest::strategy::Just`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw a value from the type's full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        /// Construct the full-domain strategy for `T`.
        pub fn new() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Length specification accepted by collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u128) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (best effort when the element domain is too small).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.draw(rng);
            let mut out = BTreeSet::new();
            // Collisions are possible; bound the attempts so tiny element
            // domains cannot loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < 64 * (target + 1) {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Test-runner configuration and deterministic RNG.
pub mod test_runner {
    /// Subset of proptest's `Config` honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic per-test RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from a test identifier and case index, so every run of a
        /// property test sees the same value sequence.
        pub fn deterministic(test_hash: u64, case: u64) -> Self {
            Self {
                state: test_hash ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u128) -> u128 {
            assert!(n > 0, "below(0)");
            // 128-bit modulo is fine here: test-data generation does not
            // need the unbiased fast path.
            ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % n
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// FNV-1a over a test name — a stable per-test seed. Internal to the
/// [`proptest!`] expansion.
#[doc(hidden)]
pub fn __fnv(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Assert inside a property; the stub maps it to a plain `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip a case whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Define property tests: each `pat in strategy` argument is drawn fresh
/// for every case. Supports the leading `#![proptest_config(...)]` attribute.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    $crate::__fnv(concat!(module_path!(), "::", stringify!($name))),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The body runs inline once per case, so `prop_assume!`'s
                // `continue` skips to the next case; prop_assert* panic on
                // failure (no shrinking).
                $body
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}
