//! Offline, API-compatible stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crate registry, so the workspace vendors
//! this minimal subset of criterion's surface: `criterion_group!` /
//! `criterion_main!`, [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Throughput`], and a [`Bencher`] whose `iter` genuinely measures
//! wall-clock time (median over samples) and prints one line per benchmark.
//! It exists so `cargo bench` runs and reports real numbers, not so the
//! statistics match upstream criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API parity.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Override the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_bench(
            &id.label(),
            self.sample_size,
            self.measurement_time,
            None,
            f,
        );
        self
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{}/{}", self.function, p),
            (false, None) => self.function.clone(),
            (true, Some(p)) => p.clone(),
            (true, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: s,
            parameter: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(
            &label,
            samples,
            self.criterion.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (upstream criterion emits summary artifacts here).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Let `routine` time itself: it receives the iteration count and
    /// returns the measured wall-clock total, mirroring upstream
    /// criterion's escape hatch for workloads whose timing the harness
    /// cannot wrap (e.g. measurements captured out-of-band).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }
}

fn run_bench(
    label: &str,
    samples: usize,
    budget: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: find an iteration count taking roughly budget/samples.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * (samples as u32) >= budget || iters >= 1 << 24 {
            break;
        }
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let target = budget.as_secs_f64() / samples as f64;
        let next = if per_iter > 0.0 {
            (target / per_iter).ceil() as u64
        } else {
            iters * 2
        };
        iters = next.clamp(iters + 1, iters.saturating_mul(16));
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = per_iter[per_iter.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12}/s", human_rate(n as f64 / median)),
        Throughput::Bytes(n) => format!("  {:>12}B/s", human_rate(n as f64 / median)),
    });
    println!(
        "bench: {label:<56} {:>12}/iter{}",
        human_time(median),
        rate.unwrap_or_default()
    );
    let bytes_per_sec = match throughput {
        Some(Throughput::Bytes(n)) => Some(n as f64 / median),
        _ => None,
    };
    emit_json_line(label, median, bytes_per_sec);
}

/// When `BENCH_JSON_PATH` is set, append one JSON line per benchmark —
/// `{"id":"<label>","estimate_ns":<median>}`, plus `"bytes_per_sec"`
/// for byte-throughput benchmarks — to that file.
/// `scripts/bench_json.sh` assembles these into a `BENCH_<date>.json`
/// report; unset, benchmarks print to stdout only.
fn emit_json_line(label: &str, median_secs: f64, bytes_per_sec: Option<f64>) {
    let Ok(path) = std::env::var("BENCH_JSON_PATH") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            _ => vec![c],
        })
        .collect();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        use std::io::Write as _;
        let rate = bytes_per_sec
            .map(|r| format!(",\"bytes_per_sec\":{r:.1}"))
            .unwrap_or_default();
        let _ = writeln!(
            f,
            "{{\"id\":\"{escaped}\",\"estimate_ns\":{:.1}{rate}}}",
            median_secs * 1e9
        );
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Collect benchmark functions into a single runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
