//! Simple tabulation hashing (Zobrist / Pǎtraşcu–Thorup).
//!
//! The key is split into 8 bytes; each byte indexes its own table of 256
//! random 64-bit words, and the results are XORed. Simple tabulation is
//! only 3-wise independent, yet Pǎtraşcu–Thorup showed it delivers
//! Chernoff-style concentration for the hashing-based algorithms this
//! workspace uses (linear probing, CountMin-style bucketing, minwise
//! estimates) — making it the quality-critical alternative to the
//! polynomial family in [`crate::kwise`] at a fraction of the evaluation
//! cost (8 loads + 7 XORs, no multiplications).

use crate::rng::SplitMix64;

/// Simple tabulation hash for 64-bit keys: 8 tables × 256 entries.
#[derive(Clone)]
pub struct Tabulation {
    tables: Box<[[u64; 256]; 8]>,
}

impl std::fmt::Debug for Tabulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tabulation").finish_non_exhaustive()
    }
}

impl Tabulation {
    /// Fill the tables from a seed (2048 SplitMix64 draws).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed ^ 0x7ab7_ab7a_b7ab_7ab7);
        let mut tables = Box::new([[0u64; 256]; 8]);
        for table in tables.iter_mut() {
            for slot in table.iter_mut() {
                *slot = sm.next_u64();
            }
        }
        Self { tables }
    }

    /// Hash a 64-bit key.
    #[inline]
    pub fn hash(&self, key: u64) -> u64 {
        let b = key.to_le_bytes();
        self.tables[0][b[0] as usize]
            ^ self.tables[1][b[1] as usize]
            ^ self.tables[2][b[2] as usize]
            ^ self.tables[3][b[3] as usize]
            ^ self.tables[4][b[4] as usize]
            ^ self.tables[5][b[5] as usize]
            ^ self.tables[6][b[6] as usize]
            ^ self.tables[7][b[7] as usize]
    }

    /// Hash into a bucket `[0, m)` by multiply-shift.
    #[inline]
    pub fn bucket(&self, key: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        (((self.hash(key) >> 32) as u128 * m as u128) >> 32) as usize
    }

    /// Table memory in bytes (fixed: 16 KiB).
    pub fn space_bytes(&self) -> usize {
        8 * 256 * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = Tabulation::new(5);
        let b = Tabulation::new(5);
        let c = Tabulation::new(6);
        for k in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(a.hash(k), b.hash(k));
        }
        assert!((0..100u64).any(|k| a.hash(k) != c.hash(k)));
    }

    #[test]
    fn no_collisions_on_structured_keys() {
        let t = Tabulation::new(1);
        let mut seen = std::collections::HashSet::new();
        for k in 0..50_000u64 {
            seen.insert(t.hash(k));
        }
        assert_eq!(seen.len(), 50_000, "structured keys collided");
    }

    #[test]
    fn avalanche_on_single_byte_flips() {
        // Flipping one key byte XORs a random table delta into the output:
        // ~32 bits flip on average.
        let t = Tabulation::new(2);
        let mut total = 0u32;
        let trials = 8 * 200;
        for i in 0..200u64 {
            let k = i.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let h = t.hash(k);
            for byte in 0..8 {
                total += (h ^ t.hash(k ^ (0xffu64 << (8 * byte)))).count_ones();
            }
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 32.0).abs() < 2.0, "avalanche mean {mean}");
    }

    #[test]
    fn bucket_uniformity() {
        let t = Tabulation::new(3);
        let m = 32;
        let mut counts = vec![0u32; m];
        let n = 320_000u64;
        for k in 0..n {
            counts[t.bucket(k, m)] += 1;
        }
        let expect = n as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    fn xor_structure_is_exact() {
        // h(k) equals the XOR of the per-byte table entries by definition;
        // verify against a manual computation for a known key.
        let t = Tabulation::new(4);
        let key = 0x0102_0304_0506_0708u64;
        let b = key.to_le_bytes();
        let manual = (0..8).fold(0u64, |acc, i| acc ^ t.tables[i][b[i] as usize]);
        assert_eq!(t.hash(key), manual);
    }

    #[test]
    fn fixed_space() {
        assert_eq!(Tabulation::new(0).space_bytes(), 16 * 1024);
    }
}
