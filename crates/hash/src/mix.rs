//! Stateless 64-bit mixing primitives.
//!
//! These are the building blocks for seeded item hashing throughout the
//! sketch library: a sketch that needs `h(item)` computes
//! [`hash_u64`]`(item, seed)`, which behaves as a fixed random function for
//! each seed. The finalizer is the SplitMix64 / MurmurHash3 `fmix64`
//! construction, which passes SMHasher-style avalanche tests.

/// MurmurHash3 `fmix64` finalizer: a bijective avalanche mixer on `u64`.
///
/// Every output bit depends on every input bit with probability ~1/2. Because
/// it is a bijection, distinct inputs map to distinct outputs, which several
/// sketches rely on (e.g. KMV treats hashes as unique item fingerprints).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Golden-ratio increment used by SplitMix64 to decorrelate seed streams.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Hash a `u64` item under a `u64` seed.
///
/// For fixed `seed` this is a bijection on items, so it can be used both as a
/// pseudo-random function (across seeds) and as a collision-free fingerprint
/// (within a seed).
#[inline]
pub fn hash_u64(item: u64, seed: u64) -> u64 {
    // Two rounds with seed folding on both sides; a single xor-then-mix is
    // measurably weaker when seeds differ in few bits.
    mix64(item ^ mix64(seed ^ GOLDEN_GAMMA)).wrapping_add(seed.wrapping_mul(GOLDEN_GAMMA))
        ^ mix64(item.wrapping_add(seed))
}

/// Hash a `u128` item (e.g. a packed projected pattern) under a seed.
#[inline]
pub fn hash_u128(item: u128, seed: u64) -> u64 {
    let lo = item as u64;
    let hi = (item >> 64) as u64;
    // Feed the high word through as part of the seed stream so that patterns
    // differing only above bit 64 still avalanche.
    hash_u64(lo, seed ^ mix64(hi ^ GOLDEN_GAMMA))
}

/// Hash an arbitrary byte string under a seed (xxHash-flavoured word-at-a-time).
///
/// Used for hashing reconstructed pattern vectors and for the seeded
/// `BuildHasher`. Word-at-a-time with a distinct tail path; quality is
/// sufficient for hash tables and sketches (not cryptographic).
pub fn hash_bytes(bytes: &[u8], seed: u64) -> u64 {
    let mut acc = seed ^ (bytes.len() as u64).wrapping_mul(GOLDEN_GAMMA);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("chunks_exact(8) yields 8 bytes"));
        acc = mix64(acc ^ w).wrapping_mul(0x9ddf_ea08_eb38_2d69);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        acc = mix64(acc ^ u64::from_le_bytes(tail) ^ (rem.len() as u64));
    }
    mix64(acc)
}

/// Map a hash to the unit interval `[0, 1)` with 53 bits of precision.
#[inline]
pub fn to_unit_f64(h: u64) -> f64 {
    // Take the top 53 bits; 2^-53 scaling yields values in [0, 1).
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_samples() {
        // A bijection has no collisions; check a structured sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_fixed_vectors() {
        // Pin the function so seeds stay stable across refactors. fmix64 is a
        // published construction: 0 is its unique fixed point at 0.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
        assert_eq!(mix64(0xdead_beef), mix64(0xdead_beef));
        // Round-trip distinctness over a small structured set.
        let vals: Vec<u64> = (0..8).map(|i| mix64(1u64 << (i * 8))).collect();
        for (i, a) in vals.iter().enumerate() {
            for b in &vals[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn hash_u64_differs_across_seeds() {
        let a = hash_u64(42, 1);
        let b = hash_u64(42, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn hash_u64_injective_within_seed() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            assert!(seen.insert(hash_u64(i, 7)), "collision at {i}");
        }
    }

    #[test]
    fn hash_u64_avalanche() {
        // Flipping one input bit should flip ~32 output bits on average.
        let mut total = 0u32;
        let trials = 64 * 100;
        for t in 0..100u64 {
            let x = mix64(t.wrapping_mul(GOLDEN_GAMMA));
            let hx = hash_u64(x, 99);
            for bit in 0..64 {
                total += (hx ^ hash_u64(x ^ (1 << bit), 99)).count_ones();
            }
        }
        let mean = total as f64 / trials as f64;
        assert!(
            (mean - 32.0).abs() < 1.5,
            "poor avalanche: mean flipped bits {mean}"
        );
    }

    #[test]
    fn hash_u128_distinguishes_high_bits() {
        let lo_only = hash_u128(5u128, 3);
        let hi_only = hash_u128(5u128 << 64, 3);
        let both = hash_u128((5u128 << 64) | 5, 3);
        assert_ne!(lo_only, hi_only);
        assert_ne!(lo_only, both);
        assert_ne!(hi_only, both);
    }

    #[test]
    fn hash_bytes_tail_sensitivity() {
        // Same prefix, different tails of every length 1..8.
        let base: Vec<u8> = (0..23u8).collect();
        let h0 = hash_bytes(&base, 11);
        for i in 0..base.len() {
            let mut alt = base.clone();
            alt[i] ^= 0x80;
            assert_ne!(hash_bytes(&alt, 11), h0, "byte {i} did not affect hash");
        }
    }

    #[test]
    fn hash_bytes_length_sensitivity() {
        // A zero-extended string must not collide with its prefix.
        let a = [1u8, 2, 3];
        let b = [1u8, 2, 3, 0];
        assert_ne!(hash_bytes(&a, 0), hash_bytes(&b, 0));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for i in 0..10_000u64 {
            let u = to_unit_f64(hash_u64(i, 5));
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01, "min {lo} too high");
        assert!(hi > 0.99, "max {hi} too low");
    }
}
