#![warn(missing_docs)]
//! Deterministic hashing and pseudo-randomness substrate.
//!
//! Every randomized component in this workspace (sketches, random codes,
//! workload generators, samplers) draws its randomness from this crate so
//! that experiments are reproducible from a single `u64` seed. Nothing here
//! is cryptographic; the mixers are chosen for speed and good avalanche
//! behaviour, and the k-wise independent family provides the independence
//! guarantees that the sketch analyses (AMS, CountSketch, ...) require.
//!
//! Modules:
//!
//! - [`mix`] — stateless 64-bit finalizers/combiners (SplitMix64 finalizer,
//!   xxHash-style avalanche, byte-string hashing).
//! - [`rng`] — [`rng::SplitMix64`] and
//!   [`rng::Xoshiro256pp`] PRNGs with distribution helpers
//!   (uniform ranges, floats, Gaussian, exponential, Cauchy, p-stable).
//! - [`kwise`] — polynomial k-wise independent hash family over the Mersenne
//!   prime `2^61 - 1`, with pairwise/4-wise specializations and sign hashes.
//! - [`builder`] — a fast seeded [`std::hash::BuildHasher`] so `HashMap`s in
//!   hot paths avoid SipHash (per the Rust performance guide) while staying
//!   deterministic across runs.
//! - [`tabulation`] — simple tabulation hashing (Pǎtraşcu–Thorup), the
//!   multiplication-free high-quality family.

pub mod builder;
pub mod kwise;
pub mod mix;
pub mod rng;
pub mod tabulation;

pub use builder::{SeededHashMap, SeededHashSet, SeededState};
pub use kwise::{FourWise, PolyHash, SignHash, TwoWise};
pub use mix::{hash_bytes, hash_u128, hash_u64, mix64};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use tabulation::Tabulation;
