//! k-wise independent hash families over the Mersenne prime `p = 2^61 - 1`.
//!
//! A degree-`(k-1)` polynomial with independent uniform coefficients in
//! `F_p` evaluated at the item gives a k-wise independent family — the
//! standard construction behind the analyses of AMS, CountSketch and
//! CountMin. We use `p = 2^61 - 1` because reduction modulo a Mersenne prime
//! needs only shifts and adds.

use crate::rng::SplitMix64;

/// The Mersenne prime `2^61 - 1`.
pub const MERSENNE61: u64 = (1 << 61) - 1;

/// Reduce a 128-bit product modulo `2^61 - 1`.
#[inline]
fn mod_mersenne61(x: u128) -> u64 {
    // x = hi * 2^61 + lo  =>  x ≡ hi + lo (mod 2^61-1); two folds suffice
    // because after one fold the value is < 2^62.
    let lo = (x & MERSENNE61 as u128) as u64;
    let hi = (x >> 61) as u64;
    let mut s = lo.wrapping_add(mod_once(hi));
    if s >= MERSENNE61 {
        s -= MERSENNE61;
    }
    s
}

/// Reduce a u64 (< 2^64) modulo `2^61 - 1`.
#[inline]
fn mod_once(x: u64) -> u64 {
    let mut s = (x & MERSENNE61) + (x >> 61);
    if s >= MERSENNE61 {
        s -= MERSENNE61;
    }
    s
}

/// Multiply-add in `F_{2^61-1}`: `(a * b + c) mod p`.
#[inline]
fn mul_add_mod(a: u64, b: u64, c: u64) -> u64 {
    mod_mersenne61(a as u128 * b as u128 + c as u128)
}

/// A k-wise independent hash function `F_p -> F_p` given by a random
/// degree-`(k-1)` polynomial.
#[derive(Debug, Clone)]
pub struct PolyHash {
    /// Coefficients, constant term last (Horner order: highest degree first).
    coeffs: Vec<u64>,
}

impl PolyHash {
    /// Draw a fresh function with independence `k` from `seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, seed: u64) -> Self {
        assert!(k >= 1, "independence k must be >= 1");
        let mut sm = SplitMix64::new(seed);
        let coeffs = (0..k)
            .map(|_| {
                // Rejection-sample a uniform element of F_p.
                loop {
                    let v = sm.next_u64() & ((1 << 61) - 1);
                    if v < MERSENNE61 {
                        return v;
                    }
                }
            })
            .collect();
        Self { coeffs }
    }

    /// Independence level (number of coefficients).
    pub fn independence(&self) -> usize {
        self.coeffs.len()
    }

    /// The polynomial's coefficients (Horner order), exposed for
    /// serialization: storing them reproduces the exact same function.
    pub fn coefficients(&self) -> &[u64] {
        &self.coeffs
    }

    /// Rebuild a function from coefficients previously returned by
    /// [`coefficients`](Self::coefficients).
    ///
    /// Returns `None` if the list is empty or any coefficient lies outside
    /// `F_p` — the validation a deserializer needs to stay panic-free.
    pub fn from_coefficients(coeffs: Vec<u64>) -> Option<Self> {
        if coeffs.is_empty() || coeffs.iter().any(|&c| c >= MERSENNE61) {
            return None;
        }
        Some(Self { coeffs })
    }

    /// Evaluate at `x` (reduced into `F_p` first). Output is in `[0, p)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = mod_once(x);
        let mut acc = 0u64;
        for &c in &self.coeffs {
            acc = mul_add_mod(acc, x, c);
        }
        acc
    }

    /// Evaluate and map to a bucket in `[0, m)` by multiply-shift on the
    /// 61-bit output (low bias for `m << 2^61`).
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        debug_assert!(m > 0);
        ((self.eval(x) as u128 * m as u128) >> 61) as usize
    }

    /// Evaluate and map to the unit interval `[0, 1)`.
    #[inline]
    pub fn unit(&self, x: u64) -> f64 {
        self.eval(x) as f64 / MERSENNE61 as f64
    }
}

/// Pairwise (2-wise) independent hash — a thin wrapper fixing `k = 2`.
#[derive(Debug, Clone)]
pub struct TwoWise(PolyHash);

impl TwoWise {
    /// Draw a pairwise independent function from `seed`.
    pub fn new(seed: u64) -> Self {
        Self(PolyHash::new(2, seed))
    }

    /// Evaluate at `x`; output in `[0, 2^61-1)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        self.0.eval(x)
    }

    /// Bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        self.0.bucket(x, m)
    }
}

/// 4-wise independent hash — the independence level the AMS `F_2` analysis
/// requires for its variance bound.
#[derive(Debug, Clone)]
pub struct FourWise(PolyHash);

impl FourWise {
    /// Draw a 4-wise independent function from `seed`.
    pub fn new(seed: u64) -> Self {
        Self(PolyHash::new(4, seed))
    }

    /// Evaluate at `x`; output in `[0, 2^61-1)`.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        self.0.eval(x)
    }

    /// Bucket in `[0, m)`.
    #[inline]
    pub fn bucket(&self, x: u64, m: usize) -> usize {
        self.0.bucket(x, m)
    }
}

/// A ±1 sign hash built from a 4-wise independent polynomial (parity of the
/// low bit), as required by AMS / CountSketch.
#[derive(Debug, Clone)]
pub struct SignHash(PolyHash);

impl SignHash {
    /// Draw a 4-wise independent sign function from `seed`.
    pub fn new(seed: u64) -> Self {
        Self(PolyHash::new(4, seed))
    }

    /// Returns `+1` or `-1`.
    #[inline]
    pub fn sign(&self, x: u64) -> i64 {
        if self.0.eval(x) & 1 == 0 {
            1
        } else {
            -1
        }
    }
}

impl pfe_persist::Persist for PolyHash {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        self.coeffs.encode(enc);
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        let coeffs = Vec::<u64>::decode(dec)?;
        Self::from_coefficients(coeffs).ok_or_else(|| {
            pfe_persist::PersistError::Malformed(
                "polynomial hash needs >= 1 coefficient, all in F_{2^61-1}".into(),
            )
        })
    }
}

/// Serialize the fixed-independence wrappers by their polynomial,
/// re-checking the advertised independence on decode.
macro_rules! persist_fixed_kwise {
    ($($t:ident => $k:literal),+ $(,)?) => {$(
        impl pfe_persist::Persist for $t {
            fn encode(&self, enc: &mut pfe_persist::Encoder) {
                self.0.encode(enc);
            }

            fn decode(
                dec: &mut pfe_persist::Decoder<'_>,
            ) -> Result<Self, pfe_persist::PersistError> {
                let poly = PolyHash::decode(dec)?;
                if poly.independence() != $k {
                    return Err(pfe_persist::PersistError::Malformed(format!(
                        concat!(stringify!($t), " requires independence {}, got {}"),
                        $k,
                        poly.independence()
                    )));
                }
                Ok(Self(poly))
            }
        }
    )+};
}

persist_fixed_kwise!(TwoWise => 2, FourWise => 4, SignHash => 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mersenne_reduction_correct() {
        // Cross-check against naive u128 arithmetic.
        let cases: [(u64, u64, u64); 4] = [
            (MERSENNE61 - 1, MERSENNE61 - 1, MERSENNE61 - 2),
            (12345, 67890, 11),
            (0, 999, 999),
            (1 << 60, 1 << 60, (1 << 59) + 7),
        ];
        for (a, b, c) in cases {
            let expect = ((a as u128 * b as u128 + c as u128) % MERSENNE61 as u128) as u64;
            assert_eq!(mul_add_mod(a, b, c), expect, "a={a} b={b} c={c}");
        }
    }

    #[test]
    fn mod_once_idempotent_on_reduced() {
        for v in [0u64, 1, MERSENNE61 - 1] {
            assert_eq!(mod_once(v), v);
        }
        assert_eq!(mod_once(MERSENNE61), 0);
        assert_eq!(mod_once(u64::MAX), u64::MAX % MERSENNE61);
    }

    #[test]
    fn polyhash_deterministic_per_seed() {
        let h1 = PolyHash::new(3, 5);
        let h2 = PolyHash::new(3, 5);
        let h3 = PolyHash::new(3, 6);
        for x in 0..100u64 {
            assert_eq!(h1.eval(x), h2.eval(x));
        }
        assert!((0..100u64).any(|x| h1.eval(x) != h3.eval(x)));
    }

    #[test]
    fn polyhash_outputs_in_field() {
        let h = PolyHash::new(5, 99);
        for x in 0..1000u64 {
            assert!(h.eval(x) < MERSENNE61);
        }
    }

    #[test]
    fn bucket_uniformity() {
        let h = TwoWise::new(123);
        let m = 16;
        let mut counts = vec![0u32; m];
        let n = 160_000u64;
        for x in 0..n {
            counts[h.bucket(x, m)] += 1;
        }
        let expect = n as f64 / m as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviation {dev}");
        }
    }

    #[test]
    fn sign_hash_balanced_and_pairwise_decorrelated() {
        let s = SignHash::new(77);
        let n = 100_000u64;
        let sum: i64 = (0..n).map(|x| s.sign(x)).sum();
        assert!(
            (sum.abs() as f64) < 4.0 * (n as f64).sqrt(),
            "sign sum {sum} too far from 0"
        );
        // Pairwise: product of signs at (x, x+1) should also be balanced.
        let psum: i64 = (0..n).map(|x| s.sign(x) * s.sign(x + 1)).sum();
        assert!(
            (psum.abs() as f64) < 4.0 * (n as f64).sqrt(),
            "pair sum {psum} correlated"
        );
    }

    #[test]
    fn empirical_pairwise_independence() {
        // For a pairwise family, P[h(a)=i and h(b)=j] ~ 1/m^2 averaged over
        // seeds. Estimate over 2000 seeds with m=4.
        let m = 4;
        let (a, b) = (17u64, 42u64);
        let mut joint = vec![vec![0u32; m]; m];
        let seeds = 4000u64;
        for seed in 0..seeds {
            let h = TwoWise::new(seed);
            joint[h.bucket(a, m)][h.bucket(b, m)] += 1;
        }
        let expect = seeds as f64 / (m * m) as f64;
        for (i, row) in joint.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                let dev = (c as f64 - expect).abs() / expect;
                assert!(dev < 0.25, "joint ({i},{j}) deviation {dev}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "independence k must be >= 1")]
    fn polyhash_rejects_zero_k() {
        PolyHash::new(0, 1);
    }

    #[test]
    fn persist_roundtrip_preserves_function() {
        use pfe_persist::{Decoder, Encoder, Persist};
        let h = TwoWise::new(123);
        let mut enc = Encoder::new();
        h.encode(&mut enc);
        let bytes = enc.into_bytes();
        let back = TwoWise::decode(&mut Decoder::new(&bytes)).expect("decodes");
        for x in 0..500u64 {
            assert_eq!(h.eval(x), back.eval(x));
            assert_eq!(h.bucket(x, 37), back.bucket(x, 37));
        }
        // A SignHash payload (4 coefficients) is not a TwoWise.
        let s = SignHash::new(9);
        let mut enc = Encoder::new();
        s.encode(&mut enc);
        let bytes = enc.into_bytes();
        assert!(TwoWise::decode(&mut Decoder::new(&bytes)).is_err());
        // Out-of-field coefficients are malformed, not a panic.
        assert!(PolyHash::from_coefficients(vec![MERSENNE61]).is_none());
        assert!(PolyHash::from_coefficients(vec![]).is_none());
    }

    #[test]
    fn unit_in_range() {
        let h = PolyHash::new(2, 8);
        for x in 0..1000u64 {
            let u = h.unit(x);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
