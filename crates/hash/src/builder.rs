//! A fast, seeded `BuildHasher` for hash maps in hot paths.
//!
//! The standard library's default SipHash is robust against HashDoS but slow
//! for the integer keys (pattern keys, hashes) that dominate this workspace.
//! All inputs here are either trusted or already randomized by seeded
//! hashing, so an FxHash-style multiply-fold hasher is appropriate (see the
//! Rust performance book's Hashing chapter). Seeding keeps iteration order
//! deterministic for a fixed seed, which experiment reproducibility relies
//! on (we never iterate maps where order matters without sorting, but
//! determinism aids debugging).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

use crate::mix::{mix64, GOLDEN_GAMMA};

/// `BuildHasher` producing [`SeededHasher`]s; cheap to clone and copy.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeededState {
    seed: u64,
}

impl SeededState {
    /// Create a state with an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl BuildHasher for SeededState {
    type Hasher = SeededHasher;

    #[inline]
    fn build_hasher(&self) -> SeededHasher {
        SeededHasher {
            acc: self.seed ^ GOLDEN_GAMMA,
        }
    }
}

/// Word-at-a-time multiply-fold hasher (FxHash-flavoured with a final
/// avalanche so low bits are usable by the table).
#[derive(Debug)]
pub struct SeededHasher {
    acc: u64,
}

impl SeededHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.acc = (self.acc.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl Hasher for SeededHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.acc)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(tail) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// A `HashMap` keyed with the seeded fast hasher.
pub type SeededHashMap<K, V> = HashMap<K, V, SeededState>;

/// A `HashSet` keyed with the seeded fast hasher.
pub type SeededHashSet<K> = HashSet<K, SeededState>;

/// Construct an empty [`SeededHashMap`] with the given seed.
pub fn seeded_map<K, V>(seed: u64) -> SeededHashMap<K, V> {
    HashMap::with_hasher(SeededState::new(seed))
}

/// Construct an empty [`SeededHashSet`] with the given seed.
pub fn seeded_set<K>(seed: u64) -> SeededHashSet<K> {
    HashSet::with_hasher(SeededState::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(state: &SeededState, v: &T) -> u64 {
        state.hash_one(v)
    }

    #[test]
    fn deterministic_per_seed() {
        let s1 = SeededState::new(9);
        let s2 = SeededState::new(9);
        let s3 = SeededState::new(10);
        assert_eq!(hash_one(&s1, &12345u64), hash_one(&s2, &12345u64));
        assert_ne!(hash_one(&s1, &12345u64), hash_one(&s3, &12345u64));
    }

    #[test]
    fn distinct_u64_keys_rarely_collide() {
        let s = SeededState::new(0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50_000u64 {
            seen.insert(hash_one(&s, &i));
        }
        // A 64-bit hash over 50k items should have no collisions whp.
        assert_eq!(seen.len(), 50_000);
    }

    #[test]
    fn u128_both_halves_matter() {
        let s = SeededState::new(4);
        let a = hash_one(&s, &(1u128));
        let b = hash_one(&s, &(1u128 << 64));
        assert_ne!(a, b);
    }

    #[test]
    fn map_smoke() {
        let mut m: SeededHashMap<u64, u32> = seeded_map(77);
        for i in 0..1000 {
            *m.entry(i % 10).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 10);
        assert!(m.values().all(|&v| v == 100));
    }

    #[test]
    fn set_smoke() {
        let mut s: SeededHashSet<&str> = seeded_set(5);
        assert!(s.insert("a"));
        assert!(!s.insert("a"));
        assert!(s.contains("a"));
    }

    #[test]
    fn byte_slices_length_distinguished() {
        let s = SeededState::new(1);
        assert_ne!(
            hash_one(&s, &[1u8, 2, 3].as_slice()),
            hash_one(&s, &[1u8, 2, 3, 0].as_slice())
        );
    }
}
