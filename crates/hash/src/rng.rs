//! Deterministic PRNGs and distribution helpers.
//!
//! [`SplitMix64`] is used for seeding and for cheap one-shot streams;
//! [`Xoshiro256pp`] (xoshiro256++) is the workhorse generator for workload
//! generation, random codes, and samplers. Both are seeded from a single
//! `u64` so every experiment in the workspace is reproducible.
//!
//! The distribution helpers include the Chambers–Mallows–Stuck sampler for
//! symmetric p-stable variates, which backs the Indyk-style `F_p` sketch in
//! `pfe-sketch`.

use crate::mix::GOLDEN_GAMMA;

/// SplitMix64: a tiny, fast PRNG with a 64-bit state.
///
/// Primarily used to expand a single user seed into independent seed streams
/// for other components (xoshiro state, per-repetition hash seeds, ...).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — fast general-purpose PRNG (Blackman & Vigna).
///
/// Period `2^256 - 1`; passes BigCrush. All workload generators and samplers
/// in the workspace use this generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 expansion (the construction recommended by the
    /// xoshiro authors). A zero seed is fine: expansion never yields the
    /// all-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is invalid (fixed point). SplitMix64 expansion of
        // any seed cannot produce it, but guard for safety.
        if s == [0, 0, 0, 0] {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// The raw 256-bit generator state — captured for serialization so a
    /// restored generator continues the exact same stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact state previously returned by
    /// [`state`](Self::state). The all-zero state is the generator's fixed
    /// point and is rejected.
    ///
    /// # Errors
    /// Returns `None` for the (invalid) all-zero state.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0, 0, 0, 0] {
            return None;
        }
        Some(Self { s })
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, n)` using Lemire's nearly-divisionless method.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn range_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range_u64 requires n > 0");
        // Lemire 2019: multiply-shift with rejection to remove modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.range_u64(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53-bit resolution.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform `f64` in `(0, 1]` — safe as a `ln` argument.
    #[inline]
    pub fn f64_open_zero(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard Gaussian via the Box–Muller transform (one value per call;
    /// simple and allocation-free — speed is not critical for generators).
    pub fn gaussian(&mut self) -> f64 {
        let u1 = self.f64_open_zero();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Standard exponential variate (rate 1).
    #[inline]
    pub fn exponential(&mut self) -> f64 {
        -self.f64_open_zero().ln()
    }

    /// Standard Cauchy variate (the symmetric 1-stable distribution).
    #[inline]
    pub fn cauchy(&mut self) -> f64 {
        (std::f64::consts::PI * (self.f64() - 0.5)).tan()
    }

    /// Symmetric p-stable variate for `p ∈ (0, 2]` via Chambers–Mallows–Stuck.
    ///
    /// `p = 2` reduces to a (scaled) Gaussian, `p = 1` to Cauchy. Used by the
    /// Indyk `F_p` sketch.
    ///
    /// # Panics
    /// Panics if `p` is outside `(0, 2]`.
    pub fn stable(&mut self, p: f64) -> f64 {
        assert!(p > 0.0 && p <= 2.0, "stable index p={p} outside (0,2]");
        if (p - 2.0).abs() < 1e-12 {
            // 2-stable with the CMS scale convention: N(0, 2).
            return self.gaussian() * std::f64::consts::SQRT_2;
        }
        if (p - 1.0).abs() < 1e-12 {
            return self.cauchy();
        }
        let theta = std::f64::consts::PI * (self.f64() - 0.5); // U(-pi/2, pi/2)
        let w = self.exponential();
        let a = (p * theta).sin() / theta.cos().powf(1.0 / p);
        let b = ((1.0 - p) * theta).cos() / w;
        a * b.powf((1.0 - p) / p)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_u64(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (Floyd's algorithm), returned
    /// in ascending order.
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.range_u64(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s > 0`, via inverse
    /// transform on the precomputed CDF held in `ZipfTable`.
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self)
    }
}

impl pfe_persist::Persist for Xoshiro256pp {
    fn encode(&self, enc: &mut pfe_persist::Encoder) {
        for word in self.s {
            enc.put_u64(word);
        }
    }

    fn decode(dec: &mut pfe_persist::Decoder<'_>) -> Result<Self, pfe_persist::PersistError> {
        let s = [
            dec.take_u64()?,
            dec.take_u64()?,
            dec.take_u64()?,
            dec.take_u64()?,
        ];
        Self::from_state(s).ok_or_else(|| {
            pfe_persist::PersistError::Malformed("all-zero xoshiro256++ state".into())
        })
    }
}

/// Precomputed Zipf CDF over ranks `0..n` with exponent `s`.
///
/// Rank `r` (0-based) has probability proportional to `1/(r+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Build a table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable needs n > 0");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the table is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank using the supplied generator.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> usize {
        let u = rng.f64();
        // partition_point returns the count of entries < u, i.e. the first
        // rank whose CDF value is >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(1);
        let mut c = Xoshiro256pp::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn state_capture_resumes_the_exact_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u64();
        }
        let mut b = Xoshiro256pp::from_state(a.state()).expect("valid state");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(Xoshiro256pp::from_state([0; 4]).is_none());
    }

    #[test]
    fn persist_roundtrip_mid_stream() {
        use pfe_persist::{Decoder, Encoder, Persist};
        let mut a = Xoshiro256pp::seed_from_u64(11);
        a.range_u64(1000);
        let mut enc = Encoder::new();
        a.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut b = Xoshiro256pp::decode(&mut Decoder::new(&bytes)).expect("decodes");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero state is rejected as malformed, not accepted silently.
        assert!(Xoshiro256pp::decode(&mut Decoder::new(&[0u8; 32])).is_err());
    }

    #[test]
    fn range_u64_unbiased_small_n() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let n = 10u64;
        let mut counts = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[rng.range_u64(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i} deviates {dev}");
        }
    }

    #[test]
    #[should_panic(expected = "range_u64 requires n > 0")]
    fn range_u64_zero_panics() {
        Xoshiro256pp::seed_from_u64(0).range_u64(0);
    }

    #[test]
    fn f64_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open_zero();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.gaussian();
            sum += g;
            sumsq += g * g;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "gaussian mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "gaussian var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rng.exponential()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "exponential mean {mean}");
    }

    #[test]
    fn cauchy_median_zero() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let n = 100_000;
        let below = (0..n).filter(|_| rng.cauchy() < 0.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "cauchy median off: {frac}");
    }

    #[test]
    fn stable_special_cases_match() {
        // p=1 must be Cauchy-like: median 0, heavy tails.
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        let n = 50_000;
        let mut below = 0;
        let mut big = 0;
        for _ in 0..n {
            let x = rng.stable(1.0);
            if x < 0.0 {
                below += 1;
            }
            if x.abs() > 10.0 {
                big += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02);
        // P(|Cauchy| > 10) ~ 0.063; allow broad tolerance.
        let tail = big as f64 / n as f64;
        assert!(tail > 0.03 && tail < 0.10, "cauchy tail mass {tail}");
    }

    #[test]
    fn stable_p_half_is_heavy_tailed() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let n = 50_000;
        // Median of |X| should be finite and positive; mean diverges, so
        // compare quantiles instead of moments.
        let mut v: Vec<f64> = (0..n).map(|_| rng.stable(0.5).abs()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let med = v[n / 2];
        assert!(med.is_finite() && med > 0.0);
        // Tail heavier than Cauchy: the 99th percentile dwarfs the median.
        let p99 = v[(0.99 * n as f64) as usize];
        assert!(p99 / med > 50.0, "p=0.5 stable not heavy-tailed enough");
    }

    #[test]
    #[should_panic(expected = "outside (0,2]")]
    fn stable_rejects_bad_p() {
        Xoshiro256pp::seed_from_u64(0).stable(2.5);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_sorted_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        for _ in 0..50 {
            let v = rng.sample_indices(100, 17);
            assert_eq!(v.len(), 17);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
            assert!(v.iter().all(|&i| i < 100));
        }
    }

    #[test]
    fn sample_indices_full_and_empty() {
        let mut rng = Xoshiro256pp::seed_from_u64(37);
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(rng.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn zipf_rank_ordering() {
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let table = ZipfTable::new(50, 1.2);
        let mut counts = [0u32; 50];
        for _ in 0..200_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        // Rank 0 strictly dominates rank 5 dominates rank 30.
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[30]);
        // Ratio check: P(0)/P(1) = 2^1.2 ~ 2.3.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0f64.powf(1.2)).abs() < 0.3, "zipf ratio {ratio}");
    }
}
