//! The windowed serving engine: recency queries over the tiered bucket
//! ring, answered through the shared `pfe-engine` query executor.

use std::path::Path;
use std::sync::{Arc, Mutex};

use pfe_core::QueryError;
use pfe_engine::{
    Answer, CacheStats, EngineConfig, EngineError, Query, QueryCounters, QueryExecutor, Recorder,
    ShardSummary, Snapshot, WindowCoverage,
};
use pfe_obs::{Counter, Histogram};
use pfe_row::Dataset;
use pfe_sketch::traits::SpaceUsage;

use crate::config::WindowConfig;
use crate::ring::{BucketRing, Covering};

/// Observability counters of a [`WindowedEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Rows currently summarized (active bucket + sealed buckets).
    pub retained_rows: u64,
    /// Rows in the unsealed active bucket.
    pub active_rows: u64,
    /// Rows dropped off the tail so far.
    pub evicted_rows: u64,
    /// Sealed buckets currently held.
    pub buckets: usize,
    /// Sealed buckets per tier (`index = level`).
    pub buckets_per_tier: Vec<u32>,
    /// Buckets sealed since start (monotone).
    pub sealed_buckets: u64,
    /// Tier merges performed since start.
    pub tier_merges: u64,
    /// Evictions performed since start.
    pub evictions: u64,
    /// Covering-set snapshots served from the merged-snapshot cache.
    pub merged_cache_hits: u64,
    /// Covering-set snapshots built by merging buckets.
    pub merged_cache_misses: u64,
    /// Bytes held by the ring (active + sealed summaries).
    pub ring_bytes: usize,
    /// Answer-cache counters (shared executor).
    pub cache: CacheStats,
    /// Queries answered since start, across all statistics.
    pub queries_served: u64,
    /// Per-statistic breakdown of `queries_served`.
    pub queries: QueryCounters,
}

/// Tiny LRU of merged covering-set snapshots, keyed by fingerprint.
struct MergedLru {
    cap: usize,
    /// Most recently used at the back.
    entries: Vec<(u64, Arc<Snapshot>)>,
}

impl MergedLru {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, fingerprint: u64) -> Option<Arc<Snapshot>> {
        let pos = self.entries.iter().position(|(f, _)| *f == fingerprint)?;
        let entry = self.entries.remove(pos);
        let snap = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(snap)
    }

    fn put(&mut self, fingerprint: u64, snap: Arc<Snapshot>) {
        if self.cap == 0 {
            return;
        }
        self.entries.retain(|(f, _)| *f != fingerprint);
        self.entries.push((fingerprint, snap));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
    }
}

/// Sliding-window projected-frequency engine over a tiered bucket ring.
///
/// Ingest routes rows into the ring's active bucket (sealing and tier
/// maintenance happen inline); a `window(last_n)` query resolves the
/// minimal covering suffix of buckets, merges it into an immutable
/// [`Snapshot`] whose epoch slot is the covering-set *fingerprint*, and
/// answers through the same [`QueryExecutor`] as the whole-stream
/// [`Engine`](pfe_engine::Engine) — planner grouping, the LRU answer
/// cache, guarantees, and provenance all behave identically per
/// snapshot. Merged covering snapshots are themselves memoized in a tiny
/// fingerprint-keyed LRU, so repeated windowed queries between seals cost
/// one cache probe, not one merge.
///
/// Queries without a window option are answered over everything the ring
/// retains (bounded by [`WindowConfig::max_retention`]). Epoch pinning is
/// rejected: windowed epochs are content fingerprints, not a monotone
/// sequence.
pub struct WindowedEngine {
    ring: Mutex<BucketRing>,
    exec: QueryExecutor,
    merged: Mutex<MergedLru>,
    merged_hits: Arc<Counter>,
    merged_misses: Arc<Counter>,
    /// Distribution of covering-set sizes (buckets merged per resolved
    /// covering), recorded once per distinct covering per batch.
    covering_buckets: Arc<Histogram>,
}

impl WindowedEngine {
    /// Create an empty windowed engine for a `d`-column stream over
    /// alphabet `q`. `ecfg` supplies per-bucket summary parameters and
    /// the answer-cache capacity; `wcfg` shapes the ring.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn start(
        d: u32,
        q: u32,
        ecfg: EngineConfig,
        wcfg: WindowConfig,
    ) -> Result<Self, EngineError> {
        Self::start_with_recorder(d, q, ecfg, wcfg, Arc::new(Recorder::new()))
    }

    /// Like [`start`](Self::start), but registering every window metric
    /// (merged-snapshot LRU hits/misses, covering-set size histogram,
    /// ring gauges) plus the shared executor's series in `recorder`.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn start_with_recorder(
        d: u32,
        q: u32,
        ecfg: EngineConfig,
        wcfg: WindowConfig,
        recorder: Arc<Recorder>,
    ) -> Result<Self, EngineError> {
        let merged = MergedLru::new(wcfg.merged_cache);
        let ring = BucketRing::new(d, q, &ecfg, wcfg)?;
        Ok(Self {
            ring: Mutex::new(ring),
            merged: Mutex::new(merged),
            merged_hits: recorder.counter("window_merged_cache_hits"),
            merged_misses: recorder.counter("window_merged_cache_misses"),
            covering_buckets: recorder.histogram("window_covering_buckets"),
            exec: QueryExecutor::with_recorder(ecfg.cache_capacity, true, recorder),
        })
    }

    fn with_ring<T>(&self, f: impl FnOnce(&mut BucketRing) -> T) -> T {
        f(&mut self.ring.lock().expect("ring lock"))
    }

    /// Route one packed binary row into the active bucket.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_packed(&self, row: u64) -> Result<(), EngineError> {
        self.with_ring(|r| r.push_packed(row))
    }

    /// Route a slice of packed binary rows (validated up front).
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_packed_batch(&self, rows: &[u64]) -> Result<(), EngineError> {
        self.with_ring(|r| r.push_packed_batch(rows))
    }

    /// Route one dense row into the active bucket.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_dense(&self, row: &[u16]) -> Result<(), EngineError> {
        self.with_ring(|r| r.push_dense(row))
    }

    /// Route a flattened row-major slice of dense rows (`d` symbols per
    /// row, validated up front) under one ring lock.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_dense_batch(&self, flat: &[u16]) -> Result<(), EngineError> {
        self.with_ring(|r| r.push_dense_batch(flat))
    }

    /// Dimension `d` of the windowed stream.
    pub fn dimension(&self) -> u32 {
        self.with_ring(|r| r.dimension())
    }

    /// Alphabet `Q` of the windowed stream.
    pub fn alphabet(&self) -> u32 {
        self.with_ring(|r| r.alphabet())
    }

    /// Route a whole dataset.
    ///
    /// # Errors
    /// Shape mismatch (`BadConfig`) or row errors.
    pub fn ingest(&self, data: &Dataset) -> Result<(), EngineError> {
        self.with_ring(|r| {
            if data.dimension() != r.dimension() || data.alphabet() != r.alphabet() {
                return Err(EngineError::BadConfig(format!(
                    "dataset shape ({}, Q={}) does not match ring ({}, Q={})",
                    data.dimension(),
                    data.alphabet(),
                    r.dimension(),
                    r.alphabet()
                )));
            }
            match data {
                Dataset::Binary(m) => r.push_packed_batch(m.rows()),
                Dataset::Qary(m) => r.push_dense_batch(m.flat()),
            }
        })
    }

    /// Rows currently summarized by the ring.
    pub fn retained_rows(&self) -> u64 {
        self.with_ring(|r| r.retained_rows())
    }

    /// Resolve (without answering) the covering suffix a `last_n` request
    /// would merge — exposed for planning, testing, and slack auditing.
    pub fn coverage(&self, last_n: Option<u64>) -> Covering {
        self.with_ring(|r| r.covering(last_n))
    }

    /// Answer one query (see [`query_batch`](Self::query_batch)).
    ///
    /// # Errors
    /// Typed per-query errors (bad columns, pinning, summary errors).
    pub fn query(&self, query: &Query) -> Result<Answer, EngineError> {
        self.query_batch(std::slice::from_ref(query))
            .pop()
            .expect("one answer per query")
    }

    /// Answer a batch of queries, windowed and whole-retention mixed.
    /// Answers return in request order; per-query errors are per slot.
    ///
    /// The batch is first grouped by covering-set fingerprint — queries
    /// whose windows resolve to the same buckets share one merged
    /// snapshot — then each fingerprint group runs through the shared
    /// executor, where the planner further groups by canonical
    /// [`pfe_engine::QueryKey`] (so two `last_n` requests covering the
    /// same buckets and asking the same statistic cost one compute).
    /// Windowed answers come back stamped with their realized
    /// [`WindowCoverage`].
    pub fn query_batch(&self, queries: &[Query]) -> Vec<Result<Answer, EngineError>> {
        self.query_batch_traced(queries, &pfe_obs::TraceHandle::disabled())
    }

    /// [`query_batch`](Self::query_batch) under a request trace: the
    /// covering-set resolution, each cold-bucket merge, and the shared
    /// executor's stages record spans on `trace`, and every `Ok` answer
    /// echoes the trace id. With a disabled handle this is exactly the
    /// untraced path — tracing never changes covering choice, merge-cache
    /// behavior, or answers.
    pub fn query_batch_traced(
        &self,
        queries: &[Query],
        trace: &pfe_obs::TraceHandle,
    ) -> Vec<Result<Answer, EngineError>> {
        let mut out: Vec<Option<Result<Answer, EngineError>>> = vec![None; queries.len()];
        // Covering sets to serve: `(covering, slots, snapshot-or-parts)`.
        // Snapshots come from the fingerprint LRU when warm; misses carry
        // the bucket summaries cloned under the ring lock, so the
        // CPU-heavy merge fold happens after the lock is released and the
        // whole batch still sees one consistent ring state.
        enum Source {
            Warm(Arc<Snapshot>),
            Cold(Vec<ShardSummary>),
        }
        let mut groups: Vec<(Covering, Vec<usize>, Source)> = Vec::new();
        // Per-slot coverings: two requests can share a covering set (and
        // therefore a merged snapshot) while disagreeing on the
        // request-relative fields (`truncated` depends on `last_n`), so
        // each answer is stamped from its own slot's covering.
        let mut resolved: Vec<Option<Covering>> = vec![None; queries.len()];
        let mut resolve_span = trace.span("window_resolve");
        {
            let ring = self.ring.lock().expect("ring lock");
            let mut merged = self.merged.lock().expect("merged lock");
            for (slot, q) in queries.iter().enumerate() {
                if q.options.pin_epoch.is_some() {
                    out[slot] = Some(Err(EngineError::Query(QueryError::BadParameter(
                        "epoch pinning is not supported by the windowed engine \
                         (windowed epochs are covering-set fingerprints)"
                            .to_string(),
                    ))));
                    continue;
                }
                let c = ring.covering(q.options.window);
                resolved[slot] = Some(c);
                match groups
                    .iter_mut()
                    .find(|(g, _, _)| g.fingerprint == c.fingerprint)
                {
                    Some((_, slots, _)) => slots.push(slot),
                    None => {
                        let source = match merged.get(c.fingerprint) {
                            Some(snap) => {
                                self.merged_hits.inc();
                                Source::Warm(snap)
                            }
                            None => {
                                self.merged_misses.inc();
                                Source::Cold(ring.covering_summaries(&c))
                            }
                        };
                        self.covering_buckets.record(c.buckets as u64);
                        groups.push((c, vec![slot], source));
                    }
                }
            }
        }
        if resolve_span.is_enabled() {
            resolve_span.attr("queries", queries.len());
            resolve_span.attr("covering_groups", groups.len());
            resolve_span.attr(
                "covering_buckets",
                groups.iter().map(|(c, _, _)| c.buckets as u64).sum::<u64>(),
            );
        }
        drop(resolve_span);
        for (covering, slots, source) in groups {
            let snap = match source {
                Source::Warm(snap) => snap,
                Source::Cold(parts) => {
                    let mut merge_span = trace.span("window_merge");
                    if merge_span.is_enabled() {
                        merge_span.attr("fingerprint", covering.fingerprint);
                        merge_span.attr("buckets", covering.buckets);
                    }
                    let snap = Arc::new(Snapshot::from_shards(parts, covering.fingerprint));
                    drop(merge_span);
                    self.merged
                        .lock()
                        .expect("merged lock")
                        .put(covering.fingerprint, Arc::clone(&snap));
                    snap
                }
            };
            debug_assert_eq!(snap.n(), covering.covered_rows);
            let group_queries: Vec<Query> = slots.iter().map(|&s| queries[s].clone()).collect();
            let answers = self.exec.answer_batch_traced(&snap, &group_queries, trace);
            for (&slot, answer) in slots.iter().zip(answers) {
                out[slot] = Some(answer.map(|mut a| {
                    if let Some(requested) = queries[slot].options.window {
                        let own = resolved[slot].expect("grouped slots are resolved");
                        a.window = Some(WindowCoverage {
                            requested_rows: requested,
                            covered_rows: own.covered_rows,
                            buckets: own.buckets,
                            truncated: own.truncated,
                        });
                    }
                    a
                }));
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every slot filled"))
            .collect()
    }

    /// Write the entire ring (sealed buckets, active bucket, counters) to
    /// `path` as a framed, checksummed `pfe-persist` file. A
    /// [`resume`](Self::resume)d engine answers every windowed query
    /// bit-identically and keeps ingesting where this one left off.
    ///
    /// # Errors
    /// `Persist` on I/O failure.
    pub fn checkpoint<P: AsRef<Path>>(&self, path: P) -> Result<(), EngineError> {
        self.with_ring(|r| pfe_persist::save(path, pfe_persist::kind::WINDOW, r))?;
        Ok(())
    }

    /// Restore a windowed engine from a [`checkpoint`](Self::checkpoint)
    /// file. `ecfg` must carry the same summary parameters the ring was
    /// built with (sketch and reservoir seeds derive from them); every
    /// decoded bucket is verified mergeable against a probe summary built
    /// from `ecfg` before anything is served.
    ///
    /// # Errors
    /// `Persist` for unreadable/corrupt files, `Incompatible` when `ecfg`
    /// disagrees with the ring.
    pub fn resume<P: AsRef<Path>>(path: P, ecfg: EngineConfig) -> Result<Self, EngineError> {
        Self::resume_with_recorder(path, ecfg, Arc::new(Recorder::new()))
    }

    /// Like [`resume`](Self::resume), but registering metrics in a shared
    /// `recorder` (see [`start_with_recorder`](Self::start_with_recorder)).
    ///
    /// # Errors
    /// Same as [`resume`](Self::resume).
    pub fn resume_with_recorder<P: AsRef<Path>>(
        path: P,
        ecfg: EngineConfig,
        recorder: Arc<Recorder>,
    ) -> Result<Self, EngineError> {
        let ring: BucketRing = pfe_persist::load(path, pfe_persist::kind::WINDOW)?;
        let (d, q) = (ring.dimension(), ring.alphabet());
        let stored = ring.engine_config();
        for (what, matches) in [
            ("alpha", stored.alpha == ecfg.alpha),
            ("kmv_k", stored.kmv_k == ecfg.kmv_k),
            ("sample_t", stored.sample_t == ecfg.sample_t),
            ("seed", stored.seed == ecfg.seed),
            ("max_subsets", stored.max_subsets == ecfg.max_subsets),
            ("freq_net", stored.freq_net == ecfg.freq_net),
            ("fp", stored.fp == ecfg.fp),
        ] {
            if !matches {
                return Err(EngineError::Incompatible(format!(
                    "ring was built with a different {what}"
                )));
            }
        }
        // Structural probe: every bucket must merge cleanly with
        // summaries the resumed ring will construct from `ecfg`.
        let probe = Snapshot::from_shards(vec![ShardSummary::new(d, q, 0, &ecfg)?], 0);
        let wcfg = *ring.window_config();
        for bucket in ring.buckets() {
            Snapshot::from_shards(vec![bucket.summary().clone()], 0).check_mergeable(&probe)?;
        }
        Snapshot::from_shards(vec![ring.active().clone()], 0).check_mergeable(&probe)?;
        Ok(Self {
            ring: Mutex::new(ring),
            merged: Mutex::new(MergedLru::new(wcfg.merged_cache)),
            merged_hits: recorder.counter("window_merged_cache_hits"),
            merged_misses: recorder.counter("window_merged_cache_misses"),
            covering_buckets: recorder.histogram("window_covering_buckets"),
            exec: QueryExecutor::with_recorder(ecfg.cache_capacity, true, recorder),
        })
    }

    /// The recorder this engine reports into (see
    /// [`start_with_recorder`](Self::start_with_recorder)).
    pub fn recorder(&self) -> &Arc<Recorder> {
        self.exec.recorder()
    }

    /// Observability counters.
    ///
    /// Reading stats also mirrors the ring-derived values (retained/
    /// active/evicted rows, bucket counts, seals, tier merges, ring
    /// bytes) into the recorder's `window_*` gauges, so a Prometheus
    /// scrape taken through the server sees them too.
    pub fn window_stats(&self) -> WindowStats {
        let (
            retained_rows,
            active_rows,
            evicted_rows,
            buckets,
            buckets_per_tier,
            sealed_buckets,
            tier_merges,
            evictions,
            ring_bytes,
        ) = self.with_ring(|r| {
            (
                r.retained_rows(),
                r.active().rows(),
                r.evicted_rows(),
                r.buckets().count(),
                r.buckets_per_tier(),
                r.sealed_buckets(),
                r.tier_merges(),
                r.evictions(),
                r.space_bytes(),
            )
        });
        let queries = self.exec.counters();
        let stats = WindowStats {
            retained_rows,
            active_rows,
            evicted_rows,
            buckets,
            buckets_per_tier,
            sealed_buckets,
            tier_merges,
            evictions,
            merged_cache_hits: self.merged_hits.get(),
            merged_cache_misses: self.merged_misses.get(),
            ring_bytes,
            cache: self.exec.cache_stats(),
            queries_served: queries.total(),
            queries,
        };
        let rec = self.exec.recorder();
        rec.gauge("window_retained_rows").set(stats.retained_rows);
        rec.gauge("window_active_rows").set(stats.active_rows);
        rec.gauge("window_evicted_rows").set(stats.evicted_rows);
        rec.gauge("window_buckets").set(stats.buckets as u64);
        rec.gauge("window_sealed_buckets").set(stats.sealed_buckets);
        rec.gauge("window_tier_merges").set(stats.tier_merges);
        rec.gauge("window_evictions").set(stats.evictions);
        rec.gauge("window_ring_bytes").set(stats.ring_bytes as u64);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_stream::gen::uniform_binary;

    fn ecfg() -> EngineConfig {
        EngineConfig {
            sample_t: 4096,
            kmv_k: 64,
            ..Default::default()
        }
    }

    fn wcfg() -> WindowConfig {
        WindowConfig {
            bucket_rows: 100,
            tier_cap: 3,
            max_tiers: 4,
            merged_cache: 4,
        }
    }

    fn engine_with(d: u32, rows: usize, seed: u64) -> WindowedEngine {
        let engine = WindowedEngine::start(d, 2, ecfg(), wcfg()).expect("start");
        engine
            .ingest(&uniform_binary(d, rows, seed))
            .expect("ingest");
        engine
    }

    #[test]
    fn windowed_answers_carry_coverage() {
        let engine = engine_with(10, 950, 1);
        let a = engine
            .query(&Query::over([0, 1, 2]).heavy_hitters(0.05).window(300))
            .expect("ok");
        let w = a.window.expect("windowed answers carry coverage");
        assert_eq!(w.requested_rows, 300);
        assert!(w.covered_rows >= 300);
        assert!(!w.truncated);
        assert!(w.buckets >= 1);
        // The guarantee and epoch are relative to the covered suffix.
        assert_eq!(a.epoch, engine.coverage(Some(300)).fingerprint);
        // Unwindowed answers do not.
        let a = engine
            .query(&Query::over([0, 1, 2]).heavy_hitters(0.05))
            .expect("ok");
        assert_eq!(a.window, None);
    }

    #[test]
    fn repeated_windowed_queries_hit_both_caches() {
        let engine = engine_with(10, 950, 2);
        let q = Query::over([0, 1, 2, 3]).heavy_hitters(0.05).window(400);
        let first = engine.query(&q).expect("ok");
        assert!(!first.cost.cached);
        let second = engine.query(&q).expect("ok");
        assert!(second.cost.cached, "same covering + key must hit");
        assert_eq!(first.value, second.value);
        let stats = engine.window_stats();
        assert_eq!(stats.merged_cache_misses, 1);
        assert!(stats.cache.hits >= 1);
        // New rows shift the covering: the cache must not serve stale
        // windows.
        engine.push_packed(0b1).expect("push");
        let third = engine.query(&q).expect("ok");
        assert!(!third.cost.cached, "ingest must invalidate the window");
        assert_ne!(third.epoch, second.epoch);
    }

    #[test]
    fn same_covering_different_last_n_share_the_merge() {
        let engine = engine_with(10, 950, 3);
        // Both windows resolve inside the active+1-bucket covering iff
        // they land in the same bucket boundary; use values 1 apart to
        // guarantee the same covering set.
        let a = engine
            .query(&Query::over([0, 1]).f0().window(210))
            .expect("ok");
        let b = engine
            .query(&Query::over([0, 1]).f0().window(211))
            .expect("ok");
        assert_eq!(a.epoch, b.epoch, "same covering fingerprint");
        assert_eq!(a.estimate(), b.estimate());
        let stats = engine.window_stats();
        assert_eq!(
            stats.merged_cache_misses, 1,
            "one merge served both windows"
        );
        // Distinct last_n keep distinct answer-cache entries (the
        // coverage they report differs), so the second was a fresh
        // compute against the shared merged snapshot.
        assert_eq!(a.window.expect("w").requested_rows, 210);
        assert_eq!(b.window.expect("w").requested_rows, 211);
    }

    #[test]
    fn batch_mixes_windows_and_whole_retention() {
        let engine = engine_with(10, 950, 4);
        let batch = vec![
            Query::over([0, 1]).f0().window(100),
            Query::over([0, 1]).f0(),
            Query::over([0, 1]).f0().window(900),
            Query::over([0, 1]).f0().pinned_to(3), // rejected
            Query::over([99]).f0().window(100),    // bad columns
        ];
        let answers = engine.query_batch(&batch);
        assert!(answers[0].is_ok());
        assert!(answers[1].is_ok());
        assert!(answers[2].is_ok());
        assert!(matches!(
            &answers[3],
            Err(EngineError::Query(QueryError::BadParameter(m))) if m.contains("pinning")
        ));
        assert!(answers[4].is_err());
        // Whole-retention and the 900-window may or may not share a
        // covering; the 100-window covers fewer rows than retention.
        let w100 = answers[0].as_ref().unwrap().window.unwrap();
        assert!(w100.covered_rows < engine.retained_rows() || w100.covered_rows >= 100);
        assert_eq!(answers[1].as_ref().unwrap().window, None);
    }

    #[test]
    fn truncated_windows_report_it() {
        let d = 8;
        let engine = WindowedEngine::start(
            d,
            2,
            ecfg(),
            WindowConfig {
                bucket_rows: 50,
                tier_cap: 2,
                max_tiers: 1,
                merged_cache: 2,
            },
        )
        .expect("start");
        engine.ingest(&uniform_binary(d, 500, 5)).expect("ingest");
        let stats = engine.window_stats();
        assert!(stats.evicted_rows > 0, "tiny ring must have evicted");
        let a = engine
            .query(&Query::over([0, 1]).f0().window(100_000))
            .expect("ok");
        let w = a.window.expect("coverage");
        assert!(w.truncated);
        assert_eq!(w.covered_rows, stats.retained_rows);
    }

    #[test]
    fn grouped_batch_members_keep_their_own_truncation() {
        // Regression: two requests sharing one covering set (same
        // fingerprint, one merged snapshot) must still report their own
        // request-relative truncation.
        let d = 8;
        let engine = WindowedEngine::start(
            d,
            2,
            ecfg(),
            WindowConfig {
                bucket_rows: 50,
                tier_cap: 2,
                max_tiers: 1,
                merged_cache: 2,
            },
        )
        .expect("start");
        engine.ingest(&uniform_binary(d, 500, 9)).expect("ingest");
        assert!(engine.window_stats().evicted_rows > 0);
        let retained = engine.retained_rows();
        let answers = engine.query_batch(&[
            Query::over([0, 1]).f0().window(retained),
            Query::over([0, 1]).f0().window(100_000),
        ]);
        let (a, b) = (
            answers[0].as_ref().expect("ok"),
            answers[1].as_ref().expect("ok"),
        );
        assert_eq!(a.epoch, b.epoch, "same covering set, one merge");
        let (wa, wb) = (a.window.expect("w"), b.window.expect("w"));
        assert_eq!(wa.covered_rows, retained);
        assert_eq!(wb.covered_rows, retained);
        assert!(!wa.truncated, "request within retention");
        assert!(wb.truncated, "request beyond evicted history");
    }

    #[test]
    fn window_stats_reflect_ring_shape() {
        let engine = engine_with(10, 950, 6);
        let stats = engine.window_stats();
        assert_eq!(stats.retained_rows, 950);
        assert_eq!(stats.active_rows, 50);
        assert_eq!(stats.sealed_buckets, 9);
        assert!(stats.tier_merges > 0, "9 seals at cap 3 must merge");
        assert_eq!(stats.evictions, 0);
        assert_eq!(
            stats.buckets_per_tier.iter().sum::<u32>() as usize,
            stats.buckets
        );
        assert!(stats.ring_bytes > 0);
        assert_eq!(stats.queries_served, 0);
        engine.query(&Query::over([0]).f0().window(10)).expect("ok");
        assert_eq!(engine.window_stats().queries.f0, 1);
    }

    #[test]
    fn shared_recorder_sees_window_metrics() {
        let rec = Arc::new(Recorder::new());
        let engine = WindowedEngine::start_with_recorder(10, 2, ecfg(), wcfg(), Arc::clone(&rec))
            .expect("start");
        engine.ingest(&uniform_binary(10, 950, 12)).expect("ingest");
        let q = Query::over([0, 1]).f0().window(300);
        engine.query(&q).expect("ok");
        engine.query(&q).expect("ok");
        assert_eq!(rec.counter("window_merged_cache_misses").get(), 1);
        // Each batch re-resolves its covering set even when the merged
        // snapshot is warm, so the histogram counts resolutions.
        assert_eq!(rec.histogram("window_covering_buckets").count(), 2);
        assert!(rec.histogram("window_covering_buckets").snapshot().max >= 1);
        // Executor series land in the same registry…
        assert_eq!(rec.counter("engine_queries_f0").get(), 2);
        // …and reading stats mirrors the ring shape into gauges.
        let stats = engine.window_stats();
        assert_eq!(rec.gauge("window_retained_rows").get(), stats.retained_rows);
        assert_eq!(
            rec.gauge("window_sealed_buckets").get(),
            stats.sealed_buckets
        );
        assert_eq!(stats.merged_cache_hits, 1);
    }

    #[test]
    fn ingest_shape_mismatch_rejected() {
        let engine = WindowedEngine::start(8, 2, ecfg(), wcfg()).expect("start");
        assert!(matches!(
            engine.ingest(&uniform_binary(9, 10, 7)),
            Err(EngineError::BadConfig(_))
        ));
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let dir = std::env::temp_dir().join("pfe-window-test-resume-mismatch");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join("ring.pfew");
        let engine = engine_with(10, 400, 8);
        engine.checkpoint(&path).expect("checkpoint");
        // Same config resumes.
        assert!(WindowedEngine::resume(&path, ecfg()).is_ok());
        // A different seed (=> different sketch seeds) is rejected.
        let bad = EngineConfig {
            seed: 999,
            ..ecfg()
        };
        assert!(matches!(
            WindowedEngine::resume(&path, bad),
            Err(EngineError::Incompatible(_))
        ));
        std::fs::remove_file(&path).ok();
    }
}
