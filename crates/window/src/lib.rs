#![deny(missing_docs)]
//! `pfe-window` — sliding-window projected-frequency analytics over
//! tiered mergeable buckets.
//!
//! The whole-stream engine (`pfe-engine`) answers projection queries over
//! everything it ever ingested; production recency workloads ask "heavy
//! hitters over the last million rows", "`F_0` over the current hour".
//! Because every summary in the stack is **mergeable** (KMV and CountMin
//! exactly under shared per-mask seeds, the uniform row sample by the
//! seeded hypergeometric union — and losslessly while under-full), a
//! window over the recent past can be *composed from sealed
//! sub-summaries* instead of re-ingesting anything:
//!
//! 1. **[`BucketRing`]** — an exponential histogram of sealed summary
//!    buckets (tier ℓ covers `bucket_rows · 2^ℓ` rows, each tier capped;
//!    over-cap tiers merge their two oldest buckets upward; the top tier
//!    evicts). Retention is bounded, maintenance is O(1) amortized per
//!    row, and any `last_n` within retention is covered by a contiguous
//!    bucket suffix overshooting by less than one bucket.
//! 2. **[`WindowedEngine`]** — routes ingest into the ring's active
//!    bucket and answers [`Query::window(last_n)`](pfe_engine::Query)
//!    requests by merging the minimal covering suffix into an immutable
//!    [`Snapshot`](pfe_engine::Snapshot) whose epoch slot is the
//!    covering-set *fingerprint*. Serving goes through the same
//!    [`QueryExecutor`](pfe_engine::QueryExecutor) as the whole-stream
//!    engine — planner grouping, the canonical
//!    [`QueryKey`](pfe_engine::QueryKey) (which carries the window
//!    length), the LRU answer cache, guarantees, and provenance are all
//!    shared — plus a tiny fingerprint-keyed LRU of merged covering
//!    snapshots, so repeated windowed queries between seals cost a cache
//!    probe instead of a merge.
//! 3. **Durability** — the whole ring implements
//!    [`Persist`](pfe_persist::Persist) (`kind::WINDOW` framing):
//!    [`WindowedEngine::checkpoint`] / [`WindowedEngine::resume`]
//!    round-trip windows bit-exactly and keep ingesting.
//!
//! Every windowed [`Answer`](pfe_engine::Answer) reports its realized
//! [`WindowCoverage`](pfe_engine::WindowCoverage): the covered suffix is
//! at least `last_n` rows (unless rows were already evicted, flagged
//! `truncated`) and overshoots by less than the oldest bucket merged —
//! the ≤ 1-bucket window slack inherent to tiered designs.
//!
//! ```
//! use pfe_engine::{EngineConfig, Query};
//! use pfe_window::{WindowConfig, WindowedEngine};
//! use pfe_stream::gen::uniform_binary;
//!
//! let ecfg = EngineConfig { sample_t: 512, kmv_k: 64, ..Default::default() };
//! let wcfg = WindowConfig { bucket_rows: 256, ..Default::default() };
//! let engine = WindowedEngine::start(12, 2, ecfg, wcfg).unwrap();
//! engine.ingest(&uniform_binary(12, 3_000, 1)).unwrap();
//! // Heavy hitters over (roughly) the most recent 1000 rows.
//! let a = engine
//!     .query(&Query::over([0, 1, 2]).heavy_hitters(0.05).window(1_000))
//!     .unwrap();
//! let w = a.window.unwrap();
//! assert!(w.covered_rows >= 1_000);            // covers the request…
//! assert!(w.covered_rows - 1_000 < 512);        // …within one bucket
//! assert!(a.hitters().unwrap().len() < 1_000);
//! ```

mod config;
mod engine;
mod ring;
pub mod wire;

pub use config::WindowConfig;
pub use engine::{WindowStats, WindowedEngine};
pub use ring::{Bucket, BucketRing, Covering};
