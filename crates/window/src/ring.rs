//! The tiered bucket ring: an exponential histogram of sealed, mergeable
//! summary buckets over the most recent rows of a stream.
//!
//! ```text
//!   oldest ──────────────────────────────────────────▶ newest
//!   [ 4×|tier2 ][ 2×|tier1 ][ 2×|tier1 ][ 1× ][ 1× ]( active )
//!        ▲            two oldest of an over-cap tier      ▲
//!        └ evicted when the TOP tier exceeds its cap      └ seals at
//!          merge into one bucket of the next tier           bucket_rows
//! ```
//!
//! Every bucket holds one sealed [`ShardSummary`] — the same mergeable
//! suite (uniform row sample + α-net `F_0` KMVs + optional CountMin
//! frequency net) the engine's ingest shards own — so any *contiguous
//! run* of buckets merges into a [`Snapshot`](pfe_engine::Snapshot) that
//! answers all four paper statistics over exactly the rows those buckets
//! observed. A `last_n` query takes the minimal covering suffix of
//! buckets (newest first), overshooting by less than the oldest bucket
//! included; the covering set's *fingerprint* (a hash of the included
//! bucket ids) keys the windowed engine's merged-snapshot and answer
//! caches, so cached windowed answers invalidate exactly when their
//! covering buckets change.

use std::collections::VecDeque;

use pfe_core::QueryError;
use pfe_engine::{EngineConfig, EngineError, FreqNetConfig, ShardSummary};
use pfe_hash::hash_u64;
use pfe_persist::{Decoder, Encoder, Persist, PersistError};
use pfe_sketch::traits::SpaceUsage;

use crate::config::WindowConfig;

/// Domain separators for the covering-set fingerprint hash chain.
const FP_SEED: u64 = 0x77f1_0b0c_ce71_25ed;

/// One sealed bucket: a summary suite over a contiguous row segment.
#[derive(Clone)]
pub struct Bucket {
    /// Monotone identity — fresh per seal *and* per tier merge, so equal
    /// ids imply identical content and fingerprints can key caches.
    id: u64,
    /// Tier: the bucket covers on the order of `bucket_rows · 2^level`
    /// rows.
    level: u32,
    /// The sealed summaries.
    summary: ShardSummary,
}

impl Bucket {
    /// Bucket identity (monotone, unique per content).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Tier of this bucket.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Rows the bucket summarizes.
    pub fn rows(&self) -> u64 {
        self.summary.rows()
    }

    /// The sealed summaries.
    pub fn summary(&self) -> &ShardSummary {
        &self.summary
    }
}

/// The minimal covering suffix the ring resolved for one window request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Covering {
    /// Index of the oldest sealed bucket included (`buckets()[start..]`
    /// plus the active bucket are merged); equals the bucket count when
    /// the active bucket alone covers the window.
    pub start: usize,
    /// Rows of the covered suffix (sealed buckets + active rows).
    pub covered_rows: u64,
    /// Buckets merged, counting the active bucket when it holds rows.
    pub buckets: u32,
    /// Rows of the oldest merged bucket — the window-overshoot bound.
    pub oldest_rows: u64,
    /// Whether rows the request wanted were already evicted.
    pub truncated: bool,
    /// Content fingerprint of the covering set (included bucket ids plus
    /// the active bucket's state): the merged snapshot's epoch slot and
    /// cache key.
    pub fingerprint: u64,
}

/// The tiered ring of sealed buckets plus the live active bucket.
pub struct BucketRing {
    wcfg: WindowConfig,
    ecfg: EngineConfig,
    d: u32,
    q: u32,
    /// Sealed buckets, oldest at the front; levels are non-increasing
    /// front → back (the exponential-histogram invariant).
    buckets: VecDeque<Bucket>,
    /// The live bucket ingest routes into.
    active: ShardSummary,
    /// Id the active bucket will take when sealed (fresh ids are also
    /// consumed by tier merges, so this is *not* a seal count).
    next_id: u64,
    /// Buckets sealed so far.
    seals: u64,
    /// Rows dropped off the tail so far.
    evicted_rows: u64,
    /// Tier merges performed.
    tier_merges: u64,
    /// Buckets evicted.
    evictions: u64,
}

impl BucketRing {
    /// Create an empty ring for a `d`-column stream over alphabet `q`.
    /// `ecfg` supplies the per-bucket summary parameters (`alpha`,
    /// `kmv_k`, `sample_t`, `seed`, `freq_net`, `fp`); its sharding
    /// fields are unused.
    ///
    /// # Errors
    /// Config validation or summary construction errors.
    pub fn new(
        d: u32,
        q: u32,
        ecfg: &EngineConfig,
        wcfg: WindowConfig,
    ) -> Result<Self, EngineError> {
        wcfg.validate()?;
        ShardSummary::validate(d, q, ecfg)?;
        let active = ShardSummary::new(d, q, 0, ecfg)?;
        Ok(Self {
            wcfg,
            ecfg: ecfg.clone(),
            d,
            q,
            buckets: VecDeque::new(),
            active,
            next_id: 0,
            seals: 0,
            evicted_rows: 0,
            tier_merges: 0,
            evictions: 0,
        })
    }

    /// Dimension `d`.
    pub fn dimension(&self) -> u32 {
        self.d
    }

    /// Alphabet `Q`.
    pub fn alphabet(&self) -> u32 {
        self.q
    }

    /// The ring's window configuration.
    pub fn window_config(&self) -> &WindowConfig {
        &self.wcfg
    }

    /// The per-bucket summary configuration.
    pub fn engine_config(&self) -> &EngineConfig {
        &self.ecfg
    }

    /// Sealed buckets, oldest first.
    pub fn buckets(&self) -> impl Iterator<Item = &Bucket> {
        self.buckets.iter()
    }

    /// The live (unsealed) bucket.
    pub fn active(&self) -> &ShardSummary {
        &self.active
    }

    /// Rows currently summarized (active + sealed).
    pub fn retained_rows(&self) -> u64 {
        self.active.rows() + self.buckets.iter().map(Bucket::rows).sum::<u64>()
    }

    /// Rows dropped off the tail so far.
    pub fn evicted_rows(&self) -> u64 {
        self.evicted_rows
    }

    /// Buckets sealed so far (monotone).
    pub fn sealed_buckets(&self) -> u64 {
        self.seals
    }

    /// Tier merges performed so far.
    pub fn tier_merges(&self) -> u64 {
        self.tier_merges
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Buckets currently held per tier (`index = level`).
    pub fn buckets_per_tier(&self) -> Vec<u32> {
        let mut tiers = vec![0u32; self.wcfg.max_tiers as usize];
        for b in &self.buckets {
            tiers[b.level as usize] += 1;
        }
        tiers
    }

    /// Observe one packed binary row.
    ///
    /// The ring is a serving boundary like the ingest pipeline: malformed
    /// rows are typed errors, never panics.
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_packed(&mut self, row: u64) -> Result<(), EngineError> {
        if self.q != 2 {
            return Err(EngineError::Query(QueryError::BadParameter(
                "push_packed requires a binary ring".into(),
            )));
        }
        if row & !((1u64 << self.d) - 1) != 0 {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row has bits above d={}",
                self.d
            ))));
        }
        self.active.push_packed(row);
        self.maybe_seal();
        Ok(())
    }

    /// Observe a slice of packed binary rows (validated up front: a
    /// malformed batch observes nothing).
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_packed_batch(&mut self, rows: &[u64]) -> Result<(), EngineError> {
        if self.q != 2 {
            return Err(EngineError::Query(QueryError::BadParameter(
                "push_packed requires a binary ring".into(),
            )));
        }
        let above_d = !((1u64 << self.d) - 1);
        if let Some(&bad) = rows.iter().find(|&&row| row & above_d != 0) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row {bad:#x} has bits above d={}",
                self.d
            ))));
        }
        for &row in rows {
            self.active.push_packed(row);
            self.maybe_seal();
        }
        Ok(())
    }

    /// Observe one dense row (any alphabet).
    ///
    /// # Errors
    /// `Query(BadParameter)` on wrong length or out-of-alphabet symbols.
    pub fn push_dense(&mut self, row: &[u16]) -> Result<(), EngineError> {
        if row.len() != self.d as usize {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "row length {} != d = {}",
                row.len(),
                self.d
            ))));
        }
        if let Some(&s) = row.iter().find(|&&s| s as u32 >= self.q) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "symbol {s} outside alphabet Q={}",
                self.q
            ))));
        }
        self.active.push_dense(row);
        self.maybe_seal();
        Ok(())
    }

    /// Observe a flattened row-major slice of dense rows (`d` symbols per
    /// row; validated up front, a malformed batch observes nothing).
    ///
    /// # Errors
    /// `Query(BadParameter)` on shape violations.
    pub fn push_dense_batch(&mut self, flat: &[u16]) -> Result<(), EngineError> {
        let d = self.d as usize;
        if d == 0 || !flat.len().is_multiple_of(d) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "flat length {} is not a multiple of d = {}",
                flat.len(),
                self.d
            ))));
        }
        if let Some(&s) = flat.iter().find(|&&s| s as u32 >= self.q) {
            return Err(EngineError::Query(QueryError::BadParameter(format!(
                "symbol {s} outside alphabet Q={}",
                self.q
            ))));
        }
        for row in flat.chunks_exact(d) {
            self.active.push_dense(row);
            self.maybe_seal();
        }
        Ok(())
    }

    fn maybe_seal(&mut self) {
        if self.active.rows() >= self.wcfg.bucket_rows {
            self.seal();
        }
    }

    /// Seal the active bucket into tier 0 and restore the tier caps.
    fn seal(&mut self) {
        let fresh = ShardSummary::new(self.d, self.q, (self.next_id + 1) as usize, &self.ecfg)
            .expect("parameters validated at ring construction");
        let summary = std::mem::replace(&mut self.active, fresh);
        self.buckets.push_back(Bucket {
            id: self.next_id,
            level: 0,
            summary,
        });
        self.next_id += 1;
        self.seals += 1;
        self.cascade();
    }

    /// Restore the per-tier caps: merge the two oldest buckets of any
    /// over-cap tier into the next tier, evicting at the top tier.
    fn cascade(&mut self) {
        loop {
            let tiers = self.buckets_per_tier();
            let Some(level) =
                (0..self.wcfg.max_tiers).find(|&l| tiers[l as usize] as usize > self.wcfg.tier_cap)
            else {
                return;
            };
            if level + 1 >= self.wcfg.max_tiers {
                // Top tier: drop the oldest bucket. Levels are
                // non-increasing front → back, so it is the front.
                let victim = self.buckets.pop_front().expect("over-cap tier is nonempty");
                debug_assert_eq!(victim.level, level);
                self.evicted_rows += victim.rows();
                self.evictions += 1;
                continue;
            }
            // The two oldest buckets of `level` are adjacent (everything
            // older sits in higher tiers).
            let first = self
                .buckets
                .iter()
                .position(|b| b.level == level)
                .expect("over-cap tier is nonempty");
            debug_assert_eq!(self.buckets[first + 1].level, level);
            let newer = self.buckets.remove(first + 1).expect("adjacent pair");
            let older = &mut self.buckets[first];
            // Older absorbs newer so the merged sample keeps stream order
            // while both reservoirs are under-full (lossless regime).
            older.summary.merge(&newer.summary);
            older.level = level + 1;
            older.id = self.next_id;
            self.next_id += 1;
            self.tier_merges += 1;
        }
    }

    /// Resolve the minimal covering suffix for a `last_n` request
    /// (`None` = everything retained).
    pub fn covering(&self, last_n: Option<u64>) -> Covering {
        let active_rows = self.active.rows();
        let mut covered = active_rows;
        let mut oldest = active_rows;
        let mut start = self.buckets.len();
        let stop_at = last_n.unwrap_or(u64::MAX);
        while covered < stop_at && start > 0 {
            start -= 1;
            covered += self.buckets[start].rows();
            oldest = self.buckets[start].rows();
        }
        let truncated = last_n.is_some_and(|n| covered < n && self.evicted_rows > 0);
        let sealed = (self.buckets.len() - start) as u32;
        let buckets = sealed + u32::from(active_rows > 0);
        Covering {
            start,
            covered_rows: covered,
            buckets,
            oldest_rows: oldest,
            truncated,
            fingerprint: self.fingerprint(start),
        }
    }

    /// Content fingerprint of `buckets[start..]` plus the active bucket.
    fn fingerprint(&self, start: usize) -> u64 {
        let mut h = hash_u64((self.d as u64) | ((self.q as u64) << 32), FP_SEED);
        for b in self.buckets.iter().skip(start) {
            h = hash_u64(h ^ b.id, FP_SEED.rotate_left(17));
        }
        h = hash_u64(h ^ self.next_id, FP_SEED.rotate_left(31));
        hash_u64(h ^ self.active.rows(), FP_SEED.rotate_left(47))
    }

    /// Clone the summaries of a covering suffix in stream order (oldest
    /// sealed bucket first, the active bucket last) — ready for
    /// [`Snapshot::from_shards`](pfe_engine::Snapshot::from_shards) with
    /// the covering fingerprint as the epoch slot.
    pub fn covering_summaries(&self, covering: &Covering) -> Vec<ShardSummary> {
        let mut out: Vec<ShardSummary> = self
            .buckets
            .iter()
            .skip(covering.start)
            .map(|b| b.summary.clone())
            .collect();
        out.push(self.active.clone());
        out
    }
}

impl SpaceUsage for BucketRing {
    fn space_bytes(&self) -> usize {
        self.active.space_bytes()
            + self
                .buckets
                .iter()
                .map(|b| b.summary.space_bytes())
                .sum::<usize>()
    }
}

impl Persist for BucketRing {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.wcfg.bucket_rows);
        enc.put_u64(self.wcfg.tier_cap as u64);
        enc.put_u32(self.wcfg.max_tiers);
        enc.put_u64(self.wcfg.merged_cache as u64);
        // The summary-construction parameters future seals derive sketch
        // and reservoir seeds from.
        enc.put_f64(self.ecfg.alpha);
        enc.put_u64(self.ecfg.kmv_k as u64);
        enc.put_u64(self.ecfg.sample_t as u64);
        enc.put_u128(self.ecfg.max_subsets);
        enc.put_u64(self.ecfg.seed);
        match &self.ecfg.freq_net {
            None => enc.put_bool(false),
            Some(fc) => {
                enc.put_bool(true);
                enc.put_u64(fc.depth as u64);
                enc.put_u64(fc.width as u64);
            }
        }
        self.ecfg.fp.encode(enc);
        enc.put_u32(self.d);
        enc.put_u32(self.q);
        enc.put_u64(self.next_id);
        enc.put_u64(self.seals);
        enc.put_u64(self.evicted_rows);
        enc.put_u64(self.tier_merges);
        enc.put_u64(self.evictions);
        self.active.encode(enc);
        enc.put_len(self.buckets.len());
        for b in &self.buckets {
            enc.put_u64(b.id);
            enc.put_u32(b.level);
            b.summary.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let wcfg = WindowConfig {
            bucket_rows: dec.take_u64()?,
            tier_cap: dec.take_u64()? as usize,
            max_tiers: dec.take_u32()?,
            merged_cache: dec.take_u64()? as usize,
        };
        let alpha = dec.take_f64()?;
        let kmv_k = dec.take_u64()? as usize;
        let sample_t = dec.take_u64()? as usize;
        let max_subsets = dec.take_u128()?;
        let seed = dec.take_u64()?;
        let freq_net = if dec.take_bool()? {
            Some(FreqNetConfig {
                depth: dec.take_u64()? as usize,
                width: dec.take_u64()? as usize,
            })
        } else {
            None
        };
        let fp = Option::<pfe_core::FpConfig>::decode(dec)?;
        let ecfg = EngineConfig {
            alpha,
            kmv_k,
            sample_t,
            max_subsets,
            seed,
            freq_net,
            fp,
            ..EngineConfig::default()
        };
        let d = dec.take_u32()?;
        let q = dec.take_u32()?;
        let next_id = dec.take_u64()?;
        let seals = dec.take_u64()?;
        let evicted_rows = dec.take_u64()?;
        let tier_merges = dec.take_u64()?;
        let evictions = dec.take_u64()?;
        wcfg.validate()
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        ecfg.validate()
            .map_err(|e| PersistError::Malformed(e.to_string()))?;
        let active = ShardSummary::decode(dec)?;
        let check_shape = |s: &ShardSummary, what: &str| {
            if s.sample().dimension() != d || s.sample().alphabet() != q {
                return Err(PersistError::Malformed(format!(
                    "{what} summarizes ({}, Q={}) but the ring holds ({d}, Q={q})",
                    s.sample().dimension(),
                    s.sample().alphabet()
                )));
            }
            Ok(())
        };
        check_shape(&active, "active bucket")?;
        let count = dec.take_len(8)?;
        let mut buckets = VecDeque::with_capacity(count);
        let mut prev_level: Option<u32> = None;
        for i in 0..count {
            let id = dec.take_u64()?;
            let level = dec.take_u32()?;
            if id >= next_id {
                return Err(PersistError::Malformed(format!(
                    "bucket id {id} at or above next_id {next_id}"
                )));
            }
            if level >= wcfg.max_tiers {
                return Err(PersistError::Malformed(format!(
                    "bucket level {level} at or above max_tiers {}",
                    wcfg.max_tiers
                )));
            }
            if let Some(prev) = prev_level {
                if level > prev {
                    return Err(PersistError::Malformed(format!(
                        "bucket {i} level {level} above its older neighbor's {prev} \
                         (tier order violated)"
                    )));
                }
            }
            prev_level = Some(level);
            let summary = ShardSummary::decode(dec)?;
            check_shape(&summary, "sealed bucket")?;
            if summary.rows() == 0 {
                return Err(PersistError::Malformed(
                    "sealed bucket summarizes zero rows".into(),
                ));
            }
            buckets.push_back(Bucket { id, level, summary });
        }
        Ok(Self {
            wcfg,
            ecfg,
            d,
            q,
            buckets,
            active,
            next_id,
            seals,
            evicted_rows,
            tier_merges,
            evictions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfe_row::ColumnSet;
    use pfe_stream::gen::uniform_binary;

    fn ecfg() -> EngineConfig {
        EngineConfig {
            sample_t: 64,
            kmv_k: 32,
            ..Default::default()
        }
    }

    fn wcfg(bucket_rows: u64, tier_cap: usize, max_tiers: u32) -> WindowConfig {
        WindowConfig {
            bucket_rows,
            tier_cap,
            max_tiers,
            merged_cache: 4,
        }
    }

    fn fill(ring: &mut BucketRing, d: u32, rows: usize, seed: u64) {
        if let pfe_row::Dataset::Binary(m) = &uniform_binary(d, rows, seed) {
            ring.push_packed_batch(m.rows()).expect("push");
        }
    }

    #[test]
    fn seals_at_bucket_rows_and_respects_tier_caps() {
        let d = 8;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 2, 4)).expect("new");
        fill(&mut ring, d, 25, 1);
        // 25 rows: two sealed tier-0 buckets + 5 active rows.
        assert_eq!(ring.active().rows(), 5);
        assert_eq!(ring.retained_rows(), 25);
        assert_eq!(ring.buckets_per_tier(), vec![2, 0, 0, 0]);
        fill(&mut ring, d, 10, 2);
        // Third seal overflows tier 0 (cap 2): two oldest merge upward.
        assert_eq!(ring.buckets_per_tier(), vec![1, 1, 0, 0]);
        assert_eq!(ring.tier_merges(), 1);
        assert_eq!(ring.evictions(), 0);
        // Every tier-1 bucket holds 2x rows; retention is exact.
        assert_eq!(ring.retained_rows(), 35);
        let levels: Vec<u32> = ring.buckets().map(Bucket::level).collect();
        assert_eq!(levels, vec![1, 0], "older buckets sit in higher tiers");
    }

    #[test]
    fn eviction_at_top_tier_drops_oldest_and_accounts_rows() {
        let d = 8;
        // 1 tier, cap 2: the third seal evicts the oldest bucket.
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 2, 1)).expect("new");
        fill(&mut ring, d, 30, 3);
        assert_eq!(ring.evictions(), 1);
        assert_eq!(ring.evicted_rows(), 10);
        assert_eq!(ring.retained_rows(), 20);
        assert_eq!(ring.buckets_per_tier(), vec![2]);
    }

    #[test]
    fn covering_is_minimal_with_sub_bucket_slack() {
        let d = 8;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 4, 4)).expect("new");
        fill(&mut ring, d, 47, 4); // 4 sealed buckets + 7 active
        let c = ring.covering(Some(5));
        assert_eq!((c.covered_rows, c.buckets), (7, 1), "active alone covers");
        let c = ring.covering(Some(8));
        assert_eq!(c.covered_rows, 17, "one sealed bucket joins");
        assert_eq!(c.oldest_rows, 10);
        assert!(c.covered_rows - 8 < c.oldest_rows + 1);
        let c = ring.covering(Some(40));
        assert_eq!(c.covered_rows, 47);
        assert!(!c.truncated);
        // Everything retained.
        let all = ring.covering(None);
        assert_eq!(all.covered_rows, 47);
        assert_eq!(all.start, 0);
    }

    #[test]
    fn truncation_flag_requires_eviction() {
        let d = 8;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 2, 1)).expect("new");
        fill(&mut ring, d, 15, 5);
        // Request beyond the stream, nothing evicted yet: not truncated.
        let c = ring.covering(Some(1000));
        assert!(!c.truncated);
        assert_eq!(c.covered_rows, 15);
        fill(&mut ring, d, 15, 6); // forces an eviction
        assert!(ring.evicted_rows() > 0);
        let c = ring.covering(Some(1000));
        assert!(c.truncated);
        assert_eq!(c.covered_rows, ring.retained_rows());
    }

    #[test]
    fn fingerprint_tracks_content() {
        let d = 8;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 4, 4)).expect("new");
        fill(&mut ring, d, 25, 7);
        let before = ring.covering(Some(20)).fingerprint;
        // Same request, untouched ring: stable.
        assert_eq!(ring.covering(Some(20)).fingerprint, before);
        // One more row lands in the active bucket: fingerprint moves.
        ring.push_packed(0b1).expect("push");
        let after = ring.covering(Some(20)).fingerprint;
        assert_ne!(before, after);
        // Different coverings differ.
        assert_ne!(
            ring.covering(Some(1)).fingerprint,
            ring.covering(None).fingerprint
        );
    }

    #[test]
    fn malformed_rows_are_typed_errors() {
        let mut ring = BucketRing::new(8, 2, &ecfg(), wcfg(10, 2, 2)).expect("new");
        assert!(matches!(
            ring.push_packed(1 << 20),
            Err(EngineError::Query(_))
        ));
        assert!(matches!(
            ring.push_packed_batch(&[0, 1 << 20]),
            Err(EngineError::Query(_))
        ));
        assert_eq!(ring.retained_rows(), 0, "malformed batch observes nothing");
        assert!(matches!(
            ring.push_dense(&[0, 1]),
            Err(EngineError::Query(_))
        ));
        assert!(matches!(
            ring.push_dense(&[9; 8]),
            Err(EngineError::Query(_))
        ));
        ring.push_dense(&[1, 0, 1, 0, 1, 0, 1, 0])
            .expect("good row");
        assert_eq!(ring.retained_rows(), 1);
    }

    #[test]
    fn covering_merge_answers_match_ring_content() {
        let d = 10;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(50, 3, 3)).expect("new");
        fill(&mut ring, d, 500, 8);
        let c = ring.covering(None);
        let snap = pfe_engine::Snapshot::from_shards(ring.covering_summaries(&c), c.fingerprint);
        assert_eq!(snap.n(), ring.retained_rows());
        assert_eq!(snap.epoch(), c.fingerprint);
        let cols = ColumnSet::from_mask(d, 0b111).expect("valid");
        assert!(snap.f0(&cols).expect("ok").estimate > 0.0);
    }

    #[test]
    fn persist_roundtrip_is_byte_stable_and_validated() {
        let d = 8;
        let mut ring = BucketRing::new(d, 2, &ecfg(), wcfg(10, 2, 3)).expect("new");
        fill(&mut ring, d, 137, 9);
        let mut enc = Encoder::new();
        ring.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = BucketRing::decode(&mut dec).expect("decode");
        dec.expect_end().expect("fully consumed");
        assert_eq!(back.retained_rows(), ring.retained_rows());
        assert_eq!(back.next_id, ring.next_id);
        assert_eq!(back.buckets_per_tier(), ring.buckets_per_tier());
        assert_eq!(back.covering(Some(60)), ring.covering(Some(60)));
        let mut enc2 = Encoder::new();
        back.encode(&mut enc2);
        assert_eq!(enc2.into_bytes(), bytes, "re-encode is byte-identical");
        // Truncated input is a typed error, not a panic.
        for cut in [0, 8, bytes.len() / 2, bytes.len() - 1] {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(BucketRing::decode(&mut dec).is_err());
        }
    }
}
