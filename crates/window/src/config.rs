//! Sliding-window configuration.

use pfe_engine::EngineError;

/// Shape of the tiered bucket ring behind a
/// [`WindowedEngine`](crate::WindowedEngine).
///
/// The ring is an exponential histogram over row counts: rows land in an
/// *active* bucket that seals at [`bucket_rows`](Self::bucket_rows) rows
/// (tier 0); when a tier exceeds [`tier_cap`](Self::tier_cap) buckets,
/// its two oldest buckets merge into one bucket of the next tier (2×,
/// 4×, … rows); at the top tier ([`max_tiers`](Self::max_tiers)) the
/// oldest bucket is evicted instead. Total retention is therefore about
/// `tier_cap · bucket_rows · (2^max_tiers − 1)` rows, and any `last_n`
/// inside retention is coverable with overshoot smaller than the oldest
/// bucket included.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Rows per tier-0 bucket — the granularity of window boundaries and
    /// the worst-case relative overshoot for small windows.
    pub bucket_rows: u64,
    /// Maximum buckets per tier before a merge (or, at the top tier, an
    /// eviction) restores the cap.
    pub tier_cap: usize,
    /// Number of tiers (bucket sizes `bucket_rows · 2^0 … 2^(max_tiers-1)`).
    pub max_tiers: u32,
    /// Covering-set snapshots kept merged and ready (tiny LRU keyed by
    /// covering-set fingerprint); 0 disables reuse and re-merges per
    /// fingerprint miss.
    pub merged_cache: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self {
            bucket_rows: 1024,
            tier_cap: 4,
            max_tiers: 8,
            merged_cache: 4,
        }
    }
}

impl WindowConfig {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// `BadConfig` naming the offending field.
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.bucket_rows == 0 {
            return Err(EngineError::BadConfig("bucket_rows must be >= 1".into()));
        }
        if self.tier_cap < 2 {
            return Err(EngineError::BadConfig(
                "tier_cap must be >= 2 (a merge needs two buckets)".into(),
            ));
        }
        if self.max_tiers == 0 || self.max_tiers > 32 {
            return Err(EngineError::BadConfig("max_tiers must be in 1..=32".into()));
        }
        // Retention must fit u64. (`checked_shl` only rejects shifts
        // ≥ 64, not value overflow, so the check multiplies instead.)
        if self.checked_retention().is_none() {
            return Err(EngineError::BadConfig(
                "bucket_rows * tier_cap * 2^max_tiers overflows".into(),
            ));
        }
        Ok(())
    }

    /// The retention computation with every step checked: cap buckets per
    /// tier, tier ℓ holds `bucket_rows · 2^ℓ` rows, plus the unsealed
    /// active bucket.
    fn checked_retention(&self) -> Option<u64> {
        let mut per_cap = 0u64;
        for level in 0..self.max_tiers {
            // `1 << level` fits: max_tiers is capped at 32.
            per_cap = per_cap.checked_add(self.bucket_rows.checked_mul(1u64 << level)?)?;
        }
        per_cap
            .checked_mul(self.tier_cap as u64)?
            .checked_add(self.bucket_rows)
    }

    /// Upper bound on rows the ring retains before eviction starts;
    /// saturates at `u64::MAX` for configurations [`validate`](Self::validate)
    /// rejects as overflowing.
    pub fn max_retention(&self) -> u64 {
        self.checked_retention().unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(WindowConfig::default().validate().is_ok());
        // 4 tiers-worth of doubling buckets: 4 * 1024 * 255 + 1024.
        assert_eq!(
            WindowConfig::default().max_retention(),
            4 * 1024 * 255 + 1024
        );
    }

    #[test]
    fn rejects_bad_fields() {
        for cfg in [
            WindowConfig {
                bucket_rows: 0,
                ..Default::default()
            },
            WindowConfig {
                tier_cap: 1,
                ..Default::default()
            },
            WindowConfig {
                max_tiers: 0,
                ..Default::default()
            },
            WindowConfig {
                max_tiers: 33,
                ..Default::default()
            },
            // Regression: value overflow that checked_shl cannot see
            // (shift < 64 but the product exceeds u64).
            WindowConfig {
                bucket_rows: 1 << 60,
                tier_cap: 2,
                max_tiers: 8,
                ..Default::default()
            },
        ] {
            assert!(cfg.validate().is_err(), "{cfg:?} should be rejected");
        }
        // Rejected-as-overflowing configs saturate instead of panicking.
        let huge = WindowConfig {
            bucket_rows: 1 << 60,
            tier_cap: 2,
            max_tiers: 8,
            ..Default::default()
        };
        assert_eq!(huge.max_retention(), u64::MAX);
    }
}
