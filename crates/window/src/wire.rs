//! JSON serialization of [`WindowStats`] — the `window_stats` op of the
//! `serve` wire protocol.

use pfe_engine::Json;

use crate::engine::WindowStats;

/// Serialize [`WindowStats`] as the `{"op":"window_stats"}` response
/// object.
pub fn window_stats_to_json(stats: &WindowStats) -> Json {
    Json::obj([
        ("ok", Json::Bool(true)),
        ("retained_rows", Json::Num(stats.retained_rows as f64)),
        ("active_rows", Json::Num(stats.active_rows as f64)),
        ("evicted_rows", Json::Num(stats.evicted_rows as f64)),
        ("buckets", Json::Num(stats.buckets as f64)),
        (
            "buckets_per_tier",
            Json::Arr(
                stats
                    .buckets_per_tier
                    .iter()
                    .map(|&n| Json::Num(n as f64))
                    .collect(),
            ),
        ),
        ("sealed_buckets", Json::Num(stats.sealed_buckets as f64)),
        ("tier_merges", Json::Num(stats.tier_merges as f64)),
        ("evictions", Json::Num(stats.evictions as f64)),
        (
            "merged_cache_hits",
            Json::Num(stats.merged_cache_hits as f64),
        ),
        (
            "merged_cache_misses",
            Json::Num(stats.merged_cache_misses as f64),
        ),
        ("ring_bytes", Json::Num(stats.ring_bytes as f64)),
        ("cache_hits", Json::Num(stats.cache.hits as f64)),
        ("cache_misses", Json::Num(stats.cache.misses as f64)),
        ("queries_served", Json::Num(stats.queries_served as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WindowConfig, WindowedEngine};
    use pfe_engine::EngineConfig;
    use pfe_stream::gen::uniform_binary;

    #[test]
    fn stats_serialize_and_reparse() {
        let engine = WindowedEngine::start(
            8,
            2,
            EngineConfig {
                sample_t: 128,
                kmv_k: 32,
                ..Default::default()
            },
            WindowConfig {
                bucket_rows: 50,
                tier_cap: 2,
                max_tiers: 3,
                merged_cache: 2,
            },
        )
        .expect("start");
        engine.ingest(&uniform_binary(8, 230, 1)).expect("ingest");
        let json = window_stats_to_json(&engine.window_stats());
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            json.get("retained_rows").and_then(Json::as_f64),
            Some(230.0)
        );
        assert_eq!(json.get("sealed_buckets").and_then(Json::as_f64), Some(4.0));
        let tiers = json
            .get("buckets_per_tier")
            .and_then(Json::as_arr)
            .expect("tier array");
        assert_eq!(tiers.len(), 3);
        assert_eq!(Json::parse(&json.to_string()).expect("reparse"), json);
    }
}
