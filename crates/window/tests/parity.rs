//! Acceptance contracts for the window subsystem:
//!
//! 1. **Suffix parity** — for random streams and random `last_n`, every
//!    windowed answer (`F_0`, frequency, heavy hitters, `ℓ_1` sample,
//!    `F_p` moments) is
//!    **bit-identical** to a fresh `SummarySuite` built over the suffix
//!    the window actually covered, whose length is within one bucket of
//!    `last_n`. The covering-set merge (KMV exact union + lossless
//!    under-full reservoir concatenation) is indistinguishable from
//!    having ingested only the suffix.
//! 2. **Durability parity** — `checkpoint` → `resume` of a
//!    `WindowedEngine` answers windowed queries bit-identically.
//!
//! The reservoirs stay under-full here (`sample_t` above total stream
//! length), which is the regime where reservoir merges are provably
//! lossless; the KMV-backed `F_0` path is exact-union in every regime.

use pfe_core::{FpConfig, SuiteConfig, SummarySuite};
use pfe_engine::{AnswerValue, EngineConfig, Query};
use pfe_row::{BinaryMatrix, ColumnSet, Dataset};
use pfe_window::{WindowConfig, WindowedEngine};
use proptest::prelude::*;

const D: u32 = 10;

/// Both `F_p` families ride every bucket: AMS (p = 2, bit-exact merges)
/// and stable projections (p = 1.5, f64 sums).
fn fp_cfg() -> FpConfig {
    FpConfig {
        orders: vec![2.0, 1.5],
        stable_t: 4,
        ams_groups: 3,
        ams_per_group: 4,
    }
}

fn ecfg(seed: u64) -> EngineConfig {
    EngineConfig {
        sample_t: 8192, // above total rows: under-full, lossless merges
        kmv_k: 64,
        seed,
        fp: Some(fp_cfg()),
        ..Default::default()
    }
}

fn wcfg() -> WindowConfig {
    WindowConfig {
        bucket_rows: 64,
        tier_cap: 3,
        max_tiers: 8, // retention far above test streams: no eviction
        merged_cache: 4,
    }
}

fn windowed_over(rows: &[u64], seed: u64) -> WindowedEngine {
    let engine = WindowedEngine::start(D, 2, ecfg(seed), wcfg()).expect("start");
    engine.push_packed_batch(rows).expect("ingest");
    engine
}

fn suite_over(suffix: &[u64], seed: u64) -> SummarySuite {
    let data = Dataset::Binary(BinaryMatrix::from_rows(D, suffix.to_vec()));
    SummarySuite::build_with_fp(
        &data,
        &SuiteConfig {
            alpha: ecfg(seed).alpha,
            kmv_k: 64,
            sample_t: 8192,
            max_subsets: ecfg(seed).max_subsets,
            seed,
            keep_exact: false,
        },
        &fp_cfg(),
    )
    .expect("build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Windowed answers == fresh suffix builds, bit for bit, all four
    /// statistics, with the covered suffix within one bucket of `last_n`.
    #[test]
    fn prop_windowed_answers_bit_identical_to_fresh_suffix_build(
        rows in proptest::collection::vec(0u64..(1 << D), 200..1500),
        last_n in 1u64..2000,
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
    ) {
        let engine = windowed_over(&rows, seed);
        let total = rows.len() as u64;
        let cols = ColumnSet::from_mask(D, mask).expect("valid");
        let indices = cols.to_indices();

        // Coverage honors the ≤ 1-bucket slack contract.
        let covering = engine.coverage(Some(last_n));
        prop_assert!(!covering.truncated, "no eviction configured");
        prop_assert!(covering.covered_rows >= last_n.min(total));
        if covering.covered_rows > last_n {
            prop_assert!(
                covering.covered_rows - last_n < covering.oldest_rows,
                "slack {} not below oldest bucket {}",
                covering.covered_rows - last_n,
                covering.oldest_rows
            );
        }

        // The reference: a brand-new suite over exactly the covered
        // suffix, as if only those rows had ever been ingested.
        let suffix = &rows[rows.len() - covering.covered_rows as usize..];
        let suite = suite_over(suffix, seed);

        // F_0 (α-net KMV path, including identical net rounding).
        let api = engine
            .query(&Query::over(indices.iter().copied()).f0().window(last_n))
            .expect("ok");
        let direct = suite.f0(&cols).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::F0 { estimate: direct.estimate });
        prop_assert_eq!(api.provenance.answered_on, direct.answered_on);
        let w = api.window.expect("coverage");
        prop_assert_eq!(w.covered_rows, covering.covered_rows);
        prop_assert_eq!(w.requested_rows, last_n);

        // Point frequency (uniform-sample path).
        let pattern = vec![0u16; indices.len()];
        let api = engine
            .query(
                &Query::over(indices.iter().copied())
                    .frequency(pattern.clone())
                    .window(last_n),
            )
            .expect("ok");
        let codec = pfe_row::PatternCodec::new(2, cols.len()).expect("codec");
        let key = codec.encode_pattern(&pattern);
        let direct = suite.sample().frequency(&cols, key).expect("ok");
        prop_assert_eq!(
            api.value,
            AnswerValue::Frequency { estimate: direct, upper_bound: None }
        );
        prop_assert_eq!(
            api.guarantee.epsilon,
            suite.sample().additive_error(pfe_core::bounds::DEFAULT_DELTA)
        );

        // Heavy hitters: identical list, identical order.
        let api = engine
            .query(
                &Query::over(indices.iter().copied())
                    .heavy_hitters(0.05)
                    .window(last_n),
            )
            .expect("ok");
        let direct = suite.sample().heavy_hitters(&cols, 0.05, 1.0, 2.0).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::HeavyHitters { hitters: direct });

        // ℓ_1 sampling: identical draws for identical (k, seed) — this is
        // the order-sensitive statistic, so it proves the merged sample
        // *is* the suffix in stream order.
        let api = engine
            .query(
                &Query::over(indices.iter().copied())
                    .l1_sample(8)
                    .with_seed(3)
                    .window(last_n),
            )
            .expect("ok");
        let direct = suite.sample().l1_sample(&cols, 8, 3).expect("ok");
        prop_assert_eq!(api.value, AnswerValue::L1Sample { patterns: direct });

        // F_p, AMS family (p = 2): counter sums are i64, so the
        // covering-set merge is bit-identical to the fresh suffix build.
        let api = engine
            .query(&Query::over(indices.iter().copied()).fp(2.0).window(last_n))
            .expect("ok");
        let direct = suite.fp(&cols, 2.0).expect("ok");
        let AnswerValue::Fp { estimate } = api.value else {
            panic!("expected Fp answer, got {:?}", api.value);
        };
        prop_assert_eq!(estimate.to_bits(), direct.estimate.to_bits());
        prop_assert_eq!(api.provenance.answered_on, direct.answered_on);

        // F_p, stable family (p = 1.5): the merge reassociates f64 sums
        // across bucket boundaries, so equality holds up to ulps.
        let api = engine
            .query(&Query::over(indices.iter().copied()).fp(1.5).window(last_n))
            .expect("ok");
        let direct = suite.fp(&cols, 1.5).expect("ok");
        let AnswerValue::Fp { estimate } = api.value else {
            panic!("expected Fp answer, got {:?}", api.value);
        };
        prop_assert!(
            (estimate - direct.estimate).abs() <= 1e-9 * direct.estimate.abs().max(1.0),
            "stable F_1.5 diverged beyond reassociation slack: {} vs {}",
            estimate,
            direct.estimate
        );
        prop_assert_eq!(api.provenance.answered_on, direct.answered_on);
    }

    /// checkpoint → resume answers windowed queries bit-identically.
    #[test]
    fn prop_checkpoint_resume_windowed_answers_bit_identical(
        rows in proptest::collection::vec(0u64..(1 << D), 200..900),
        last_ns in proptest::collection::vec(1u64..1200, 1..4),
        mask in 1u64..(1 << D),
        seed in 0u64..1000,
    ) {
        let engine = windowed_over(&rows, seed);
        let dir = std::env::temp_dir().join("pfe-window-parity");
        std::fs::create_dir_all(&dir).expect("tmpdir");
        let path = dir.join(format!("ring-{seed}-{}-{mask}.pfew", rows.len()));
        engine.checkpoint(&path).expect("checkpoint");
        let resumed = WindowedEngine::resume(&path, ecfg(seed)).expect("resume");
        std::fs::remove_file(&path).ok();

        let indices = ColumnSet::from_mask(D, mask).expect("valid").to_indices();
        for &last_n in &last_ns {
            let queries = vec![
                Query::over(indices.iter().copied()).f0().window(last_n),
                Query::over(indices.iter().copied()).heavy_hitters(0.05).window(last_n),
                Query::over(indices.iter().copied()).l1_sample(8).with_seed(7).window(last_n),
                Query::over(indices.iter().copied())
                    .frequency(vec![0u16; indices.len()])
                    .window(last_n),
                // Resume rebuilds the identical merge structure, so both
                // F_p families must come back bit-exact.
                Query::over(indices.iter().copied()).fp(2.0).window(last_n),
                Query::over(indices.iter().copied()).fp(1.5).window(last_n),
            ];
            let a = engine.query_batch(&queries);
            let b = resumed.query_batch(&queries);
            for (x, y) in a.iter().zip(b.iter()) {
                let (x, y) = (x.as_ref().expect("ok"), y.as_ref().expect("ok"));
                prop_assert_eq!(&x.value, &y.value);
                prop_assert_eq!(x.guarantee, y.guarantee);
                prop_assert_eq!(x.provenance, y.provenance);
                prop_assert_eq!(x.epoch, y.epoch, "fingerprints must survive resume");
                prop_assert_eq!(x.window, y.window);
            }
        }

        // The resumed ring keeps ingesting: push the same tail to both
        // and they stay in lockstep.
        let tail: Vec<u64> = (0..100).map(|i| (i * 37) % (1 << D)).collect();
        engine.push_packed_batch(&tail).expect("push");
        resumed.push_packed_batch(&tail).expect("push");
        let q = Query::over(indices.iter().copied()).f0().window(150);
        prop_assert_eq!(
            engine.query(&q).expect("ok").value,
            resumed.query(&q).expect("ok").value
        );
    }
}
