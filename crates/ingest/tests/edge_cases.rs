//! CSV edge-case suite: every way a file can be malformed is a typed
//! error with line/column provenance — never a panic, never a silent
//! skip — and every accepted file parses identically to a naive
//! row-at-a-time reference reader regardless of chunk boundaries.

use std::io::Cursor;

use pfe_ingest::{FileIngester, IngestError, IngestOptions, ParseErrorKind, Schema, VecSink};
use proptest::prelude::*;

fn ingest_str(
    text: &[u8],
    opts: IngestOptions,
) -> Result<(VecSink, pfe_ingest::IngestReport), IngestError> {
    FileIngester::new(opts).ingest_reader_with(Cursor::new(text.to_vec()), "test.csv", |_| {
        Ok(VecSink::default())
    })
}

fn parse_error(e: IngestError) -> (u64, u32, ParseErrorKind) {
    match e {
        IngestError::Parse {
            line, column, kind, ..
        } => (line, column, kind),
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn quoted_fields_and_crlf() {
    let (sink, report) = ingest_str(
        b"a,b,c\r\n\"1\",0,1\r\n0,\"1\",\"1\"\r\n",
        IngestOptions::default(),
    )
    .expect("quoted CRLF input parses");
    assert_eq!(report.rows, 2);
    assert_eq!(report.schema.columns, vec!["a", "b", "c"]);
    assert_eq!(sink.packed, vec![0b101, 0b110]);
}

#[test]
fn missing_trailing_newline() {
    let (sink, report) =
        ingest_str(b"a,b\n1,0\n0,1", IngestOptions::default()).expect("last line still a row");
    assert_eq!(report.rows, 2);
    assert_eq!(sink.packed, vec![0b01, 0b10]);
}

#[test]
fn ragged_rows_carry_provenance() {
    let err = ingest_str(b"a,b,c\n1,0,1\n1,0\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (3, 2, ParseErrorKind::Ragged));
    let err = ingest_str(b"a,b\n1,0,1\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (2, 3, ParseErrorKind::Ragged));
    // A blank interior line is ragged too, flagged at the row level.
    let err = ingest_str(b"a,b\n1,0\n\n0,1\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (3, 0, ParseErrorKind::Ragged));
}

#[test]
fn empty_inputs_are_typed() {
    assert!(matches!(
        ingest_str(b"", IngestOptions::default()),
        Err(IngestError::EmptyInput { .. })
    ));
    // Header but no data rows.
    assert!(matches!(
        ingest_str(b"a,b\n", IngestOptions::default()),
        Err(IngestError::EmptyInput { .. })
    ));
}

#[test]
fn non_utf8_bytes_are_typed() {
    // In a header: the column name must be text.
    let err = ingest_str(b"a,\xff\xfe\n1,0\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err).2, ParseErrorKind::Utf8);
    // In a data field: flagged with exact row/field position.
    let err = ingest_str(b"a,b\n1,\xc3\xa9\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (2, 2, ParseErrorKind::Utf8));
}

#[test]
fn bad_digits_and_out_of_range() {
    let err = ingest_str(b"a,b\n1,x\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (2, 2, ParseErrorKind::BadDigit));
    let err = ingest_str(b"a,b\n1,7\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (2, 2, ParseErrorKind::OutOfRange));
    let err = ingest_str(
        b"a\n9\n",
        IngestOptions {
            alphabet: 9,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(parse_error(err), (2, 1, ParseErrorKind::OutOfRange));
}

#[test]
fn quote_errors_are_typed() {
    let err = ingest_str(b"a,b\n\"1,0\n", IngestOptions::default()).unwrap_err();
    assert!(matches!(
        parse_error(err).2,
        ParseErrorKind::Quote | ParseErrorKind::BadDigit
    ));
    let err = ingest_str(b"a,b\n\"1\"x,0\n", IngestOptions::default()).unwrap_err();
    assert_eq!(parse_error(err), (2, 1, ParseErrorKind::Quote));
}

#[test]
fn reject_budget_skips_and_counts() {
    let opts = IngestOptions {
        max_rejects: 2,
        ..Default::default()
    };
    let (sink, report) =
        ingest_str(b"a,b\n1,0\nbad,row\n0,1\n1,1,1\n", opts).expect("under budget");
    assert_eq!(report.rows, 2);
    assert_eq!(report.rejected, 2);
    assert_eq!(sink.packed, vec![0b01, 0b10]);
    // One over budget: the typed error comes back.
    let opts = IngestOptions {
        max_rejects: 1,
        ..Default::default()
    };
    let err = ingest_str(b"a,b\n1,0\nbad,row\n0,1\n1,1,1\n", opts).unwrap_err();
    assert_eq!(parse_error(err).0, 5);
}

#[test]
fn header_validation_against_declared_columns() {
    let opts = IngestOptions {
        columns: Some(vec!["a".into(), "b".into()]),
        ..Default::default()
    };
    assert!(ingest_str(b"a,b\n1,0\n", opts.clone()).is_ok());
    let err = ingest_str(b"a,c\n1,0\n", opts).unwrap_err();
    assert!(matches!(err, IngestError::Schema(_)), "{err}");
}

#[test]
fn headerless_modes() {
    // Declared columns fix the dimension.
    let opts = IngestOptions {
        has_header: false,
        columns: Some(vec!["x".into(), "y".into()]),
        ..Default::default()
    };
    let (sink, report) = ingest_str(b"1,0\n0,1\n", opts).expect("headerless");
    assert_eq!(report.rows, 2);
    assert_eq!(report.schema.columns, vec!["x", "y"]);
    assert_eq!(sink.packed, vec![0b01, 0b10]);
    // Undeclared: the first row fixes the dimension, names synthesize.
    let opts = IngestOptions {
        has_header: false,
        ..Default::default()
    };
    let (sink, report) = ingest_str(b"1,0,1\n0,1,1\n", opts).expect("headerless undeclared");
    assert_eq!(report.rows, 2);
    assert_eq!(report.schema, Schema::synthetic(3, 2));
    assert_eq!(sink.packed, vec![0b101, 0b110]);
}

#[test]
fn dense_alphabets_flatten_row_major() {
    let opts = IngestOptions {
        alphabet: 10,
        ..Default::default()
    };
    let (sink, report) = ingest_str(b"a,b\n3,7\n9,0\n", opts).expect("dense");
    assert_eq!(report.rows, 2);
    assert!(sink.packed.is_empty());
    assert_eq!(sink.dense, vec![3, 7, 9, 0]);
}

#[test]
fn chunk_boundaries_never_change_the_answer() {
    // Torture the reader with a chunk size smaller than any line: every
    // line crosses a read boundary, and the result must be identical.
    let text: Vec<u8> = {
        let mut t = b"a,b,c\n".to_vec();
        for i in 0..500u64 {
            t.extend_from_slice(
                format!("{},{},{}\n", i & 1, (i >> 1) & 1, (i >> 2) & 1).as_bytes(),
            );
        }
        t
    };
    let (whole, _) = ingest_str(&text, IngestOptions::default()).expect("one-shot");
    for chunk_bytes in [1, 3, 7, 64] {
        let opts = IngestOptions {
            chunk_bytes,
            chunk_rows: 13,
            ..Default::default()
        };
        let (pieces, report) = ingest_str(&text, opts).expect("chunked");
        assert_eq!(pieces, whole, "chunk_bytes={chunk_bytes} changed the parse");
        assert_eq!(report.rows, 500);
    }
}

/// The naive row-at-a-time reference: String splitting, per-row allocs —
/// everything the columnar path avoids, kept here as its ground truth.
fn naive_reference(text: &str, q: u32, delim: char) -> Result<Vec<Vec<u16>>, String> {
    let mut rows = Vec::new();
    let mut d: Option<usize> = None;
    for line in text.lines() {
        let line = line.strip_suffix('\r').unwrap_or(line);
        let mut row = Vec::new();
        for field in line.split(delim) {
            let field = field
                .strip_prefix('"')
                .and_then(|f| f.strip_suffix('"'))
                .unwrap_or(field);
            let v: u16 = field.parse().map_err(|e| format!("{e}"))?;
            if v as u32 >= q {
                return Err(format!("{v} out of range"));
            }
            row.push(v);
        }
        if *d.get_or_insert(row.len()) != row.len() {
            return Err("ragged".into());
        }
        rows.push(row);
    }
    Ok(rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random well-formed numeric CSV: the columnar parser agrees with
    /// the naive reference value-for-value, under random quoting, CRLF,
    /// delimiter, trailing-newline presence, and chunk size.
    #[test]
    fn prop_columnar_matches_naive(
        flat in proptest::collection::vec(0u16..9, 24..300),
        d in 1usize..6,
        crlf in 0u8..2,
        tab in 0u8..2,
        trailing in 0u8..2,
        chunk_bytes in 1usize..40,
    ) {
        let q = 9u32;
        let rows: Vec<&[u16]> = flat.chunks_exact(d).collect();
        prop_assume!(!rows.is_empty());
        let delim = if tab == 1 { '\t' } else { ',' };
        let eol = if crlf == 1 { "\r\n" } else { "\n" };
        let mut text = String::new();
        for (i, row) in rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(j, v)| if (i * 7 + j * 3) % 5 == 0 { format!("\"{v}\"") } else { v.to_string() })
                .collect();
            text.push_str(&line.join(&delim.to_string()));
            if i + 1 < rows.len() || trailing == 1 {
                text.push_str(eol);
            }
        }
        let expect: Vec<u16> = naive_reference(&text, q, delim)
            .expect("reference accepts generated input")
            .into_iter()
            .flatten()
            .collect();
        let opts = IngestOptions {
            has_header: false,
            alphabet: q,
            delimiter: Some(delim as u8),
            chunk_bytes,
            chunk_rows: 17,
            ..Default::default()
        };
        let (sink, report) = ingest_str(text.as_bytes(), opts).expect("columnar accepts");
        prop_assert_eq!(report.rows, rows.len() as u64);
        prop_assert_eq!(sink.dense, expect);
    }
}
