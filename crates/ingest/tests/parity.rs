//! The acceptance-parity suite: answers computed from a file ingested
//! through the columnar chunked path are **bit-identical** to answers
//! from the very same rows pushed through the Rust batch API. Chunk
//! boundaries only decide when channel messages are sent, never the
//! per-shard arrival order, so the merged summaries — and therefore
//! every estimate, guarantee, and sampled pattern — must match exactly.

use pfe_engine::{Engine, EngineConfig, Query};
use pfe_ingest::{FileIngester, IngestError, IngestOptions};

fn cfg() -> EngineConfig {
    EngineConfig {
        shards: 3,
        sample_t: 256,
        kmv_k: 64,
        batch_rows: 128,
        seed: 0xfeed,
        ..Default::default()
    }
}

fn engine_for(d: u32, q: u32) -> Engine {
    Engine::start(d, q, cfg()).expect("engine start")
}

/// Deterministic pseudo-random packed rows (splitmix-style walk).
fn packed_rows(d: u32, n: usize, mut state: u64) -> Vec<u64> {
    let mask = (1u64 << d) - 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb5);
            (state >> 17) & mask
        })
        .collect()
}

fn write_packed_csv(path: &std::path::Path, d: u32, rows: &[u64]) {
    let mut text = String::new();
    text.push_str(
        &(0..d)
            .map(|i| format!("c{i}"))
            .collect::<Vec<_>>()
            .join(","),
    );
    text.push('\n');
    for &row in rows {
        let line: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(path, text).expect("write csv");
}

/// The probe battery: one of each statistic shape over a few masks.
fn battery(d: u32) -> Vec<Query> {
    let full: Vec<u32> = (0..d.min(6)).collect();
    let pattern = vec![1u16, 0, 1];
    vec![
        Query::over(full.clone()).f0(),
        Query::over([0, 2, 4]).f0(),
        Query::over([0, 1, 2]).frequency(pattern.clone()),
        Query::over([1, 2, 3]).heavy_hitters(0.05),
        Query::over(full).l1_sample(8),
    ]
}

#[test]
fn file_ingest_is_bit_identical_to_api_push_packed() {
    let d = 12u32;
    let rows = packed_rows(d, 3000, 0xabcdef);
    let dir = std::env::temp_dir().join("pfe-ingest-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("packed.csv");
    write_packed_csv(&path, d, &rows);

    // Side A: the file, through the chunked columnar ingester — with a
    // chunk size chosen to split the file mid-stream many times.
    let opts = IngestOptions {
        chunk_rows: 257,
        chunk_bytes: 4096,
        ..Default::default()
    };
    let (file_engine, report) = FileIngester::new(opts)
        .ingest_path_with(&path, |schema| {
            assert_eq!(schema.dimension(), d);
            Engine::start(schema.dimension(), schema.alphabet, cfg())
                .map_err(|e| IngestError::Sink(e.to_string()))
        })
        .expect("file ingest");
    assert_eq!(report.rows, 3000);
    assert_eq!(report.rejected, 0);

    // Side B: the same rows, one Rust API batch call.
    let api_engine = engine_for(d, 2);
    api_engine.push_packed_batch(&rows).expect("api push");

    file_engine.refresh().expect("refresh");
    api_engine.refresh().expect("refresh");
    for q in battery(d) {
        let a = file_engine.query(&q).expect("file answer");
        let b = api_engine.query(&q).expect("api answer");
        assert_eq!(a.value, b.value, "value diverged for {q:?}");
        assert_eq!(a.guarantee, b.guarantee, "guarantee diverged for {q:?}");
    }

    file_engine.shutdown().ok();
    api_engine.shutdown().ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn file_ingest_is_bit_identical_to_api_push_dense() {
    let (d, q) = (5u32, 6u32);
    // Deterministic dense rows.
    let mut state = 0x5eed_u64;
    let flat: Vec<u16> = (0..2000 * d as usize)
        .map(|_| {
            state = state.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb5);
            ((state >> 23) % q as u64) as u16
        })
        .collect();
    let dir = std::env::temp_dir().join("pfe-ingest-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("dense.csv");
    let mut text = String::from("v0,v1,v2,v3,v4\n");
    for row in flat.chunks_exact(d as usize) {
        let line: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(&path, text).unwrap();

    let opts = IngestOptions {
        alphabet: q,
        chunk_rows: 193,
        chunk_bytes: 2048,
        ..Default::default()
    };
    let (file_engine, report) = FileIngester::new(opts)
        .ingest_path_with(&path, |schema| {
            Engine::start(schema.dimension(), schema.alphabet, cfg())
                .map_err(|e| IngestError::Sink(e.to_string()))
        })
        .expect("file ingest");
    assert_eq!(report.rows, 2000);

    let api_engine = engine_for(d, q);
    api_engine.push_dense_batch(&flat).expect("api push");

    file_engine.refresh().expect("refresh");
    api_engine.refresh().expect("refresh");
    let queries = vec![
        Query::over([0, 1, 2, 3, 4]).f0(),
        Query::over([0, 2]).f0(),
        Query::over([1, 3]).frequency(vec![2, 4]),
        Query::over([0, 1]).heavy_hitters(0.05),
    ];
    for q in queries {
        let a = file_engine.query(&q).expect("file answer");
        let b = api_engine.query(&q).expect("api answer");
        assert_eq!(a.value, b.value, "value diverged for {q:?}");
        assert_eq!(a.guarantee, b.guarantee, "guarantee diverged for {q:?}");
    }

    file_engine.shutdown().ok();
    api_engine.shutdown().ok();
    std::fs::remove_file(&path).ok();
}

#[test]
fn chunk_size_never_changes_answers() {
    // Same file, three very different chunk geometries → identical
    // snapshots (stats n and one probe answer compared exactly).
    let d = 10u32;
    let rows = packed_rows(d, 1200, 0x1234);
    let dir = std::env::temp_dir().join("pfe-ingest-parity");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chunks.csv");
    write_packed_csv(&path, d, &rows);
    let probe = Query::over([0, 1, 2, 3]).f0();
    let mut answers = Vec::new();
    for (chunk_rows, chunk_bytes) in [(1, 64), (100, 1000), (100_000, 1 << 20)] {
        let opts = IngestOptions {
            chunk_rows,
            chunk_bytes,
            ..Default::default()
        };
        let (engine, _) = FileIngester::new(opts)
            .ingest_path_with(&path, |s| {
                Engine::start(s.dimension(), s.alphabet, cfg())
                    .map_err(|e| IngestError::Sink(e.to_string()))
            })
            .expect("ingest");
        engine.refresh().expect("refresh");
        answers.push(engine.query(&probe).expect("answer"));
        engine.shutdown().ok();
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    std::fs::remove_file(&path).ok();
}
