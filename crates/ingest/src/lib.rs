#![deny(missing_docs)]
//! `pfe-ingest` — zero-dependency columnar CSV/TSV file ingest for the
//! projected-frequency engine.
//!
//! The paper's summaries consume rows; real deployments have files. This
//! crate is the bridge, built for the GB/s-class target in ROADMAP item
//! 2: input is chunk-read (1 MiB at a time), split at line boundaries,
//! parsed byte-level with **no per-row allocation** (packed schemas
//! bit-pack straight into a `Vec<u64>`, general alphabets append into
//! one flat `Vec<u16>`), and handed to the engine in `chunk_rows`-sized
//! batches over the allocation-free `push_packed_batch` /
//! `push_dense_batch` surfaces.
//!
//! Everything that can be wrong with a file is a typed [`IngestError`]
//! naming the 1-based line and field — ragged rows, bad digits,
//! out-of-alphabet values, quote mistakes, non-UTF-8 header bytes —
//! never a panic: the file boundary is a trust boundary exactly like
//! the wire protocol. A caller that prefers throughput over strictness
//! sets [`IngestOptions::max_rejects`] and gets counted skips instead.
//!
//! ```
//! use pfe_engine::{Engine, EngineConfig, Query};
//! use pfe_ingest::{FileIngester, IngestOptions};
//!
//! let dir = std::env::temp_dir().join("pfe-ingest-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("rows.csv");
//! std::fs::write(&path, "a,b,c\n1,0,1\n0,1,1\n1,0,1\n").unwrap();
//!
//! let ingester = FileIngester::new(IngestOptions::default());
//! // The sink factory runs once the schema is known, so the engine's
//! // dimension comes from the file itself — one pass, no pre-scan.
//! let (engine, report) = ingester
//!     .ingest_path_with(&path, |schema| {
//!         Engine::start(schema.dimension(), schema.alphabet, EngineConfig::default())
//!             .map_err(|e| pfe_ingest::IngestError::Sink(e.to_string()))
//!     })
//!     .unwrap();
//! assert_eq!(report.rows, 3);
//! engine.refresh().unwrap(); // publish a snapshot for querying
//! let ans = engine.query(&Query::over([0, 1, 2]).f0()).unwrap();
//! assert!(ans.estimate().unwrap() > 0.0);
//! # engine.shutdown().ok();
//! # std::fs::remove_file(&path).ok();
//! ```
//!
//! Observability: construct with [`FileIngester::with_recorder`] and the
//! run reports `ingest_rows` / `ingest_bytes` / `ingest_chunks` /
//! `ingest_rejected_rows` counters plus an `ingest_chunk_latency_ns`
//! histogram into the shared registry — the same one the server's
//! Prometheus endpoint renders.

pub mod error;
pub mod parser;
pub mod reader;
pub mod schema;
pub mod sink;

pub use error::{IngestError, ParseErrorKind};
pub use parser::RowParser;
pub use reader::{FileIngester, IngestReport};
pub use schema::{IngestOptions, Schema};
pub use sink::{RowSink, VecSink};
