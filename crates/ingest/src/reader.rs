//! The chunked file ingester: bytes in, engine-sized chunks out.
//!
//! The pipeline is allocation-disciplined end to end:
//!
//! ```text
//!   file ──1 MiB reads──▶ pending byte buffer
//!        split at the last '\n' (partial line carries over)
//!        ──lines──▶ RowParser (byte-level, no per-row alloc)
//!        ──append──▶ chunk buffer  (Vec<u64> packed / flat Vec<u16> dense)
//!        every `chunk_rows` rows ──▶ RowSink::push_*_rows (one call per chunk)
//! ```
//!
//! Schema discovery happens on the first line (header, explicit
//! `--columns` spec, or synthesized names from the first row's field
//! count), after which the caller-supplied sink factory runs exactly
//! once — that is how an `Engine` whose dimension depends on the file
//! can be built mid-ingest without a second pass.
//!
//! Progress and throughput flow through the shared `pfe-obs`
//! [`Recorder`]: `ingest_rows`, `ingest_bytes`, `ingest_chunks`,
//! `ingest_rejected_rows` counters and an `ingest_chunk_latency_ns`
//! histogram around every sink hand-off.

use std::io::Read;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pfe_obs::{Counter, Histogram, Recorder, Span, TraceHandle};

use crate::error::IngestError;
use crate::parser::{split_fields, RowParser};
use crate::schema::{IngestOptions, Schema};
use crate::sink::RowSink;

/// What one ingest run did, for reports and logs.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The schema the run discovered or was given.
    pub schema: Schema,
    /// Rows delivered to the sink.
    pub rows: u64,
    /// Bytes read from the input.
    pub bytes: u64,
    /// Chunks handed to the sink.
    pub chunks: u64,
    /// Malformed rows skipped under the reject budget.
    pub rejected: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
}

impl IngestReport {
    /// Rows per second over the whole run.
    pub fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Megabytes (1e6 bytes) per second over the whole run.
    pub fn mb_per_sec(&self) -> f64 {
        self.bytes as f64 / 1e6 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// The recorder-backed instruments one ingester reports through.
struct Instruments {
    rows: Arc<Counter>,
    bytes: Arc<Counter>,
    chunks: Arc<Counter>,
    rejected: Arc<Counter>,
    chunk_latency: Arc<Histogram>,
}

impl Instruments {
    fn from_recorder(r: &Recorder) -> Self {
        Self {
            rows: r.counter("ingest_rows"),
            bytes: r.counter("ingest_bytes"),
            chunks: r.counter("ingest_chunks"),
            rejected: r.counter("ingest_rejected_rows"),
            chunk_latency: r.histogram("ingest_chunk_latency_ns"),
        }
    }
}

/// The chunked CSV/TSV ingester. One instance is reusable across files.
pub struct FileIngester {
    opts: IngestOptions,
    ins: Instruments,
    trace: TraceHandle,
}

impl FileIngester {
    /// An ingester with detached instruments (not in any registry).
    pub fn new(opts: IngestOptions) -> Self {
        Self::with_recorder(opts, &Recorder::new())
    }

    /// An ingester reporting through `recorder` — pass the engine's (or
    /// dispatcher's) recorder so ingest series land in the same registry
    /// the Prometheus endpoint scrapes.
    pub fn with_recorder(opts: IngestOptions, recorder: &Recorder) -> Self {
        Self {
            ins: Instruments::from_recorder(recorder),
            opts,
            trace: TraceHandle::disabled(),
        }
    }

    /// Record this ingester's chunk hand-offs as spans of `trace` (one
    /// `ingest_chunk` span per sink push, carrying the chunk index and
    /// row count). A disabled handle — the default — records nothing.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceHandle) -> Self {
        self.trace = trace;
        self
    }

    /// The options this ingester runs with.
    pub fn options(&self) -> &IngestOptions {
        &self.opts
    }

    /// Ingest `path`, building the sink from the discovered schema.
    ///
    /// `make_sink` runs exactly once, after the schema is known and
    /// before the first data chunk — the one-pass answer to "the engine
    /// needs `d`, but `d` comes from the file".
    ///
    /// # Errors
    /// Any [`IngestError`]; the input is never partially re-read.
    pub fn ingest_path_with<S, F, P>(
        &self,
        path: P,
        make_sink: F,
    ) -> Result<(S, IngestReport), IngestError>
    where
        S: RowSink,
        F: FnOnce(&Schema) -> Result<S, IngestError>,
        P: AsRef<Path>,
    {
        let label = path.as_ref().display().to_string();
        let file = std::fs::File::open(path.as_ref()).map_err(|e| IngestError::Io {
            path: label.clone(),
            detail: e.to_string(),
        })?;
        self.ingest_reader_with(file, &label, make_sink)
    }

    /// Ingest `path` into an existing sink (shape must already match).
    ///
    /// # Errors
    /// Any [`IngestError`].
    pub fn ingest_into<S, P>(&self, path: P, sink: S) -> Result<(S, IngestReport), IngestError>
    where
        S: RowSink,
        P: AsRef<Path>,
    {
        self.ingest_path_with(path, |_| Ok(sink))
    }

    /// Ingest from any reader (stdin, a socket, a test cursor). `label`
    /// names the source in errors and picks the inferred delimiter.
    ///
    /// # Errors
    /// Any [`IngestError`].
    pub fn ingest_reader_with<R, S, F>(
        &self,
        mut input: R,
        label: &str,
        make_sink: F,
    ) -> Result<(S, IngestReport), IngestError>
    where
        R: Read,
        S: RowSink,
        F: FnOnce(&Schema) -> Result<S, IngestError>,
    {
        let start = Instant::now();
        let delim = self.opts.delimiter_for(label);
        let mut run = Run {
            opts: &self.opts,
            ins: &self.ins,
            trace: &self.trace,
            label,
            delim,
            make_sink: Some(make_sink),
            sink: None,
            schema: None,
            parser: None,
            packed: Vec::new(),
            dense: Vec::new(),
            lineno: 0,
            rows: 0,
            bytes: 0,
            chunks: 0,
            rejected: 0,
        };
        let chunk_bytes = self.opts.chunk_bytes.max(1);
        let mut pending: Vec<u8> = Vec::new();
        loop {
            let old = pending.len();
            pending.resize(old + chunk_bytes, 0);
            let n = input
                .read(&mut pending[old..])
                .map_err(|e| IngestError::Io {
                    path: label.to_string(),
                    detail: e.to_string(),
                })?;
            pending.truncate(old + n);
            if n == 0 {
                break;
            }
            run.bytes += n as u64;
            self.ins.bytes.add(n as u64);
            if let Some(pos) = pending.iter().rposition(|&b| b == b'\n') {
                for line in pending[..pos].split(|&b| b == b'\n') {
                    run.line(line)?;
                }
                pending.drain(..=pos);
            }
        }
        // A final line without a trailing newline is still a row.
        if !pending.is_empty() {
            run.line(&pending)?;
        }
        run.flush()?;
        let schema = match run.schema.take() {
            Some(s) => s,
            None => {
                return Err(IngestError::EmptyInput {
                    path: label.to_string(),
                })
            }
        };
        if run.rows == 0 && run.rejected == 0 {
            return Err(IngestError::EmptyInput {
                path: label.to_string(),
            });
        }
        let sink = run.sink.take().expect("schema implies sink was built");
        let report = IngestReport {
            schema,
            rows: run.rows,
            bytes: run.bytes,
            chunks: run.chunks,
            rejected: run.rejected,
            elapsed: start.elapsed(),
        };
        Ok((sink, report))
    }
}

/// Per-run mutable state, split out so the read loop can borrow the
/// pending buffer immutably while lines mutate everything else.
struct Run<'a, S, F> {
    opts: &'a IngestOptions,
    ins: &'a Instruments,
    trace: &'a TraceHandle,
    label: &'a str,
    delim: u8,
    make_sink: Option<F>,
    sink: Option<S>,
    schema: Option<Schema>,
    parser: Option<RowParser>,
    packed: Vec<u64>,
    dense: Vec<u16>,
    lineno: u64,
    rows: u64,
    bytes: u64,
    chunks: u64,
    rejected: u64,
}

impl<S, F> Run<'_, S, F>
where
    S: RowSink,
    F: FnOnce(&Schema) -> Result<S, IngestError>,
{
    fn line(&mut self, line: &[u8]) -> Result<(), IngestError> {
        self.lineno += 1;
        if self.schema.is_none() && self.first_line(line)? {
            return Ok(());
        }
        let (packed_mode, d) = {
            let s = self.schema.as_ref().expect("schema set by first_line");
            (s.packed(), s.dimension() as usize)
        };
        let lineno = self.lineno;
        let result = {
            let parser = self.parser.as_ref().expect("schema implies parser");
            if packed_mode {
                parser
                    .parse_packed(line, lineno)
                    .map(|row| self.packed.push(row))
            } else {
                parser.parse_dense_into(line, lineno, &mut self.dense)
            }
        };
        match result {
            Ok(()) => {
                self.rows += 1;
                if self.packed.len() >= self.opts.chunk_rows.max(1)
                    || self.dense.len() >= self.opts.chunk_rows.max(1) * d
                {
                    self.flush()?;
                }
                Ok(())
            }
            Err(e) => {
                if self.rejected < self.opts.max_rejects {
                    self.rejected += 1;
                    self.ins.rejected.inc();
                    Ok(())
                } else {
                    Err(e)
                }
            }
        }
    }

    /// Discover the schema from the first line; returns whether the line
    /// was a header (consumed) rather than data.
    fn first_line(&mut self, line: &[u8]) -> Result<bool, IngestError> {
        let schema = if self.opts.has_header {
            let fields = split_fields(line, self.delim, self.lineno)?;
            let mut columns = Vec::with_capacity(fields.len());
            for (i, raw) in fields.into_iter().enumerate() {
                let name = String::from_utf8(raw).map_err(|_| IngestError::Parse {
                    line: self.lineno,
                    column: i as u32 + 1,
                    kind: crate::error::ParseErrorKind::Utf8,
                    detail: "header name is not valid UTF-8".into(),
                })?;
                columns.push(name);
            }
            if let Some(expected) = &self.opts.columns {
                if *expected != columns {
                    return Err(IngestError::Schema(format!(
                        "header {columns:?} does not match declared columns {expected:?} in {}",
                        self.label
                    )));
                }
            }
            Schema {
                columns,
                alphabet: self.opts.alphabet,
            }
        } else if let Some(columns) = &self.opts.columns {
            Schema {
                columns: columns.clone(),
                alphabet: self.opts.alphabet,
            }
        } else {
            // Headerless and undeclared: the first data row fixes `d`.
            let fields = split_fields(line, self.delim, self.lineno)?;
            Schema::synthetic(fields.len() as u32, self.opts.alphabet)
        };
        schema.validate()?;
        let make = self.make_sink.take().expect("first_line runs once");
        self.sink = Some(make(&schema)?);
        self.parser = Some(RowParser::new(&schema, self.delim));
        let consumed = self.opts.has_header;
        self.schema = Some(schema);
        Ok(consumed)
    }

    /// Hand buffered rows to the sink as one chunk.
    fn flush(&mut self) -> Result<(), IngestError> {
        let (Some(sink), Some(schema)) = (self.sink.as_mut(), self.schema.as_ref()) else {
            return Ok(());
        };
        let d = schema.dimension();
        if !self.packed.is_empty() {
            let span = Span::on(Arc::clone(&self.ins.chunk_latency));
            let mut chunk_span = self.trace.span("ingest_chunk");
            if chunk_span.is_enabled() {
                chunk_span.attr("chunk", self.chunks);
                chunk_span.attr("rows", self.packed.len());
                chunk_span.attr("format", "packed");
            }
            sink.push_packed_rows(&self.packed)?;
            drop(chunk_span);
            drop(span);
            self.ins.rows.add(self.packed.len() as u64);
            self.packed.clear();
            self.chunks += 1;
            self.ins.chunks.inc();
        }
        if !self.dense.is_empty() {
            let span = Span::on(Arc::clone(&self.ins.chunk_latency));
            let mut chunk_span = self.trace.span("ingest_chunk");
            if chunk_span.is_enabled() {
                chunk_span.attr("chunk", self.chunks);
                chunk_span.attr("rows", self.dense.len() / d.max(1) as usize);
                chunk_span.attr("format", "dense");
            }
            sink.push_dense_rows(d, &self.dense)?;
            drop(chunk_span);
            drop(span);
            self.ins.rows.add(self.dense.len() as u64 / d.max(1) as u64);
            self.dense.clear();
            self.chunks += 1;
            self.ins.chunks.inc();
        }
        Ok(())
    }
}
