//! Schema discovery and ingest options.

use crate::error::IngestError;

/// The discovered (or declared) shape of the input: one named column per
/// stream dimension, over alphabet `[0, Q)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    /// Column names, in file order. One per stream dimension.
    pub columns: Vec<String>,
    /// Alphabet size `Q`: every value must lie in `[0, Q)`.
    pub alphabet: u32,
}

impl Schema {
    /// The stream dimension `d` (number of columns).
    pub fn dimension(&self) -> u32 {
        self.columns.len() as u32
    }

    /// Whether this schema takes the packed binary fast path
    /// (`Q = 2`, `d ≤ 64`: one row is one `u64`).
    pub fn packed(&self) -> bool {
        self.alphabet == 2 && self.columns.len() <= 64
    }

    /// Synthesized column names `c0..c{d-1}` for headerless input.
    pub fn synthetic(d: u32, alphabet: u32) -> Self {
        Self {
            columns: (0..d).map(|i| format!("c{i}")).collect(),
            alphabet,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), IngestError> {
        if self.columns.is_empty() {
            return Err(IngestError::Schema("zero columns".into()));
        }
        if let Some(i) = self.columns.iter().position(|c| c.is_empty()) {
            return Err(IngestError::Schema(format!(
                "column {} has an empty name",
                i + 1
            )));
        }
        if self.alphabet < 2 {
            return Err(IngestError::Schema(format!(
                "alphabet Q={} must be at least 2",
                self.alphabet
            )));
        }
        if self.alphabet > u16::MAX as u32 + 1 {
            return Err(IngestError::Schema(format!(
                "alphabet Q={} exceeds the u16 symbol range",
                self.alphabet
            )));
        }
        Ok(())
    }
}

/// Knobs for one ingest run. `Default` matches the common case: headered
/// CSV over a binary alphabet, 8192-row chunks, strict (no rejects).
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Field delimiter; `None` infers from the file extension
    /// (`.tsv`/`.tab` → tab, anything else → comma).
    pub delimiter: Option<u8>,
    /// Whether the first line names the columns (default `true`).
    pub has_header: bool,
    /// Explicit column names. With a header, these are validated against
    /// it; without one, they declare the dimension directly.
    pub columns: Option<Vec<String>>,
    /// Alphabet size `Q` (default 2).
    pub alphabet: u32,
    /// Rows per chunk handed to the sink (default 8192).
    pub chunk_rows: usize,
    /// Bytes per read from the underlying file (default 1 MiB).
    pub chunk_bytes: usize,
    /// How many malformed rows to skip (counted, not silently dropped)
    /// before giving up with the typed error. 0 = strict: the first bad
    /// row aborts the run (default).
    pub max_rejects: u64,
}

impl Default for IngestOptions {
    fn default() -> Self {
        Self {
            delimiter: None,
            has_header: true,
            columns: None,
            alphabet: 2,
            chunk_rows: 8192,
            chunk_bytes: 1 << 20,
            max_rejects: 0,
        }
    }
}

impl IngestOptions {
    pub(crate) fn delimiter_for(&self, path: &str) -> u8 {
        if let Some(d) = self.delimiter {
            return d;
        }
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".tsv") || lower.ends_with(".tab") {
            b'\t'
        } else {
            b','
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape_and_packing() {
        let s = Schema::synthetic(8, 2);
        assert_eq!(s.dimension(), 8);
        assert_eq!(s.columns[0], "c0");
        assert!(s.packed());
        assert!(!Schema::synthetic(65, 2).packed());
        assert!(!Schema::synthetic(8, 3).packed());
        assert!(s.validate().is_ok());
        assert!(Schema::synthetic(0, 2).validate().is_err());
        assert!(Schema::synthetic(4, 1).validate().is_err());
        assert!(Schema::synthetic(4, 70_000).validate().is_err());
        assert!(Schema::synthetic(4, 65_536).validate().is_ok());
    }

    #[test]
    fn delimiter_inference() {
        let opts = IngestOptions::default();
        assert_eq!(opts.delimiter_for("rows.csv"), b',');
        assert_eq!(opts.delimiter_for("rows.TSV"), b'\t');
        assert_eq!(opts.delimiter_for("rows.tab"), b'\t');
        assert_eq!(opts.delimiter_for("rows"), b',');
        let opts = IngestOptions {
            delimiter: Some(b';'),
            ..Default::default()
        };
        assert_eq!(opts.delimiter_for("rows.tsv"), b';');
    }
}
