//! The per-line row parser: bytes → packed `u64` or dense `u16` symbols.
//!
//! This is the ingest hot path, so it works directly on byte slices —
//! no UTF-8 validation, no `String` splitting, no per-row allocation.
//! Fields are ASCII decimal integers, optionally wrapped in RFC-4180
//! double quotes (`"7"`); a doubled quote inside a quoted field is the
//! RFC escape, which can never be part of a valid integer and is
//! therefore reported as a typed quote/digit error rather than silently
//! decoded.
//! Trailing `\r` is stripped, so CRLF input parses identically to LF.
//!
//! Every rejection is a typed [`IngestError::Parse`] carrying the
//! 1-based line and field numbers; the dense entry point rolls back its
//! output buffer on failure so a caller skipping rejected rows never
//! sees a half-written row.

use crate::error::{IngestError, ParseErrorKind};
use crate::schema::Schema;

/// A compiled per-line parser for one schema + delimiter.
#[derive(Debug, Clone)]
pub struct RowParser {
    d: u32,
    q: u32,
    delim: u8,
}

fn parse_err(line: u64, column: u32, kind: ParseErrorKind, detail: String) -> IngestError {
    IngestError::Parse {
        line,
        column,
        kind,
        detail,
    }
}

/// Strip one trailing carriage return (CRLF input).
fn strip_cr(line: &[u8]) -> &[u8] {
    match line {
        [rest @ .., b'\r'] => rest,
        _ => line,
    }
}

fn bad_byte(line: u64, column: u32, b: u8) -> IngestError {
    if b >= 0x80 {
        parse_err(
            line,
            column,
            ParseErrorKind::Utf8,
            format!("non-ASCII byte {b:#04x}"),
        )
    } else {
        parse_err(
            line,
            column,
            ParseErrorKind::BadDigit,
            format!("byte {:?}", b as char),
        )
    }
}

impl RowParser {
    /// A parser for `schema`'s shape with the given field delimiter.
    pub fn new(schema: &Schema, delim: u8) -> Self {
        Self {
            d: schema.dimension(),
            q: schema.alphabet,
            delim,
        }
    }

    /// Parse one field starting at byte `i`. Returns
    /// `(value, next index, reached end of line)`.
    #[inline]
    fn field(
        &self,
        line: &[u8],
        mut i: usize,
        lineno: u64,
        column: u32,
    ) -> Result<(u32, usize, bool), IngestError> {
        let n = line.len();
        let mut val: u32 = 0;
        let mut digits = 0usize;
        let quoted = i < n && line[i] == b'"';
        if quoted {
            i += 1;
            loop {
                if i >= n {
                    return Err(parse_err(
                        lineno,
                        column,
                        ParseErrorKind::Quote,
                        "unclosed quote at end of line".into(),
                    ));
                }
                let b = line[i];
                if b == b'"' {
                    i += 1;
                    break;
                }
                self.digit(b, &mut val, &mut digits, lineno, column)?;
                i += 1;
            }
            if i < n {
                if line[i] != self.delim {
                    return Err(parse_err(
                        lineno,
                        column,
                        ParseErrorKind::Quote,
                        format!("byte {:?} after closing quote", line[i] as char),
                    ));
                }
                i += 1;
            }
        } else {
            while i < n {
                let b = line[i];
                if b == self.delim {
                    i += 1;
                    break;
                }
                self.digit(b, &mut val, &mut digits, lineno, column)?;
                i += 1;
            }
        }
        if digits == 0 {
            return Err(parse_err(
                lineno,
                column,
                ParseErrorKind::BadDigit,
                "empty field".into(),
            ));
        }
        if val >= self.q {
            return Err(parse_err(
                lineno,
                column,
                ParseErrorKind::OutOfRange,
                format!("value {val} outside alphabet Q={}", self.q),
            ));
        }
        Ok((val, i, i >= n))
    }

    #[inline]
    fn digit(
        &self,
        b: u8,
        val: &mut u32,
        digits: &mut usize,
        lineno: u64,
        column: u32,
    ) -> Result<(), IngestError> {
        if !b.is_ascii_digit() {
            return Err(bad_byte(lineno, column, b));
        }
        *val = *val * 10 + (b - b'0') as u32;
        *digits += 1;
        // Cap before u32 overflow; Q ≤ 65536 so anything past the u16
        // range is out of the alphabet no matter what follows.
        if *val > u16::MAX as u32 {
            return Err(parse_err(
                lineno,
                column,
                ParseErrorKind::OutOfRange,
                format!("value exceeds the u16 symbol range (Q={})", self.q),
            ));
        }
        Ok(())
    }

    /// Shared walk for both row shapes: calls `emit(column, value)` for
    /// each of exactly `d` fields or fails with provenance.
    #[inline]
    fn walk(
        &self,
        line: &[u8],
        lineno: u64,
        mut emit: impl FnMut(u32, u32),
    ) -> Result<(), IngestError> {
        let line = strip_cr(line);
        if line.is_empty() {
            return Err(parse_err(
                lineno,
                0,
                ParseErrorKind::Ragged,
                format!("blank line (expected {} field(s))", self.d),
            ));
        }
        let mut i = 0usize;
        let mut column = 0u32;
        loop {
            let (val, next, done) = self.field(line, i, lineno, column + 1)?;
            column += 1;
            if column > self.d {
                return Err(parse_err(
                    lineno,
                    column,
                    ParseErrorKind::Ragged,
                    format!("more than {} field(s)", self.d),
                ));
            }
            emit(column - 1, val);
            i = next;
            if done {
                break;
            }
        }
        if column != self.d {
            return Err(parse_err(
                lineno,
                column,
                ParseErrorKind::Ragged,
                format!("{} field(s), expected {}", column, self.d),
            ));
        }
        Ok(())
    }

    /// Parse one line (without its terminating `\n`) into a packed
    /// binary row. Only valid for packed schemas (`Q = 2`, `d ≤ 64`).
    pub fn parse_packed(&self, line: &[u8], lineno: u64) -> Result<u64, IngestError> {
        debug_assert!(self.q == 2 && self.d <= 64, "packed parse needs Q=2, d<=64");
        let mut row = 0u64;
        self.walk(line, lineno, |col, val| row |= (val as u64) << col)?;
        Ok(row)
    }

    /// Parse one line into `out`, appending exactly `d` symbols on
    /// success and appending nothing on failure.
    pub fn parse_dense_into(
        &self,
        line: &[u8],
        lineno: u64,
        out: &mut Vec<u16>,
    ) -> Result<(), IngestError> {
        let mark = out.len();
        let result = self.walk(line, lineno, |_, val| out.push(val as u16));
        if result.is_err() {
            out.truncate(mark);
        }
        result
    }
}

/// Quote-aware field split used off the hot path (header parsing,
/// dimension discovery on the first headerless row). Doubled quotes
/// inside a quoted field decode to one literal quote, per RFC 4180.
pub(crate) fn split_fields(
    line: &[u8],
    delim: u8,
    lineno: u64,
) -> Result<Vec<Vec<u8>>, IngestError> {
    let line = strip_cr(line);
    let mut fields = Vec::new();
    let mut cur = Vec::new();
    let mut i = 0usize;
    let n = line.len();
    while i < n {
        if line[i] == b'"' {
            // Quoted section: scan to the closing quote.
            i += 1;
            loop {
                if i >= n {
                    return Err(parse_err(
                        lineno,
                        fields.len() as u32 + 1,
                        ParseErrorKind::Quote,
                        "unclosed quote at end of line".into(),
                    ));
                }
                if line[i] == b'"' {
                    if i + 1 < n && line[i + 1] == b'"' {
                        cur.push(b'"');
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                cur.push(line[i]);
                i += 1;
            }
        } else if line[i] == delim {
            fields.push(std::mem::take(&mut cur));
            i += 1;
        } else {
            cur.push(line[i]);
            i += 1;
        }
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parser(d: u32, q: u32) -> RowParser {
        RowParser::new(&Schema::synthetic(d, q), b',')
    }

    fn kind_of(e: IngestError) -> (u64, u32, ParseErrorKind) {
        match e {
            IngestError::Parse {
                line, column, kind, ..
            } => (line, column, kind),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn packed_happy_paths() {
        let p = parser(4, 2);
        assert_eq!(p.parse_packed(b"1,0,1,1", 1).unwrap(), 0b1101);
        assert_eq!(p.parse_packed(b"0,0,0,0", 1).unwrap(), 0);
        // CRLF and quoted fields.
        assert_eq!(p.parse_packed(b"1,0,1,1\r", 1).unwrap(), 0b1101);
        assert_eq!(p.parse_packed(b"\"1\",0,\"1\",1", 1).unwrap(), 0b1101);
    }

    #[test]
    fn dense_happy_paths_and_rollback() {
        let p = parser(3, 10);
        let mut out = vec![9u16];
        p.parse_dense_into(b"0,5,9", 1, &mut out).unwrap();
        assert_eq!(out, vec![9, 0, 5, 9]);
        // A failed parse appends nothing.
        assert!(p.parse_dense_into(b"0,5", 2, &mut out).is_err());
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn provenance_is_precise() {
        let p = parser(3, 2);
        assert_eq!(
            kind_of(p.parse_packed(b"1,x,1", 7).unwrap_err()),
            (7, 2, ParseErrorKind::BadDigit)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,1", 3).unwrap_err()),
            (3, 2, ParseErrorKind::Ragged)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,1,1,0", 3).unwrap_err()),
            (3, 4, ParseErrorKind::Ragged)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,1,7", 4).unwrap_err()),
            (4, 3, ParseErrorKind::OutOfRange)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"", 9).unwrap_err()),
            (9, 0, ParseErrorKind::Ragged)
        );
        // Inside quotes the comma is data, and integer fields have no
        // comma data — the non-digit fires before unclosedness can.
        assert_eq!(
            kind_of(p.parse_packed(b"1,\"1,1", 2).unwrap_err()),
            (2, 2, ParseErrorKind::BadDigit)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,\"1", 2).unwrap_err()),
            (2, 2, ParseErrorKind::Quote)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,\"1\"x,1", 2).unwrap_err()),
            (2, 2, ParseErrorKind::Quote)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,,1", 5).unwrap_err()),
            (5, 2, ParseErrorKind::BadDigit)
        );
        assert_eq!(
            kind_of(p.parse_packed(b"1,1,\xc3\xa9", 6).unwrap_err()),
            (6, 3, ParseErrorKind::Utf8)
        );
        // Doubled quote inside a quoted numeric field: the first quote
        // closes the field, the second is stray — a quote error.
        assert_eq!(
            kind_of(p.parse_packed(b"\"1\"\"\",1,1", 8).unwrap_err()),
            (8, 1, ParseErrorKind::Quote)
        );
    }

    #[test]
    fn dense_range_cap_is_u16() {
        let p = parser(1, 65_536);
        let mut out = Vec::new();
        p.parse_dense_into(b"65535", 1, &mut out).unwrap();
        assert_eq!(out, vec![65_535]);
        assert_eq!(
            kind_of(p.parse_dense_into(b"65536", 2, &mut out).unwrap_err()).2,
            ParseErrorKind::OutOfRange
        );
        // A huge digit string fails fast instead of overflowing.
        assert_eq!(
            kind_of(
                p.parse_dense_into(b"99999999999999999999", 3, &mut out)
                    .unwrap_err()
            )
            .2,
            ParseErrorKind::OutOfRange
        );
    }

    #[test]
    fn split_fields_handles_quotes() {
        assert_eq!(
            split_fields(b"a,\"b,c\",\"d\"\"e\"", b',', 1).unwrap(),
            vec![b"a".to_vec(), b"b,c".to_vec(), b"d\"e".to_vec()]
        );
        assert_eq!(
            split_fields(b"x\ty\r", b'\t', 1).unwrap(),
            vec![b"x".to_vec(), b"y".to_vec()]
        );
        assert_eq!(split_fields(b"", b',', 1).unwrap(), vec![Vec::<u8>::new()]);
        assert!(split_fields(b"\"open", b',', 1).is_err());
    }
}
