//! Typed ingest errors with line/column provenance.
//!
//! The file ingester is a trust boundary exactly like the wire protocol:
//! arbitrary bytes come in, and every way they can be malformed — ragged
//! rows, non-digit bytes, out-of-alphabet values, unbalanced quotes,
//! non-UTF-8 header names — must surface as a typed error naming where
//! the problem is, never as a panic and never as a silently skipped row
//! (unless the caller opted into a reject budget).

use std::fmt;

/// What exactly was wrong with a row or field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The row has the wrong number of fields for the schema.
    Ragged,
    /// A field contains a byte that is not an ASCII digit.
    BadDigit,
    /// A field parsed as an integer but falls outside the alphabet
    /// `[0, Q)` (or exceeds the `u16` symbol range).
    OutOfRange,
    /// Unbalanced or misplaced double quotes.
    Quote,
    /// A byte sequence that is not valid UTF-8 where text is required.
    Utf8,
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Ragged => "ragged row",
            Self::BadDigit => "bad digit",
            Self::OutOfRange => "value out of range",
            Self::Quote => "quote error",
            Self::Utf8 => "invalid UTF-8",
        };
        f.write_str(s)
    }
}

/// Every way ingest can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The underlying read failed.
    Io {
        /// The file (or reader label) being ingested.
        path: String,
        /// The stringified I/O error.
        detail: String,
    },
    /// The input contained no rows at all (zero bytes, or a header with
    /// no data lines).
    EmptyInput {
        /// The file (or reader label) being ingested.
        path: String,
    },
    /// The schema could not be discovered or did not validate against
    /// the explicit column spec.
    Schema(String),
    /// A data row failed to parse. `line` and `column` are 1-based;
    /// `column` is the field index (0 when the problem is not tied to
    /// one field, e.g. a blank line).
    Parse {
        /// 1-based line number in the input.
        line: u64,
        /// 1-based field index, 0 if not field-specific.
        column: u32,
        /// The failure category.
        kind: ParseErrorKind,
        /// Human-readable specifics (the offending byte, the count, …).
        detail: String,
    },
    /// The downstream engine rejected rows the parser accepted.
    Sink(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "io error reading {path}: {detail}"),
            Self::EmptyInput { path } => write!(f, "no rows in {path}"),
            Self::Schema(s) => write!(f, "schema error: {s}"),
            Self::Parse {
                line,
                column,
                kind,
                detail,
            } => {
                if *column == 0 {
                    write!(f, "line {line}: {kind}: {detail}")
                } else {
                    write!(f, "line {line}, column {column}: {kind}: {detail}")
                }
            }
            Self::Sink(s) => write!(f, "sink error: {s}"),
        }
    }
}

impl std::error::Error for IngestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_line_and_column() {
        let e = IngestError::Parse {
            line: 42,
            column: 3,
            kind: ParseErrorKind::BadDigit,
            detail: "byte 'x'".into(),
        };
        let s = e.to_string();
        assert!(s.contains("line 42"), "{s}");
        assert!(s.contains("column 3"), "{s}");
        assert!(s.contains("bad digit"), "{s}");
        // Column 0 means "whole row": no misleading column in the text.
        let e = IngestError::Parse {
            line: 7,
            column: 0,
            kind: ParseErrorKind::Ragged,
            detail: "blank line".into(),
        };
        assert!(!e.to_string().contains("column"), "{e}");
    }
}
