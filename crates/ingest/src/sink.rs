//! Where parsed chunks go: the [`RowSink`] trait and its engine impls.
//!
//! The ingester hands over *chunks*, never rows — a packed chunk is a
//! `&[u64]`, a dense chunk is a flat row-major `&[u16]` — so every sink
//! implementation rides the engines' allocation-free batch surfaces
//! (`push_packed_batch` / `push_dense_batch`).

use pfe_engine::Engine;
use pfe_window::WindowedEngine;

use crate::error::IngestError;

/// A destination for parsed row chunks.
pub trait RowSink {
    /// Accept a chunk of packed binary rows (`Q = 2`, `d ≤ 64`).
    ///
    /// # Errors
    /// [`IngestError::Sink`] when the destination rejects the chunk.
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError>;

    /// Accept a chunk of dense rows, flattened row-major (`d` symbols
    /// per row).
    ///
    /// # Errors
    /// [`IngestError::Sink`] when the destination rejects the chunk.
    fn push_dense_rows(&mut self, d: u32, flat: &[u16]) -> Result<(), IngestError>;
}

fn sink_err(e: impl std::fmt::Display) -> IngestError {
    IngestError::Sink(e.to_string())
}

impl RowSink for Engine {
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError> {
        Engine::push_packed_batch(self, rows).map_err(sink_err)
    }

    fn push_dense_rows(&mut self, _d: u32, flat: &[u16]) -> Result<(), IngestError> {
        Engine::push_dense_batch(self, flat).map_err(sink_err)
    }
}

impl RowSink for WindowedEngine {
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError> {
        WindowedEngine::push_packed_batch(self, rows).map_err(sink_err)
    }

    fn push_dense_rows(&mut self, _d: u32, flat: &[u16]) -> Result<(), IngestError> {
        WindowedEngine::push_dense_batch(self, flat).map_err(sink_err)
    }
}

impl RowSink for &Engine {
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError> {
        Engine::push_packed_batch(self, rows).map_err(sink_err)
    }

    fn push_dense_rows(&mut self, _d: u32, flat: &[u16]) -> Result<(), IngestError> {
        Engine::push_dense_batch(self, flat).map_err(sink_err)
    }
}

impl RowSink for &WindowedEngine {
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError> {
        WindowedEngine::push_packed_batch(self, rows).map_err(sink_err)
    }

    fn push_dense_rows(&mut self, _d: u32, flat: &[u16]) -> Result<(), IngestError> {
        WindowedEngine::push_dense_batch(self, flat).map_err(sink_err)
    }
}

/// A sink that just collects rows — the reference for parity tests and
/// the cheapest way to parse a file without an engine.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VecSink {
    /// Collected packed rows (packed schemas).
    pub packed: Vec<u64>,
    /// Collected dense symbols, flattened row-major (dense schemas).
    pub dense: Vec<u16>,
}

impl RowSink for VecSink {
    fn push_packed_rows(&mut self, rows: &[u64]) -> Result<(), IngestError> {
        self.packed.extend_from_slice(rows);
        Ok(())
    }

    fn push_dense_rows(&mut self, _d: u32, flat: &[u16]) -> Result<(), IngestError> {
        self.dense.extend_from_slice(flat);
        Ok(())
    }
}
