//! `checkpoint_resume` — the durable-snapshot lifecycle, end to end:
//!
//! 1. ingest a stream and **checkpoint** the engine to a snapshot file;
//! 2. **resume** a fresh engine from the file and show its answers are
//!    bit-identical to the engine that never stopped;
//! 3. keep ingesting on the resumed engine (the checkpointed state folds
//!    under the new rows);
//! 4. build two snapshot files from *disjoint halves* of a stream in two
//!    independent engines and **merge** them into one snapshot equal to
//!    the single-process build — the cross-machine union path.
//!
//! Run with `cargo run --release --example checkpoint_resume`.

use subspace_exploration::engine::{merge_snapshot_files, Engine, EngineConfig, Query, Snapshot};
use subspace_exploration::row::{ColumnSet, Dataset};
use subspace_exploration::stream::gen::uniform_binary;

fn cfg() -> EngineConfig {
    EngineConfig {
        shards: 4,
        sample_t: 4096,
        kmv_k: 128,
        seed: 7,
        ..Default::default()
    }
}

fn f0_of(engine: &Engine, cols: &[u32]) -> f64 {
    engine
        .query(&Query::over(cols.iter().copied()).f0())
        .expect("query")
        .estimate()
        .expect("F0 answers carry a scalar estimate")
}

fn main() {
    let d = 14;
    let dir = std::env::temp_dir().join("pfe-checkpoint-resume-example");
    std::fs::create_dir_all(&dir).expect("temp dir");

    // 1. Ingest and checkpoint.
    let path = dir.join("engine.pfes");
    let engine = Engine::start(d, 2, cfg()).expect("start");
    engine
        .ingest(&uniform_binary(d, 50_000, 1))
        .expect("ingest");
    let snap = engine.checkpoint(&path).expect("checkpoint");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!(
        "checkpointed {} rows at epoch {} -> {} ({bytes} bytes)",
        snap.n(),
        snap.epoch(),
        path.display()
    );

    // 2. Resume in a "new process" and compare answers.
    let resumed = Engine::resume(&path, cfg()).expect("resume");
    let cols: Vec<u32> = (0..6).collect();
    let (a, b) = (f0_of(&engine, &cols), f0_of(&resumed, &cols));
    println!(
        "F0 on {cols:?}: original {a}, resumed {b}, bit-identical: {}",
        a == b
    );
    assert_eq!(a, b, "resumed engine must answer identically");

    // 3. The resumed engine keeps ingesting on top of the checkpoint.
    resumed
        .ingest(&uniform_binary(d, 10_000, 2))
        .expect("ingest after resume");
    let newer = resumed.refresh().expect("refresh");
    println!(
        "resumed engine kept ingesting: {} rows at epoch {}",
        newer.n(),
        newer.epoch()
    );

    // 4. Cross-process union: two halves, two files, one merged snapshot.
    let data = uniform_binary(d, 40_000, 3);
    let rows: Vec<u64> = match &data {
        Dataset::Binary(m) => m.rows().to_vec(),
        Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    let (path_a, path_b) = (dir.join("half-a.pfes"), dir.join("half-b.pfes"));
    let worker_a = Engine::start(d, 2, cfg()).expect("start");
    let worker_b = Engine::start(d, 2, cfg()).expect("start");
    for &row in &rows[..20_000] {
        worker_a.push_packed(row).expect("push");
    }
    for &row in &rows[20_000..] {
        worker_b.push_packed(row).expect("push");
    }
    worker_a.checkpoint(&path_a).expect("checkpoint a");
    worker_b.checkpoint(&path_b).expect("checkpoint b");
    let merged = merge_snapshot_files(&[&path_a, &path_b]).expect("merge");

    let single = Engine::start(d, 2, cfg()).expect("start");
    single.ingest(&data).expect("ingest");
    let single_snap: std::sync::Arc<Snapshot> = single.refresh().expect("refresh");
    let probe = ColumnSet::from_indices(d, &[0, 2, 4, 6, 8]).expect("valid");
    let (m, s) = (
        merged.f0(&probe).expect("ok").estimate,
        single_snap.f0(&probe).expect("ok").estimate,
    );
    println!(
        "union of two half-stream files: F0 {m} vs single-process {s}, bit-identical: {}",
        m == s
    );
    assert_eq!(m, s, "cross-process union must equal the single build");

    for p in [path, path_a, path_b] {
        std::fs::remove_file(p).ok();
    }
}
