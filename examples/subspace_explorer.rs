//! Subspace clustering exploration (the paper's third motivating
//! scenario): search for column subsets where the data is *dense* —
//! projected F0 far below the diverse-data expectation — which signals a
//! planted subspace cluster. The α-net summary prunes the exponential
//! search space; exact computation verifies the survivors.
//!
//! Run: `cargo run --release --example subspace_explorer`

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use subspace_exploration::core::ExactSummary;
use subspace_exploration::row::ColumnSet;
use subspace_exploration::sketch::kmv::Kmv;
use subspace_exploration::stream::gen::{clustered_subspace, ClusteredConfig};

fn main() {
    // Sparse regime: n well below 2^width, so diverse subspaces show high
    // F0 while cluster-aligned subspaces compress dramatically.
    let d = 16;
    let cfg = ClusteredConfig {
        d,
        n: 1200,
        clusters: 2,
        subspace_size: 8,
        noise: 0.01,
        seed: 5,
    };
    let planted = clustered_subspace(&cfg);
    let data = planted.data;

    let exact = ExactSummary::build(&data);
    let net = AlphaNet::new(d, 0.2).expect("valid");
    let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 24, |mask| {
        Kmv::new(256, mask)
    })
    .expect("builds");

    // Score every width-10 subset by estimated F0: diverse subspaces run
    // near 1024-pattern saturation; a subspace covering a planted cluster's
    // relevant columns collapses (half the rows land on ~4 patterns).
    let width = 10u32;
    let mut scored: Vec<(u64, f64)> = Vec::new();
    for mask in subspace_exploration::codes::subsets::FixedWeightIter::new(d, width) {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let ans = summary.f0(&cols).expect("ok");
        scored.push((mask, ans.estimate));
    }
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));

    println!(
        "explored {} width-{width} subspaces through one summary\n",
        scored.len()
    );
    println!("densest candidates (lowest estimated F0; verify with exact):");
    let mut hits = 0;
    for &(mask, est) in scored.iter().take(10) {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let truth = exact.f0(&cols).expect("ok").value;
        // Overlap with any planted cluster's relevant columns.
        let overlap = planted
            .relevant_columns
            .iter()
            .map(|&rel| (rel & mask).count_ones())
            .max()
            .expect("clusters exist");
        if overlap >= 6 {
            hits += 1;
        }
        println!(
            "  {cols:<28} est F0 {est:>7.0}   exact F0 {truth:>6}   planted-overlap {overlap}/8"
        );
    }
    assert!(
        hits >= 6,
        "subspace search failed: only {hits}/10 top candidates overlap a planted cluster"
    );
    println!(
        "\n{hits}/10 top candidates overlap a planted cluster's relevant columns — \
         the net-pruned search recovers the planted structure."
    );

    // Contrast: a random irrelevant subspace looks diverse.
    let noise_cols = ColumnSet::from_mask(d, scored.last().expect("nonempty").0).expect("valid");
    println!(
        "least dense subspace {noise_cols}: exact F0 = {} (diverse, no cluster)",
        exact.f0(&noise_cols).expect("ok").value
    );
}
