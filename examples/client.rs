//! `client` — command-line client for a running `pfe-server`
//! (`serve --listen`).
//!
//! ```text
//! cargo run --release --example client -- 127.0.0.1:7070            # interactive/pipe
//! cargo run --release --example client -- 127.0.0.1:7070 --demo     # scripted session
//! cargo run --release --example client -- 127.0.0.1:7070 --shutdown # stop the server
//! ```
//!
//! In pipe mode every stdin line is sent as one request and the response
//! is printed to stdout — the same framing as the server's own pipe mode,
//! so scripts can switch transports without changes. `--demo` runs a
//! self-contained session (start, ingest generated rows, one of each
//! statistic, batch, stats, server_stats) against the live server and
//! prints each request/response pair. See `docs/PROTOCOL.md` for the op
//! reference.

use std::io::BufRead;

use subspace_exploration::server::{Client, ClientError};

fn demo_script() -> Vec<String> {
    use subspace_exploration::hash::rng::Xoshiro256pp;
    let d = 12;
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let rows: Vec<String> = (0..2000)
        .map(|_| {
            let row = rng.next_u64() & ((1 << d) - 1);
            let bits: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
            format!("[{}]", bits.join(","))
        })
        .collect();
    vec![
        format!(r#"{{"op":"start","d":{d},"q":2,"shards":4,"fp":{{"orders":[2.0,1.5]}}}}"#),
        format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")),
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"l1_sample","cols":[0,1,2],"k":4,"seed":7}"#.to_string(),
        r#"{"op":"fp","cols":[0,1,2,3,4,5],"p":2.0}"#.to_string(),
        r#"{"op":"fp","cols":[0,1,2],"p":1.5}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"f0","cols":[0,1,2]}]}"#
            .to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"server_stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("client: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(addr) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: client ADDR [--demo|--shutdown]");
        eprintln!("  ADDR      a running `serve --listen` server, e.g. 127.0.0.1:7070");
        eprintln!("  --demo    run a scripted session (start/ingest/query/stats) and print it");
        eprintln!("  --shutdown  send {{\"op\":\"shutdown\"}} (drain + checkpoint) and exit");
        eprintln!("  (default: read request lines from stdin, print response lines to stdout)");
        std::process::exit(2);
    };
    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => fail(e),
    };

    if args.iter().any(|a| a == "--shutdown") {
        match client.request_line(r#"{"op":"shutdown"}"#) {
            Ok(resp) => println!("{resp}"),
            Err(e) => fail(e),
        }
        return;
    }

    if args.iter().any(|a| a == "--demo") {
        for line in demo_script() {
            // Ingest lines are huge; echo a summary, print responses whole.
            let shown = if line.len() > 120 {
                format!("{}…", &line[..117])
            } else {
                line.clone()
            };
            println!("> {shown}");
            match client.request_line(&line) {
                Ok(resp) => println!("{resp}"),
                Err(ClientError::ServerClosed) => fail("server closed the connection"),
                Err(e) => fail(e),
            }
        }
        return;
    }

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        match client.request_line(&line) {
            Ok(resp) => {
                println!("{resp}");
                if line.contains("\"quit\"") || line.contains("\"shutdown\"") {
                    break;
                }
            }
            Err(ClientError::ServerClosed) => fail("server closed the connection"),
            Err(e) => fail(e),
        }
    }
}
