//! Streaming ingestion: the one-pass model end to end, on a real file.
//!
//! Earlier revisions of this example fed summaries row by row from a
//! generator. Production data arrives as *files*, so this now runs the
//! same one-pass story through the columnar ingest subsystem: a CSV is
//! chunk-read, parsed at the byte level with no per-row allocation, and
//! routed into the sharded engine in batch-sized messages — schema,
//! dimension, and column names all discovered from the file itself.
//! Projections are still chosen only at query time, after the pass.
//!
//! Run: `cargo run --release --example streaming_ingest`

use std::sync::Arc;

use subspace_exploration::engine::{Engine, EngineConfig, Query, Recorder};
use subspace_exploration::ingest::{FileIngester, IngestError, IngestOptions};
use subspace_exploration::query::AnswerValue;
use subspace_exploration::row::Dataset;
use subspace_exploration::stream::gen::zipf_patterns;

fn main() {
    let d = 14u32;
    let rows = 100_000usize;

    // Simulate the upstream system that dropped a file for us: a Zipfian
    // packed-row workload serialized as headered CSV.
    let dir = std::env::temp_dir().join("pfe-streaming-ingest");
    std::fs::create_dir_all(&dir).expect("tempdir");
    let path = dir.join("arrivals.csv");
    let source = zipf_patterns(d, rows, 80, 1.25, 7);
    let packed: &[u64] = match &source {
        Dataset::Binary(m) => m.rows(),
        Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    let mut text = (0..d)
        .map(|i| format!("sensor_{i}"))
        .collect::<Vec<_>>()
        .join(",");
    text.push('\n');
    for &row in packed {
        let line: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
        text.push_str(&line.join(","));
        text.push('\n');
    }
    std::fs::write(&path, &text).expect("write csv");
    println!(
        "file ready: {} ({} rows, {} bytes)",
        path.display(),
        rows,
        text.len()
    );

    // One pass: chunk-read the file, parse columns, feed the engine.
    // The sink factory runs once the header has fixed the schema, so
    // the engine's dimension comes from the file — no pre-scan.
    let recorder = Arc::new(Recorder::new());
    let opts = IngestOptions {
        chunk_rows: 4096,
        ..Default::default()
    };
    let ingester = FileIngester::with_recorder(opts, &recorder);
    let cfg = EngineConfig {
        shards: 4,
        kmv_k: 128,
        sample_t: 2048,
        seed: 99,
        ..Default::default()
    };
    let rec = Arc::clone(&recorder);
    let (engine, report) = ingester
        .ingest_path_with(&path, move |schema| {
            println!(
                "schema discovered: d = {}, Q = {}, first column {:?}",
                schema.dimension(),
                schema.alphabet,
                schema.columns[0]
            );
            Engine::start_with_recorder(schema.dimension(), schema.alphabet, cfg, rec)
                .map_err(|e| IngestError::Sink(e.to_string()))
        })
        .expect("ingest");
    println!(
        "stream done: {} rows in {} chunks, {:.1} MB/s ({:.0} rows/s)",
        report.rows,
        report.chunks,
        report.mb_per_sec(),
        report.rows_per_sec()
    );

    // The ingest run reported into the shared registry — the same
    // counters a server's Prometheus endpoint would scrape.
    for (name, value) in recorder.counters_snapshot() {
        if name.starts_with("ingest_") {
            println!("  {name} = {value}");
        }
    }

    // Query phase: projections chosen only now, against one snapshot.
    let snapshot = engine.refresh().expect("refresh");
    println!(
        "snapshot: {} rows at epoch {}",
        snapshot.n(),
        snapshot.epoch()
    );
    for cols in [
        vec![0u32, 1],
        vec![4, 5, 6, 7, 9],
        vec![1, 3, 5, 7, 9, 11, 13],
    ] {
        let f0 = engine.query(&Query::over(cols.clone()).f0()).expect("f0");
        let hh = engine
            .query(&Query::over(cols.clone()).heavy_hitters(0.1))
            .expect("hh");
        println!(
            "C = {cols:?}: F0 ~ {:>8.0} (alpha {:.3}), heavy hitters (phi=0.1): {}",
            f0.estimate().unwrap_or(0.0),
            f0.guarantee.alpha,
            match &hh.value {
                AnswerValue::HeavyHitters { hitters } => hitters.len(),
                _ => 0,
            }
        );
    }

    engine.shutdown().ok();
    std::fs::remove_file(&path).ok();
}
