//! Streaming ingestion: the one-pass model end to end.
//!
//! Rows arrive one at a time (here simulated from a generator); the α-net
//! is sized *up front* from a memory budget via the inverse of Lemma 6.2,
//! then fed row by row. No batch materialization anywhere — the shape of a
//! production deployment of the paper's scheme.
//!
//! Run: `cargo run --release --example streaming_ingest`

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use subspace_exploration::core::UniformSampleSummary;
use subspace_exploration::row::{ColumnSet, Dataset};
use subspace_exploration::sketch::kmv::Kmv;
use subspace_exploration::sketch::traits::SpaceUsage;
use subspace_exploration::stream::gen::zipf_patterns;

fn main() {
    let d = 14;
    let budget_sketches = 2000u128;

    // Plan the net from the budget before any data arrives.
    let net = AlphaNet::for_budget(d, budget_sketches).expect("budget feasible");
    println!(
        "planned net: alpha = {:.3}, {} sketches (budget {budget_sketches}), \
         worst-case F0 distortion {}x",
        net.alpha(),
        net.size(),
        net.f0_distortion_bound(2),
    );

    // Streaming phase: one pass, two summaries fed row by row.
    let mut net_f0 = AlphaNetF0::new_streaming(net, NetMode::Full, budget_sketches, |mask| {
        Kmv::new(128, mask ^ 0x57ee)
    })
    .expect("streaming summary");
    let mut sample = UniformSampleSummary::new(d, 2, 2048, 99);

    // Simulated source (any Iterator<Item = u64> of packed rows works).
    let source = zipf_patterns(d, 100_000, 80, 1.25, 7);
    let rows: &[u64] = match &source {
        Dataset::Binary(m) => m.rows(),
        Dataset::Qary(_) => unreachable!("generator yields binary data"),
    };
    let mut seen = 0u64;
    for &row in rows {
        net_f0.push_packed(row);
        let dense: Vec<u16> = (0..d).map(|c| ((row >> c) & 1) as u16).collect();
        sample.push_dense(&dense);
        seen += 1;
        if seen.is_multiple_of(25_000) {
            println!("  ingested {seen} rows...");
        }
    }
    println!(
        "stream done: {seen} rows; net = {}, sample = {}",
        net_f0.space_bytes(),
        sample.space_bytes()
    );

    // Query phase: projections chosen only now.
    for mask in [0b11u64, 0b1111000011, 0b10101010101010] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let f0 = net_f0.f0(&cols).expect("ok");
        println!(
            "C = {cols:<20} F0 ~ {:>8.0} (on {}, within {}x)",
            f0.estimate, f0.answered_on, f0.distortion_bound
        );
        let hh = sample.heavy_hitters(&cols, 0.1, 1.0, 2.0).expect("ok");
        println!("{:24} heavy hitters (phi=0.1): {}", "", hh.len());
    }
}
