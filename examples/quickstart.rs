//! Quickstart: the paper's model in fifty lines.
//!
//! Build a dataset, ingest it into three summaries *before* any query is
//! known, then answer projection queries that arrive afterwards — the
//! defining constraint of projected frequency estimation.
//!
//! Run: `cargo run --release --example quickstart`

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use subspace_exploration::core::{ExactSummary, UniformSampleSummary};
use subspace_exploration::row::ColumnSet;
use subspace_exploration::sketch::kmv::Kmv;
use subspace_exploration::sketch::traits::SpaceUsage;
use subspace_exploration::stream::gen::zipf_patterns;

fn main() {
    // 20 columns, 50k rows, heavy-hitter-rich (Zipf over 100 patterns).
    let d = 20;
    let data = zipf_patterns(d, 50_000, 100, 1.3, 42);

    // --- Observation phase: build summaries without knowing the query.
    let exact = ExactSummary::build(&data); // Theta(nd) baseline
    let sample = UniformSampleSummary::build(&data, 4096, 1); // Thm 5.1
    let net = AlphaNet::new(d, 0.25).expect("valid alpha");
    let net_f0 = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 22, |mask| {
        Kmv::new(256, mask)
    })
    .expect("net builds"); // Section 6, Algorithm 1

    println!("summaries built (space):");
    println!("  exact          : {:>12} bytes", exact.space_bytes());
    println!("  uniform sample : {:>12} bytes", sample.space_bytes());
    println!(
        "  alpha-net F0   : {:>12} bytes ({} sketches)",
        net_f0.space_bytes(),
        net_f0.num_sketches()
    );

    // --- Query phase: the column subset arrives only now.
    let cols = ColumnSet::from_indices(d, &[1, 4, 9, 13, 17]).expect("valid");
    println!("\nquery C = {cols} (revealed after the data)");

    // Projected F0 (distinct patterns).
    let f0_exact = exact.f0(&cols).expect("ok").value;
    let f0_net = net_f0.f0(&cols).expect("ok");
    println!("\nprojected F0:");
    println!("  exact    : {f0_exact}");
    println!(
        "  alpha-net: {:.1} (answered on {}, |C delta C'| = {}, distortion bound {}x)",
        f0_net.estimate, f0_net.answered_on, f0_net.sym_diff, f0_net.distortion_bound
    );

    // Point frequency of the most common pattern (Thm 5.1 estimator).
    let f = exact.freq_vector(&cols).expect("ok");
    let (top_key, top_count) = f
        .sorted_counts()
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .expect("nonempty");
    let est = sample.frequency(&cols, top_key).expect("ok");
    println!("\ntop pattern frequency:");
    println!("  exact   : {top_count}");
    println!("  sampled : {est:.0} (additive error guarantee eps * n)");

    // phi-l_1 heavy hitters via the sample.
    let hh = sample.heavy_hitters(&cols, 0.1, 1.0, 2.0).expect("ok");
    println!("\nheavy hitters (phi = 0.1, p = 1): {} reported", hh.len());
    for h in hh.iter().take(5) {
        let pattern = f.codec().decode(h.key);
        println!("  pattern {pattern:?} ~ {:.0} occurrences", h.estimate);
    }
}
