//! `serve` — the query server: line-delimited JSON over **TCP** (many
//! concurrent clients) or over **stdin/stdout** (pipe mode).
//!
//! Both modes speak the same protocol through the same
//! `pfe_server::proto::Dispatcher` — see `docs/PROTOCOL.md` for every op
//! with request/response examples. The engine is created by the first
//! `start` request and serves every later request; passing a `window`
//! object to `start` serves a sliding-window engine instead.
//!
//! TCP mode:
//!
//! ```text
//! cargo run --release --example serve -- --listen 127.0.0.1:7070 \
//!     --workers 8 --queue 32 --checkpoint snap.pfes \
//!     --metrics 127.0.0.1:9100 --slow-ms 50
//! ```
//!
//! then talk to it with `examples/client.rs` (or netcat). `--workers`
//! bounds concurrent sessions; beyond `--queue` waiting connections the
//! server answers `{"ok":false,"code":"saturated"}` and closes instead of
//! queueing unboundedly. SIGINT/SIGTERM (or a `shutdown` request) stops
//! accepting, drains in-flight requests, and — when `--checkpoint` is
//! given — writes the backend durably via `pfe-persist` before exiting.
//! `--listen 127.0.0.1:0` picks an ephemeral port (printed on stderr as
//! `listening on ADDR`). `--metrics ADDR` opens a Prometheus scrape
//! endpoint (printed as `metrics on ADDR`; any HTTP GET answers the full
//! metric registry in text exposition format), and `--slow-ms N` logs
//! requests taking ≥ N ms into the ring served by the `slow_log` op.
//!
//! Pipe mode (no `--listen`): each stdin line is one request, each stdout
//! line is the response, ending at `{"op":"quit"}`/`{"op":"shutdown"}` or
//! EOF:
//!
//! ```text
//! {"op":"start","d":12,"q":2,"shards":4}
//! {"op":"ingest","rows":[[0,1,0,...],[1,1,0,...]]}
//! {"op":"snapshot"}
//! {"op":"f0","cols":[0,5,9]}
//! {"op":"heavy_hitters","cols":[0,1,2],"phi":0.1}
//! {"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"f0","cols":[0,1,2]}]}
//! {"op":"stats"}
//! {"op":"quit"}
//! ```
//!
//! Run with `--demo` for a scripted whole-stream session over generated
//! data (no stdin needed), or `--demo-window` for the windowed
//! equivalent.

use std::io::{BufRead, Write};
use std::path::PathBuf;

use subspace_exploration::server::proto::{Control, Dispatcher};
use subspace_exploration::server::{install_signal_handlers, Server, ServerConfig};

fn demo_rows(d: u32, count: usize, seed: u64) -> Vec<String> {
    use subspace_exploration::hash::rng::Xoshiro256pp;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut lines = Vec::new();
    for _ in 0..count {
        let rows: Vec<String> = (0..500)
            .map(|_| {
                let row = rng.next_u64() & ((1 << d) - 1);
                let bits: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        lines.push(format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")));
    }
    lines
}

fn demo_script() -> Vec<String> {
    let d = 12;
    let mut lines = vec![format!(
        r#"{{"op":"start","d":{d},"q":2,"shards":4,"fp":{{"orders":[2.0,1.5]}}}}"#
    )];
    lines.extend(demo_rows(d, 20, 1));
    lines.extend([
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"l1_sample","cols":[0,1,2],"k":4,"seed":7}"#.to_string(),
        r#"{"op":"fp","cols":[0,1,2,3,4,5],"p":2.0}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1,2,3,4,5]},{"op":"f0","cols":[0,1,2,3,4,5,6]}]}"#
            .to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"server_stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

fn demo_window_script() -> Vec<String> {
    let d = 12;
    let mut lines = vec![format!(
        r#"{{"op":"start","d":{d},"q":2,"window":{{"bucket_rows":512,"tier_cap":4,"max_tiers":6}}}}"#
    )];
    lines.extend(demo_rows(d, 20, 2));
    lines.extend([
        // The last thousand rows vs the whole retained stream.
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05,"window":1000}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5],"window":2000}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1],"window":1000},{"op":"f0","cols":[0,1],"window":1001}]}"#
            .to_string(),
        r#"{"op":"window_stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

/// Parse `--flag value` pairs out of the argument list.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_tcp(args: &[String], listen: String) {
    let mut cfg = ServerConfig {
        addr: listen,
        ..Default::default()
    };
    if let Some(w) = flag_value(args, "--workers").and_then(|v| v.parse().ok()) {
        cfg.workers = w;
    }
    if let Some(q) = flag_value(args, "--queue").and_then(|v| v.parse().ok()) {
        cfg.queue = q;
    }
    if let Some(p) = flag_value(args, "--checkpoint") {
        cfg.checkpoint_path = Some(PathBuf::from(p));
    }
    if let Some(m) = flag_value(args, "--metrics") {
        cfg.metrics_addr = Some(m);
    }
    if let Some(ms) = flag_value(args, "--slow-ms").and_then(|v| v.parse().ok()) {
        cfg.slow_ms = Some(ms);
    }
    if let Some(n) = flag_value(args, "--trace-sample").and_then(|v| v.parse().ok()) {
        cfg.trace_sample = Some(n);
    }
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };
    install_signal_handlers();
    eprintln!("listening on {}", server.local_addr());
    if let Some(maddr) = server.metrics_addr() {
        eprintln!("metrics on {maddr}");
    }
    match server.run() {
        Ok(report) => {
            if let Some(path) = &report.checkpointed {
                eprintln!("checkpointed to {}", path.display());
            }
            eprintln!(
                "served {} connections, {} requests ({} rejected saturated)",
                report.connections_accepted, report.requests_handled, report.rejected_saturated
            );
        }
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(listen) = flag_value(&args, "--listen") {
        run_tcp(&args, listen);
        return;
    }

    // Pipe mode: the same dispatcher over stdin/stdout. `--checkpoint`
    // gives `shutdown` (and the `checkpoint` op) a default path here too.
    let dispatcher = Dispatcher::new(flag_value(&args, "--checkpoint").map(PathBuf::from));
    if let Some(n) = flag_value(&args, "--trace-sample").and_then(|v| v.parse().ok()) {
        dispatcher.recorder().trace_store().set_sample(n);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let demo = if args.iter().any(|a| a == "--demo-window") {
        Some(demo_window_script())
    } else if args.iter().any(|a| a == "--demo") {
        Some(demo_script())
    } else {
        None
    };
    // In pipe mode the session IS the server: when `shutdown` ends the
    // loop, write the configured checkpoint (the reply only announced the
    // path — the write happens after the session drains, same as TCP).
    let finish = |dispatcher: &Dispatcher, control: Control| {
        if matches!(control, Control::ShutdownServer) {
            match dispatcher.shutdown_checkpoint() {
                Ok(Some(path)) => eprintln!("checkpointed to {}", path.display()),
                Ok(None) => {}
                Err(e) => eprintln!("serve: shutdown checkpoint failed: {e}"),
            }
        }
    };
    if let Some(script) = demo {
        for line in script {
            let reply = dispatcher.handle_line(&line);
            writeln!(out, "{}", reply.json).expect("stdout");
            if !matches!(reply.control, Control::Continue) {
                finish(&dispatcher, reply.control);
                break;
            }
        }
        return;
    }
    let stdin = std::io::stdin();
    let mut handled = 0usize;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        let reply = dispatcher.handle_line(&line);
        handled += 1;
        writeln!(out, "{}", reply.json).expect("stdout");
        if !matches!(reply.control, Control::Continue) {
            finish(&dispatcher, reply.control);
            break;
        }
    }
    if handled == 0 {
        // Nothing arrived on stdin: a bare `cargo run --example serve` from
        // a terminal that immediately closed, or a misdirected pipe. Say
        // how to talk to the server instead of exiting silently. Usage goes
        // to stderr so stdout stays a pure response stream.
        eprintln!("serve: no requests received on stdin");
        eprintln!(
            "usage: serve [--demo|--demo-window] [--checkpoint PATH]            pipe mode (stdin/stdout)"
        );
        eprintln!(
            "       serve --listen ADDR [--workers N] [--queue N] [--checkpoint PATH] [--metrics ADDR] [--slow-ms N] [--trace-sample N]   TCP mode"
        );
        eprintln!("  --metrics ADDR serves Prometheus text exposition over HTTP (scrape it); --slow-ms N logs requests >= N ms into the ring behind the slow_log op");
        eprintln!("  --trace-sample N keeps 1-in-N request traces (0 disables tracing; default traces every request; fetch with the trace op)");
        eprintln!("  speak line-delimited JSON, one request per line:");
        eprintln!("  {{\"op\":\"start\",\"d\":12,\"q\":2,\"shards\":4}}   then ingest/snapshot/f0/frequency/heavy_hitters/l1_sample/batch/stats/server_stats/checkpoint/shutdown/quit");
        eprintln!("  add \"window\":{{\"bucket_rows\":512}} to start for sliding-window serving ('window' field on every statistic op, plus window_stats)");
        eprintln!("  (see docs/PROTOCOL.md for the full reference, or run with --demo for a scripted session)");
    }
}
