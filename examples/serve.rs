//! `serve` — line-delimited JSON query serving over stdin/stdout.
//!
//! Each input line is one JSON request; each output line is one JSON
//! response. The engine is created by the first `start` request and serves
//! every later request against its most recent snapshot. Statistic
//! requests and responses are the canonical `pfe-query` types serialized
//! by `pfe_engine::wire` — the same definition that drives the Rust API
//! and the cache keys.
//!
//! ```text
//! {"op":"start","d":12,"q":2,"shards":4}
//! {"op":"ingest","rows":[[0,1,0,...],[1,1,0,...]]}
//! {"op":"snapshot"}
//! {"op":"f0","cols":[0,5,9]}
//! {"op":"frequency","cols":[0,5],"pattern":[1,0]}
//! {"op":"heavy_hitters","cols":[0,1,2],"phi":0.1}
//! {"op":"l1_sample","cols":[0,1],"k":8,"seed":7}
//! {"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"f0","cols":[0,1,2]}]}
//! {"op":"stats"}
//! {"op":"quit"}
//! ```
//!
//! Passing a `window` object to `start` serves the stream through a
//! sliding-window engine (`pfe-window`) instead: every statistic op then
//! accepts a `window` field (answer over the most recent that-many rows,
//! reported coverage included in the response) and `window_stats` reports
//! the bucket-ring shape:
//!
//! ```text
//! {"op":"start","d":12,"q":2,"window":{"bucket_rows":512,"tier_cap":4,"max_tiers":6}}
//! {"op":"ingest","rows":[...]}
//! {"op":"heavy_hitters","cols":[0,1,2],"phi":0.1,"window":1000}
//! {"op":"window_stats"}
//! ```
//!
//! Run `cargo run --release --example serve -- --demo` for a scripted
//! session over generated data (no stdin needed), or `--demo-window` for
//! the windowed equivalent.

use std::io::{BufRead, Write};

use subspace_exploration::engine::{wire, Engine, EngineConfig, Json, Query};
use subspace_exploration::window::{wire as window_wire, WindowConfig, WindowedEngine};

fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

/// Error payload for an unrecognized op name: the offending op string is
/// echoed in its own field so clients can match it programmatically
/// instead of parsing the message.
fn err_unknown_op(op: &str, context: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(format!("unknown {context} op '{op}'"))),
        ("op", Json::Str(op.to_string())),
    ])
}

/// Whole-stream or sliding-window serving, behind one protocol.
enum Backend {
    Plain(Engine),
    Windowed(WindowedEngine),
}

impl Backend {
    fn query_batch(
        &self,
        queries: &[Query],
    ) -> Vec<Result<subspace_exploration::engine::Answer, subspace_exploration::engine::EngineError>>
    {
        match self {
            Backend::Plain(e) => e.query_batch(queries),
            Backend::Windowed(e) => e.query_batch(queries),
        }
    }

    fn push_dense(&self, row: &[u16]) -> Result<(), subspace_exploration::engine::EngineError> {
        match self {
            Backend::Plain(e) => e.push_dense(row),
            Backend::Windowed(e) => e.push_dense(row),
        }
    }
}

struct Server {
    backend: Option<Backend>,
    q: u32,
}

impl Server {
    fn handle(&mut self, line: &str) -> Json {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return err(e.to_string()),
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return err("missing 'op'"),
        };
        match self.dispatch(&op, &req) {
            Ok(v) => v,
            Err(v) => v,
        }
    }

    fn backend(&self) -> Result<&Backend, Json> {
        self.backend
            .as_ref()
            .ok_or_else(|| err("no engine: send 'start' first"))
    }

    /// Serve one statistic request through the canonical query types.
    fn serve_query(&self, req: &Json) -> Result<Json, Json> {
        let query = wire::query_from_json(req).map_err(err)?;
        let answer = self
            .backend()?
            .query_batch(std::slice::from_ref(&query))
            .pop()
            .expect("one answer per query")
            .map_err(|e| err(e.to_string()))?;
        Ok(wire::answer_to_json(&answer, self.q))
    }

    /// Serve a whole batch through the mask-sharing planner; per-query
    /// failures — parse errors included — come back as error objects in
    /// their slots, never batch-fatal.
    fn serve_batch(&self, req: &Json) -> Result<Json, Json> {
        let items = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'queries'"))?;
        let backend = self.backend()?;
        let parsed: Vec<Result<Query, Json>> = items
            .iter()
            .map(|item| {
                wire::query_from_json(item).map_err(|e| {
                    // Echo an unrecognized statistic op by name; other
                    // parse failures keep their field-naming message.
                    match item.get("op").and_then(Json::as_str) {
                        Some(op) if e.contains("unknown statistic op") => {
                            err_unknown_op(op, "statistic")
                        }
                        _ => err(e),
                    }
                })
            })
            .collect();
        let valid: Vec<Query> = parsed.iter().filter_map(|p| p.clone().ok()).collect();
        let mut served = backend.query_batch(&valid).into_iter();
        let answers = parsed
            .into_iter()
            .map(|p| match p {
                Err(e) => e,
                Ok(_) => match served.next().expect("one answer per valid query") {
                    Ok(answer) => wire::answer_to_json(&answer, self.q),
                    Err(e) => err(e.to_string()),
                },
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("answers", Json::Arr(answers)),
        ]))
    }

    fn start(&mut self, req: &Json) -> Result<Json, Json> {
        let d = req.get("d").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        let q = req.get("q").and_then(Json::as_f64).unwrap_or(2.0) as u32;
        let mut cfg = EngineConfig::default();
        if let Some(s) = req.get("shards").and_then(Json::as_f64) {
            cfg.shards = s as usize;
        }
        if let Some(a) = req.get("alpha").and_then(Json::as_f64) {
            cfg.alpha = a;
        }
        if let Some(t) = req.get("sample_t").and_then(Json::as_f64) {
            cfg.sample_t = t as usize;
        }
        if let Some(k) = req.get("kmv_k").and_then(Json::as_f64) {
            cfg.kmv_k = k as usize;
        }
        let backend = match req.get("window") {
            None | Some(Json::Null) => {
                Backend::Plain(Engine::start(d, q, cfg).map_err(|e| err(e.to_string()))?)
            }
            Some(win) => {
                let mut wcfg = WindowConfig::default();
                if let Some(v) = win.get("bucket_rows").and_then(Json::as_f64) {
                    wcfg.bucket_rows = v as u64;
                }
                if let Some(v) = win.get("tier_cap").and_then(Json::as_f64) {
                    wcfg.tier_cap = v as usize;
                }
                if let Some(v) = win.get("max_tiers").and_then(Json::as_f64) {
                    wcfg.max_tiers = v as u32;
                }
                if let Some(v) = win.get("merged_cache").and_then(Json::as_f64) {
                    wcfg.merged_cache = v as usize;
                }
                Backend::Windowed(
                    WindowedEngine::start(d, q, cfg, wcfg).map_err(|e| err(e.to_string()))?,
                )
            }
        };
        let windowed = matches!(backend, Backend::Windowed(_));
        self.backend = Some(backend);
        self.q = q;
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("windowed", Json::Bool(windowed)),
        ]))
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> Result<Json, Json> {
        match op {
            "start" => self.start(req),
            "ingest" => {
                let rows = req
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing 'rows'"))?;
                let backend = self.backend()?;
                for row in rows {
                    let dense = wire::u16s(Some(row)).map_err(err)?;
                    backend.push_dense(&dense).map_err(|e| err(e.to_string()))?;
                }
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(rows.len() as f64)),
                ]))
            }
            "snapshot" => match self.backend()? {
                Backend::Plain(e) => {
                    let snap = e.refresh().map_err(|e| err(e.to_string()))?;
                    Ok(Json::obj([
                        ("ok", Json::Bool(true)),
                        ("epoch", Json::Num(snap.epoch() as f64)),
                        ("rows", Json::Num(snap.n() as f64)),
                    ]))
                }
                // The windowed engine serves the live ring directly —
                // there is nothing to publish; report what is retained.
                Backend::Windowed(e) => Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(e.retained_rows() as f64)),
                ])),
            },
            "f0" | "frequency" | "freq" | "heavy_hitters" | "hh" | "l1_sample" => {
                self.serve_query(req)
            }
            "batch" => self.serve_batch(req),
            // `stats` keeps the documented schema on both backends; the
            // windowed engine maps its ring counters onto it (ingested =
            // retained + evicted, "snapshot" = the live ring) and serves
            // ring-specific detail under `window_stats`.
            "stats" => match self.backend()? {
                Backend::Plain(e) => Ok(wire::stats_to_json(&e.stats())),
                Backend::Windowed(e) => {
                    let w = e.window_stats();
                    Ok(wire::stats_to_json(
                        &subspace_exploration::engine::EngineStats {
                            rows_ingested: w.retained_rows + w.evicted_rows,
                            snapshot_epoch: 0,
                            snapshot_rows: w.retained_rows,
                            snapshot_bytes: w.ring_bytes,
                            cache: w.cache,
                            shards: 1,
                            queries_served: w.queries_served,
                            queries: w.queries,
                        },
                    ))
                }
            },
            "window_stats" => match self.backend()? {
                Backend::Windowed(e) => Ok(window_wire::window_stats_to_json(&e.window_stats())),
                Backend::Plain(_) => Err(err(
                    "window_stats requires a windowed engine: start with a 'window' object",
                )),
            },
            "quit" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("bye", Json::Bool(true)),
            ])),
            other => Err(err_unknown_op(other, "request")),
        }
    }
}

fn demo_rows(d: u32, count: usize, seed: u64) -> Vec<String> {
    use subspace_exploration::hash::rng::Xoshiro256pp;
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut lines = Vec::new();
    for _ in 0..count {
        let rows: Vec<String> = (0..500)
            .map(|_| {
                let row = rng.next_u64() & ((1 << d) - 1);
                let bits: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        lines.push(format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")));
    }
    lines
}

fn demo_script() -> Vec<String> {
    let d = 12;
    let mut lines = vec![format!(r#"{{"op":"start","d":{d},"q":2,"shards":4}}"#)];
    lines.extend(demo_rows(d, 20, 1));
    lines.extend([
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"l1_sample","cols":[0,1,2],"k":4,"seed":7}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1,2,3,4,5]},{"op":"f0","cols":[0,1,2,3,4,5,6]}]}"#
            .to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

fn demo_window_script() -> Vec<String> {
    let d = 12;
    let mut lines = vec![format!(
        r#"{{"op":"start","d":{d},"q":2,"window":{{"bucket_rows":512,"tier_cap":4,"max_tiers":6}}}}"#
    )];
    lines.extend(demo_rows(d, 20, 2));
    lines.extend([
        // The last thousand rows vs the whole retained stream.
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05,"window":1000}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5],"window":2000}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1],"window":1000},{"op":"f0","cols":[0,1],"window":1001}]}"#
            .to_string(),
        r#"{"op":"window_stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

fn main() {
    let mut server = Server {
        backend: None,
        q: 2,
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let args: Vec<String> = std::env::args().collect();
    let demo = if args.iter().any(|a| a == "--demo-window") {
        Some(demo_window_script())
    } else if args.iter().any(|a| a == "--demo") {
        Some(demo_script())
    } else {
        None
    };
    if let Some(script) = demo {
        for line in script {
            let resp = server.handle(&line);
            writeln!(out, "{resp}").expect("stdout");
            if line.contains("\"quit\"") {
                break;
            }
        }
        return;
    }
    let stdin = std::io::stdin();
    let mut handled = 0usize;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        let resp = server.handle(&line);
        handled += 1;
        writeln!(out, "{resp}").expect("stdout");
        if line.contains("\"quit\"") && resp.get("bye").is_some() {
            break;
        }
    }
    if handled == 0 {
        // Nothing arrived on stdin: a bare `cargo run --example serve` from
        // a terminal that immediately closed, or a misdirected pipe. Say
        // how to talk to the server instead of exiting silently. Usage goes
        // to stderr so stdout stays a pure response stream.
        eprintln!("serve: no requests received on stdin");
        eprintln!(
            "usage: serve [--demo|--demo-window] — speak line-delimited JSON on stdin, one request per line:"
        );
        eprintln!("  {{\"op\":\"start\",\"d\":12,\"q\":2,\"shards\":4}}   then ingest/snapshot/f0/frequency/heavy_hitters/l1_sample/batch/stats/quit");
        eprintln!("  add \"window\":{{\"bucket_rows\":512}} to start for sliding-window serving ('window' field on every statistic op, plus window_stats)");
        eprintln!("  (see the \"serve\" protocol section in README.md, or run with --demo for a scripted session)");
    }
}
