//! `serve` — line-delimited JSON query serving over stdin/stdout.
//!
//! Each input line is one JSON request; each output line is one JSON
//! response. The engine is created by the first `start` request and serves
//! every later request against its most recent snapshot.
//!
//! ```text
//! {"op":"start","d":12,"q":2,"shards":4}
//! {"op":"ingest","rows":[[0,1,0,...],[1,1,0,...]]}
//! {"op":"snapshot"}
//! {"op":"f0","cols":[0,5,9]}
//! {"op":"freq","cols":[0,5],"pattern":[1,0]}
//! {"op":"hh","cols":[0,1,2],"phi":0.1}
//! {"op":"stats"}
//! {"op":"quit"}
//! ```
//!
//! Run `cargo run --release --example serve -- --demo` for a scripted
//! session over generated data (no stdin needed).

use std::io::{BufRead, Write};

use subspace_exploration::engine::{Engine, EngineConfig, Json, QueryRequest, QueryResponse};
use subspace_exploration::row::PatternCodec;

fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

fn u32s(v: Option<&Json>) -> Result<Vec<u32>, Json> {
    v.and_then(Json::as_arr)
        .ok_or_else(|| err("expected an array of numbers"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|&f| f >= 0.0 && f.fract() == 0.0 && f < u32::MAX as f64)
                .map(|f| f as u32)
                .ok_or_else(|| err("expected a nonnegative integer"))
        })
        .collect()
}

fn u16s(v: Option<&Json>) -> Result<Vec<u16>, Json> {
    u32s(v)?
        .into_iter()
        .map(|x| u16::try_from(x).map_err(|_| err(format!("symbol {x} exceeds u16 range"))))
        .collect()
}

struct Server {
    engine: Option<Engine>,
    q: u32,
}

impl Server {
    fn handle(&mut self, line: &str) -> Json {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return err(e.to_string()),
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return err("missing 'op'"),
        };
        match self.dispatch(&op, &req) {
            Ok(v) => v,
            Err(v) => v,
        }
    }

    fn engine(&self) -> Result<&Engine, Json> {
        self.engine
            .as_ref()
            .ok_or_else(|| err("no engine: send 'start' first"))
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> Result<Json, Json> {
        match op {
            "start" => {
                let d = req.get("d").and_then(Json::as_f64).unwrap_or(0.0) as u32;
                let q = req.get("q").and_then(Json::as_f64).unwrap_or(2.0) as u32;
                let mut cfg = EngineConfig::default();
                if let Some(s) = req.get("shards").and_then(Json::as_f64) {
                    cfg.shards = s as usize;
                }
                if let Some(a) = req.get("alpha").and_then(Json::as_f64) {
                    cfg.alpha = a;
                }
                if let Some(t) = req.get("sample_t").and_then(Json::as_f64) {
                    cfg.sample_t = t as usize;
                }
                if let Some(k) = req.get("kmv_k").and_then(Json::as_f64) {
                    cfg.kmv_k = k as usize;
                }
                let engine = Engine::start(d, q, cfg).map_err(|e| err(e.to_string()))?;
                self.engine = Some(engine);
                self.q = q;
                Ok(Json::obj([("ok", Json::Bool(true))]))
            }
            "ingest" => {
                let rows = req
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing 'rows'"))?;
                let engine = self.engine()?;
                for row in rows {
                    let dense = u16s(Some(row))?;
                    engine.push_dense(&dense).map_err(|e| err(e.to_string()))?;
                }
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(rows.len() as f64)),
                ]))
            }
            "snapshot" => {
                let snap = self.engine()?.refresh().map_err(|e| err(e.to_string()))?;
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Num(snap.epoch() as f64)),
                    ("rows", Json::Num(snap.n() as f64)),
                ]))
            }
            "f0" => {
                let cols = u32s(req.get("cols"))?;
                let resp = self
                    .engine()?
                    .query(&QueryRequest::F0 { cols })
                    .map_err(|e| err(e.to_string()))?;
                let QueryResponse::F0 { answer, cached } = resp else {
                    return Err(err("internal: wrong response variant"));
                };
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("estimate", Json::Num(answer.estimate)),
                    (
                        "rounded_to",
                        Json::Arr(
                            answer
                                .answered_on
                                .to_indices()
                                .into_iter()
                                .map(|i| Json::Num(i as f64))
                                .collect(),
                        ),
                    ),
                    ("sym_diff", Json::Num(answer.sym_diff as f64)),
                    ("distortion_bound", Json::Num(answer.distortion_bound)),
                    ("cached", Json::Bool(cached)),
                ]))
            }
            "freq" => {
                let cols = u32s(req.get("cols"))?;
                let pattern = u16s(req.get("pattern"))?;
                let resp = self
                    .engine()?
                    .query(&QueryRequest::Frequency { cols, pattern })
                    .map_err(|e| err(e.to_string()))?;
                let QueryResponse::Frequency { answer, cached } = resp else {
                    return Err(err("internal: wrong response variant"));
                };
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("estimate", Json::Num(answer.estimate)),
                    (
                        "upper_bound",
                        answer.upper_bound.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("additive_error", Json::Num(answer.additive_error)),
                    ("cached", Json::Bool(cached)),
                ]))
            }
            "hh" => {
                let cols = u32s(req.get("cols"))?;
                let phi = req
                    .get("phi")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| err("missing 'phi'"))?;
                let width = cols.len() as u32;
                let resp = self
                    .engine()?
                    .query(&QueryRequest::HeavyHitters { cols, phi })
                    .map_err(|e| err(e.to_string()))?;
                let QueryResponse::HeavyHitters { hitters, cached } = resp else {
                    return Err(err("internal: wrong response variant"));
                };
                let codec = PatternCodec::new(self.q, width).map_err(|e| err(format!("{e:?}")))?;
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    (
                        "hitters",
                        Json::Arr(
                            hitters
                                .iter()
                                .map(|h| {
                                    Json::obj([
                                        (
                                            "pattern",
                                            Json::Arr(
                                                codec
                                                    .decode(h.key)
                                                    .into_iter()
                                                    .map(|s| Json::Num(s as f64))
                                                    .collect(),
                                            ),
                                        ),
                                        ("estimate", Json::Num(h.estimate)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("cached", Json::Bool(cached)),
                ]))
            }
            "stats" => {
                let stats = self.engine()?.stats();
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows_ingested", Json::Num(stats.rows_ingested as f64)),
                    ("snapshot_epoch", Json::Num(stats.snapshot_epoch as f64)),
                    ("snapshot_rows", Json::Num(stats.snapshot_rows as f64)),
                    ("snapshot_bytes", Json::Num(stats.snapshot_bytes as f64)),
                    ("cache_hits", Json::Num(stats.cache.hits as f64)),
                    ("cache_misses", Json::Num(stats.cache.misses as f64)),
                    ("shards", Json::Num(stats.shards as f64)),
                ]))
            }
            "quit" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("bye", Json::Bool(true)),
            ])),
            other => Err(err(format!("unknown op '{other}'"))),
        }
    }
}

fn demo_script() -> Vec<String> {
    use subspace_exploration::hash::rng::Xoshiro256pp;
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let d = 12;
    let mut lines = vec![format!(r#"{{"op":"start","d":{d},"q":2,"shards":4}}"#)];
    for _ in 0..20 {
        let rows: Vec<String> = (0..500)
            .map(|_| {
                let row = rng.next_u64() & ((1 << d) - 1);
                let bits: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        lines.push(format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")));
    }
    lines.extend([
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"freq","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"hh","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

fn main() {
    let mut server = Server { engine: None, q: 2 };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if std::env::args().any(|a| a == "--demo") {
        for line in demo_script() {
            let resp = server.handle(&line);
            writeln!(out, "{resp}").expect("stdout");
            if line.contains("\"quit\"") {
                break;
            }
        }
        return;
    }
    let stdin = std::io::stdin();
    let mut handled = 0usize;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        let resp = server.handle(&line);
        handled += 1;
        writeln!(out, "{resp}").expect("stdout");
        if line.contains("\"quit\"") && resp.get("bye").is_some() {
            break;
        }
    }
    if handled == 0 {
        // Nothing arrived on stdin: a bare `cargo run --example serve` from
        // a terminal that immediately closed, or a misdirected pipe. Say
        // how to talk to the server instead of exiting silently. Usage goes
        // to stderr so stdout stays a pure response stream.
        eprintln!("serve: no requests received on stdin");
        eprintln!(
            "usage: serve [--demo] — speak line-delimited JSON on stdin, one request per line:"
        );
        eprintln!("  {{\"op\":\"start\",\"d\":12,\"q\":2,\"shards\":4}}   then ingest/snapshot/f0/freq/hh/stats/quit");
        eprintln!("  (see the \"serve\" protocol section in README.md, or run with --demo for a scripted session)");
    }
}
