//! `serve` — line-delimited JSON query serving over stdin/stdout.
//!
//! Each input line is one JSON request; each output line is one JSON
//! response. The engine is created by the first `start` request and serves
//! every later request against its most recent snapshot. Statistic
//! requests and responses are the canonical `pfe-query` types serialized
//! by `pfe_engine::wire` — the same definition that drives the Rust API
//! and the cache keys.
//!
//! ```text
//! {"op":"start","d":12,"q":2,"shards":4}
//! {"op":"ingest","rows":[[0,1,0,...],[1,1,0,...]]}
//! {"op":"snapshot"}
//! {"op":"f0","cols":[0,5,9]}
//! {"op":"frequency","cols":[0,5],"pattern":[1,0]}
//! {"op":"heavy_hitters","cols":[0,1,2],"phi":0.1}
//! {"op":"l1_sample","cols":[0,1],"k":8,"seed":7}
//! {"op":"batch","queries":[{"op":"f0","cols":[0,1]},{"op":"f0","cols":[0,1,2]}]}
//! {"op":"stats"}
//! {"op":"quit"}
//! ```
//!
//! Run `cargo run --release --example serve -- --demo` for a scripted
//! session over generated data (no stdin needed).

use std::io::{BufRead, Write};

use subspace_exploration::engine::{wire, Engine, EngineConfig, Json, Query};

fn err(msg: impl Into<String>) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(msg.into()))])
}

struct Server {
    engine: Option<Engine>,
    q: u32,
}

impl Server {
    fn handle(&mut self, line: &str) -> Json {
        let req = match Json::parse(line) {
            Ok(v) => v,
            Err(e) => return err(e.to_string()),
        };
        let op = match req.get("op").and_then(Json::as_str) {
            Some(op) => op.to_string(),
            None => return err("missing 'op'"),
        };
        match self.dispatch(&op, &req) {
            Ok(v) => v,
            Err(v) => v,
        }
    }

    fn engine(&self) -> Result<&Engine, Json> {
        self.engine
            .as_ref()
            .ok_or_else(|| err("no engine: send 'start' first"))
    }

    /// Serve one statistic request through the canonical query types.
    fn serve_query(&self, req: &Json) -> Result<Json, Json> {
        let query = wire::query_from_json(req).map_err(err)?;
        let answer = self
            .engine()?
            .query(&query)
            .map_err(|e| err(e.to_string()))?;
        Ok(wire::answer_to_json(&answer, self.q))
    }

    /// Serve a whole batch through the mask-sharing planner; per-query
    /// failures — parse errors included — come back as error objects in
    /// their slots, never batch-fatal.
    fn serve_batch(&self, req: &Json) -> Result<Json, Json> {
        let items = req
            .get("queries")
            .and_then(Json::as_arr)
            .ok_or_else(|| err("missing 'queries'"))?;
        let engine = self.engine()?;
        let parsed: Vec<Result<Query, String>> = items.iter().map(wire::query_from_json).collect();
        let valid: Vec<Query> = parsed.iter().filter_map(|p| p.clone().ok()).collect();
        let mut served = engine.query_batch(&valid).into_iter();
        let answers = parsed
            .into_iter()
            .map(|p| match p {
                Err(e) => err(e),
                Ok(_) => match served.next().expect("one answer per valid query") {
                    Ok(answer) => wire::answer_to_json(&answer, self.q),
                    Err(e) => err(e.to_string()),
                },
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("answers", Json::Arr(answers)),
        ]))
    }

    fn dispatch(&mut self, op: &str, req: &Json) -> Result<Json, Json> {
        match op {
            "start" => {
                let d = req.get("d").and_then(Json::as_f64).unwrap_or(0.0) as u32;
                let q = req.get("q").and_then(Json::as_f64).unwrap_or(2.0) as u32;
                let mut cfg = EngineConfig::default();
                if let Some(s) = req.get("shards").and_then(Json::as_f64) {
                    cfg.shards = s as usize;
                }
                if let Some(a) = req.get("alpha").and_then(Json::as_f64) {
                    cfg.alpha = a;
                }
                if let Some(t) = req.get("sample_t").and_then(Json::as_f64) {
                    cfg.sample_t = t as usize;
                }
                if let Some(k) = req.get("kmv_k").and_then(Json::as_f64) {
                    cfg.kmv_k = k as usize;
                }
                let engine = Engine::start(d, q, cfg).map_err(|e| err(e.to_string()))?;
                self.engine = Some(engine);
                self.q = q;
                Ok(Json::obj([("ok", Json::Bool(true))]))
            }
            "ingest" => {
                let rows = req
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| err("missing 'rows'"))?;
                let engine = self.engine()?;
                for row in rows {
                    let dense = wire::u16s(Some(row)).map_err(err)?;
                    engine.push_dense(&dense).map_err(|e| err(e.to_string()))?;
                }
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("rows", Json::Num(rows.len() as f64)),
                ]))
            }
            "snapshot" => {
                let snap = self.engine()?.refresh().map_err(|e| err(e.to_string()))?;
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("epoch", Json::Num(snap.epoch() as f64)),
                    ("rows", Json::Num(snap.n() as f64)),
                ]))
            }
            "f0" | "frequency" | "freq" | "heavy_hitters" | "hh" | "l1_sample" => {
                self.serve_query(req)
            }
            "batch" => self.serve_batch(req),
            "stats" => Ok(wire::stats_to_json(&self.engine()?.stats())),
            "quit" => Ok(Json::obj([
                ("ok", Json::Bool(true)),
                ("bye", Json::Bool(true)),
            ])),
            other => Err(err(format!("unknown op '{other}'"))),
        }
    }
}

fn demo_script() -> Vec<String> {
    use subspace_exploration::hash::rng::Xoshiro256pp;
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let d = 12;
    let mut lines = vec![format!(r#"{{"op":"start","d":{d},"q":2,"shards":4}}"#)];
    for _ in 0..20 {
        let rows: Vec<String> = (0..500)
            .map(|_| {
                let row = rng.next_u64() & ((1 << d) - 1);
                let bits: Vec<String> = (0..d).map(|i| ((row >> i) & 1).to_string()).collect();
                format!("[{}]", bits.join(","))
            })
            .collect();
        lines.push(format!(r#"{{"op":"ingest","rows":[{}]}}"#, rows.join(",")));
    }
    lines.extend([
        r#"{"op":"snapshot"}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"f0","cols":[0,1,2,3,4,5]}"#.to_string(),
        r#"{"op":"frequency","cols":[0,1],"pattern":[1,1]}"#.to_string(),
        r#"{"op":"heavy_hitters","cols":[0,1,2],"phi":0.05}"#.to_string(),
        r#"{"op":"l1_sample","cols":[0,1,2],"k":4,"seed":7}"#.to_string(),
        r#"{"op":"batch","queries":[{"op":"f0","cols":[0,1,2,3,4,5]},{"op":"f0","cols":[0,1,2,3,4,5,6]}]}"#
            .to_string(),
        r#"{"op":"stats"}"#.to_string(),
        r#"{"op":"quit"}"#.to_string(),
    ]);
    lines
}

fn main() {
    let mut server = Server { engine: None, q: 2 };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if std::env::args().any(|a| a == "--demo") {
        for line in demo_script() {
            let resp = server.handle(&line);
            writeln!(out, "{resp}").expect("stdout");
            if line.contains("\"quit\"") {
                break;
            }
        }
        return;
    }
    let stdin = std::io::stdin();
    let mut handled = 0usize;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin");
        if line.trim().is_empty() {
            continue;
        }
        let resp = server.handle(&line);
        handled += 1;
        writeln!(out, "{resp}").expect("stdout");
        if line.contains("\"quit\"") && resp.get("bye").is_some() {
            break;
        }
    }
    if handled == 0 {
        // Nothing arrived on stdin: a bare `cargo run --example serve` from
        // a terminal that immediately closed, or a misdirected pipe. Say
        // how to talk to the server instead of exiting silently. Usage goes
        // to stderr so stdout stays a pure response stream.
        eprintln!("serve: no requests received on stdin");
        eprintln!(
            "usage: serve [--demo] — speak line-delimited JSON on stdin, one request per line:"
        );
        eprintln!("  {{\"op\":\"start\",\"d\":12,\"q\":2,\"shards\":4}}   then ingest/snapshot/f0/frequency/heavy_hitters/l1_sample/batch/stats/quit");
        eprintln!("  (see the \"serve\" protocol section in README.md, or run with --demo for a scripted session)");
    }
}
