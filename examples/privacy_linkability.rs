//! Privacy & linkability (the paper's second motivating scenario, after
//! KHyperLogLog \[6\]): for *arbitrary* partial identifiers — column subsets
//! chosen after the data was summarized — estimate how re-identifying they
//! are, via projected F0.
//!
//! A subset whose projected F0 approaches `n` is a quasi-identifier: most
//! records are unique under it. The α-net summary answers these queries
//! for every subset from one pass, which is precisely what the prior work
//! (fixed, known-in-advance identifiers) could not do.
//!
//! Run: `cargo run --release --example privacy_linkability`

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetF0, NetMode};
use subspace_exploration::core::ExactSummary;
use subspace_exploration::row::ColumnSet;
use subspace_exploration::sketch::kmv::Kmv;
use subspace_exploration::sketch::traits::SpaceUsage;
use subspace_exploration::stream::gen::{correlated_columns, uniform_binary};
use subspace_exploration::stream::interleave;

fn main() {
    // A release candidate: 14 binary attributes, half of them correlated
    // copies (correlated columns leak less when combined).
    let d = 14;
    let n = 20_000;
    let diverse = uniform_binary(d, n / 2, 1);
    let correlated = correlated_columns(d, n / 2, 5, 2);
    let data = interleave(&diverse, &correlated);

    let exact = ExactSummary::build(&data);
    let net = AlphaNet::new(d, 0.2).expect("valid");
    let summary = AlphaNetF0::build(&data, net, NetMode::Full, 1 << 22, |mask| {
        Kmv::new(512, mask)
    })
    .expect("builds");
    println!(
        "one-pass summary: {} sketches, {} bytes (vs {} bytes raw)\n",
        summary.num_sketches(),
        summary.space_bytes(),
        exact.space_bytes()
    );

    // The analyst now probes identifier candidates of several widths.
    let candidates: Vec<Vec<u32>> = vec![
        vec![0],
        vec![0, 1],
        vec![0, 1, 2, 3],
        vec![0, 2, 4, 6, 8, 10],
        (0..10).collect(),
        (0..d).collect(),
    ];
    println!(
        "{:<28} {:>10} {:>12} {:>10} {:>8}",
        "partial identifier", "exact F0", "net estimate", "bound x", "risk"
    );
    for idx in &candidates {
        let cols = ColumnSet::from_indices(d, idx).expect("valid");
        let truth = exact.f0(&cols).expect("ok").value;
        let ans = summary.f0(&cols).expect("ok");
        // Linkability risk: distinct combinations per record. Conservative
        // decisions use the estimate x bound.
        let risk = (ans.estimate * ans.distortion_bound) / data.num_rows() as f64;
        let label = if risk > 0.5 {
            "HIGH"
        } else if risk > 0.05 {
            "medium"
        } else {
            "low"
        };
        println!(
            "{:<28} {:>10} {:>12.0} {:>10.0} {:>8}",
            format!("{cols}"),
            truth,
            ans.estimate,
            ans.distortion_bound,
            label
        );
        // The estimate with its bound must bracket the truth.
        assert!(
            ans.estimate * ans.distortion_bound * 1.5 >= truth
                && ans.estimate / (ans.distortion_bound * 1.5) <= truth,
            "net answer escaped its guarantee"
        );
    }

    println!(
        "\nreading: subsets whose (estimate x bound) approaches n = {} would\n\
         re-identify most records and should be generalized before release.",
        data.num_rows()
    );
}
