//! Bias & diversity auditing (the paper's first motivating scenario).
//!
//! A demographic dataset is summarized once; afterwards an auditor probes
//! *many overlapping* attribute subsets, asking (a) which value
//! combinations are over-represented (projected heavy hitters) and (b) how
//! diverse each subspace is (projected F0). The planted over-represented
//! combination must surface on the right projection and stay invisible on
//! others.
//!
//! Run: `cargo run --release --example bias_audit`

use subspace_exploration::core::{ExactSummary, UniformSampleSummary};
use subspace_exploration::row::ColumnSet;
use subspace_exploration::stream::gen::{bias_audit, bias_audit_planted};

const ATTRS: [&str; 6] = [
    "gender",
    "age_band",
    "region",
    "education",
    "income",
    "occupation",
];

fn main() {
    let n = 50_000;
    let data = bias_audit(n, 0.12, 7);
    let d = data.dimension();

    // One summary, built before the auditor picks any attribute subset.
    let sample = UniformSampleSummary::build(&data, 8192, 1);
    let exact = ExactSummary::build(&data); // ground truth for the demo

    println!("auditing {n} records with attributes {ATTRS:?}\n");

    // Probe every attribute pair and triple for over-represented combos.
    let mut flagged: Vec<(String, f64, f64)> = Vec::new();
    let subsets: Vec<Vec<u32>> = {
        let mut v = Vec::new();
        for a in 0..d {
            for b in (a + 1)..d {
                v.push(vec![a, b]);
                for c in (b + 1)..d {
                    v.push(vec![a, b, c]);
                }
            }
        }
        v
    };
    println!("probing {} overlapping attribute subsets...", subsets.len());
    for idx in &subsets {
        let cols = ColumnSet::from_indices(d, idx).expect("valid");
        let hits = sample.heavy_hitters(&cols, 0.08, 1.0, 2.0).expect("ok");
        for h in hits {
            let name = idx
                .iter()
                .map(|&i| ATTRS[i as usize])
                .collect::<Vec<_>>()
                .join("+");
            let truth = exact.frequency(&cols, h.key).expect("ok");
            flagged.push((
                format!(
                    "{name} = {:?}",
                    exact.freq_vector(&cols).expect("ok").codec().decode(h.key)
                ),
                h.estimate / n as f64,
                truth / n as f64,
            ));
        }
    }
    flagged.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("\nover-represented combinations (share >= 8%):");
    for (name, est, truth) in flagged.iter().take(10) {
        println!(
            "  {name:<55} est {:.1}%  true {:.1}%",
            est * 100.0,
            truth * 100.0
        );
    }

    // The planted combination must be among the flags.
    let planted = bias_audit_planted();
    let planted_cols: Vec<u32> = planted.iter().map(|&(c, _)| c).collect();
    let cols = ColumnSet::from_indices(d, &planted_cols).expect("valid");
    let f = exact.freq_vector(&cols).expect("ok");
    let key = f
        .codec()
        .encode_pattern(&planted.iter().map(|&(_, v)| v).collect::<Vec<_>>());
    let found = sample
        .heavy_hitters(&cols, 0.08, 1.0, 2.0)
        .expect("ok")
        .iter()
        .any(|h| h.key == key);
    assert!(found, "planted bias was not detected");
    println!(
        "\nplanted combination (gender=1, age_band=2, region=7) detected: true share {:.1}%",
        f.frequency(key) as f64 / n as f64 * 100.0
    );

    // Diversity check: F0 per single attribute (how many values observed).
    println!("\nper-attribute diversity (distinct values):");
    for a in 0..d {
        let cols = ColumnSet::from_indices(d, &[a]).expect("valid");
        let f0 = exact.f0(&cols).expect("ok").value;
        println!("  {:<12} {f0}", ATTRS[a as usize]);
    }
}
