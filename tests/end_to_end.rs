//! Cross-crate integration: the paper's running example and the full
//! observation-then-query pipeline exercised through every summary.

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetF0, AlphaNetFp, NetMode};
use subspace_exploration::core::{ExactSummary, QueryError, UniformSampleSummary};
use subspace_exploration::row::{BinaryMatrix, ColumnSet, Dataset, PatternKey};
use subspace_exploration::sketch::ams_f2::AmsF2;
use subspace_exploration::sketch::kmv::Kmv;
use subspace_exploration::sketch::traits::SpaceUsage;
use subspace_exploration::stream::gen::{uniform_binary, zipf_patterns};
use subspace_exploration::stream::shuffled;

/// The Section 2 example: A in {0,1}^{5x3}, C = first two columns.
fn paper_example() -> (Dataset, ColumnSet) {
    let rows = vec![0b011u64, 0b010, 0b100, 0b111, 0b011];
    (
        Dataset::Binary(BinaryMatrix::from_rows(3, rows)),
        ColumnSet::from_indices(3, &[0, 1]).expect("valid"),
    )
}

#[test]
fn paper_example_through_all_summaries() {
    let (data, cols) = paper_example();
    // Exact: F0 = 3, F1 = 5 (paper's stated values).
    let exact = ExactSummary::build(&data);
    assert_eq!(exact.f0(&cols).expect("ok").value, 3.0);
    assert_eq!(exact.fp(&cols, 1.0).expect("ok").value, 5.0);
    // Uniform sample with t >= n: all estimates exact.
    let sample = UniformSampleSummary::build(&data, 16, 1);
    assert_eq!(
        sample.frequency(&cols, PatternKey::new(0b11)).expect("ok"),
        3.0
    );
    // Alpha-net: d=3 is tiny; alpha=0.15 gives small=floor(0.35*3)=1 and
    // large=ceil(1.95)=2, so every size is in the net and |C| = 2 is
    // answered exactly up to KMV error (here exact, underfull).
    let net = AlphaNet::new(3, 0.15).expect("valid");
    let nf0 =
        AlphaNetF0::build(&data, net, NetMode::Full, 1 << 10, |m| Kmv::new(16, m)).expect("build");
    let ans = nf0.f0(&cols).expect("ok");
    assert_eq!(ans.sym_diff, 0, "query of size 2 should be in the net");
    assert_eq!(ans.estimate, 3.0);
}

#[test]
fn f1_invariance_across_projections() {
    // The paper: F1 = n regardless of C ("only one word of space").
    let data = zipf_patterns(12, 5000, 40, 1.1, 2);
    let exact = ExactSummary::build(&data);
    for mask in [0u64, 0b1, 0b101010101010, (1 << 12) - 1] {
        let cols = ColumnSet::from_mask(12, mask).expect("valid");
        assert_eq!(exact.fp(&cols, 1.0).expect("ok").value, 5000.0);
    }
}

#[test]
fn order_insensitivity_of_deterministic_summaries() {
    // The streaming model: summaries must not depend on row order.
    let data = uniform_binary(10, 2000, 3);
    let shuf = shuffled(&data, 99);
    let net = AlphaNet::new(10, 0.25).expect("valid");
    let a =
        AlphaNetF0::build(&data, net, NetMode::Full, 1 << 20, |m| Kmv::new(64, m)).expect("build");
    let b =
        AlphaNetF0::build(&shuf, net, NetMode::Full, 1 << 20, |m| Kmv::new(64, m)).expect("build");
    for mask in [0b11u64, 0b1111100000, 0b1010101010] {
        let cols = ColumnSet::from_mask(10, mask).expect("valid");
        assert_eq!(
            a.f0(&cols).expect("ok").estimate,
            b.f0(&cols).expect("ok").estimate,
            "KMV net answer changed under row permutation"
        );
    }
}

#[test]
fn net_fp_summary_respects_guarantee_end_to_end() {
    let d = 10;
    let data = zipf_patterns(d, 4000, 60, 1.2, 4);
    let exact = ExactSummary::build(&data);
    let net = AlphaNet::new(d, 0.25).expect("valid");
    let nfp = AlphaNetFp::build(&data, net, NetMode::Full, 1 << 20, |m| {
        AmsF2::new(5, 128, m)
    })
    .expect("build");
    assert_eq!(nfp.p(), 2.0);
    for mask in [0b1110001110u64, 0b1111111111, 0b1] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let ans = nfp.fp(&cols, 2.0).expect("ok");
        let truth = exact.fp(&cols, 2.0).expect("ok").value;
        let ratio = (ans.estimate / truth).max(truth / ans.estimate);
        assert!(
            ratio <= ans.distortion_bound * 2.0,
            "mask {mask:#b}: F2 ratio {ratio} above bound {} x sketch slack",
            ans.distortion_bound
        );
    }
    // Wrong moment order is a typed error.
    let cols = ColumnSet::from_mask(d, 0b11).expect("valid");
    assert!(matches!(
        nfp.fp(&cols, 0.5),
        Err(QueryError::UnsupportedMoment { .. })
    ));
}

#[test]
fn space_ordering_matches_theory() {
    // exact = Theta(nd) grows with n; sample and per-sketch net space do
    // not. At large n the sample must be far below exact.
    let big = zipf_patterns(16, 200_000, 64, 1.2, 5);
    let exact = ExactSummary::build(&big);
    let sample = UniformSampleSummary::build(&big, 1024, 6);
    assert!(exact.space_bytes() > 20 * sample.space_bytes());
}

#[test]
fn queries_after_observation_only() {
    // The whole point: one pass, then many different queries, all valid.
    let d = 14;
    let data = uniform_binary(d, 3000, 7);
    let exact = ExactSummary::build(&data);
    let sample = UniformSampleSummary::build(&data, 2048, 8);
    let mut checked = 0;
    for mask in [0b1u64, 0b11, 0b111000111, 0b10101010101010, (1 << 14) - 1] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let f = exact.freq_vector(&cols).expect("ok");
        let (key, count) = f.sorted_counts()[0];
        let est = sample.frequency(&cols, key).expect("ok");
        assert!(
            (est - count as f64).abs() <= 0.08 * 3000.0,
            "mask {mask:#b}: additive error too large"
        );
        checked += 1;
    }
    assert_eq!(checked, 5);
}
