//! Cross-crate property tests: invariants of the paper tying the layers
//! together, on randomized inputs.

use proptest::prelude::*;
use subspace_exploration::core::alpha_net::AlphaNet;
use subspace_exploration::core::ExactSummary;
use subspace_exploration::row::{BinaryMatrix, ColumnSet, Dataset, FrequencyVector};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 6.4, measured: rounding a query through any α-net never
    /// distorts F0 by more than 2^{|C delta C'|} on any binary data.
    #[test]
    fn f0_rounding_distortion_bound(
        rows in proptest::collection::vec(0u64..(1 << 10), 1..120),
        mask in 0u64..(1 << 10),
        alpha_pct in 5u32..45,
    ) {
        let d = 10;
        let data = Dataset::Binary(BinaryMatrix::from_rows(d, rows));
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let net = AlphaNet::new(d, alpha_pct as f64 / 100.0).expect("valid");
        let r = net.round(&cols).expect("ok");
        let f_orig = FrequencyVector::compute(&data, &cols).expect("fits");
        let f_round = FrequencyVector::compute(&data, &r.target).expect("fits");
        let (a, b) = (f_orig.f0() as f64, f_round.f0() as f64);
        let ratio = (a / b).max(b / a);
        let bound = 2f64.powi(r.sym_diff as i32);
        prop_assert!(ratio <= bound + 1e-9, "ratio {ratio} > bound {bound}");
    }

    /// F_p rounding distortion (p = 2): bound 2^{|delta| (p-1)}.
    #[test]
    fn f2_rounding_distortion_bound(
        rows in proptest::collection::vec(0u64..(1 << 8), 1..100),
        mask in 0u64..(1 << 8),
    ) {
        let d = 8;
        let data = Dataset::Binary(BinaryMatrix::from_rows(d, rows));
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let net = AlphaNet::new(d, 0.3).expect("valid");
        let r = net.round(&cols).expect("ok");
        let f_orig = FrequencyVector::compute(&data, &cols).expect("fits");
        let f_round = FrequencyVector::compute(&data, &r.target).expect("fits");
        let (a, b) = (f_orig.fp(2.0), f_round.fp(2.0));
        let ratio = (a / b).max(b / a);
        let bound = 2f64.powi(r.sym_diff as i32); // 2^{|delta| * (2-1)}
        prop_assert!(ratio <= bound + 1e-9, "ratio {ratio} > bound {bound}");
    }

    /// Monotonicity: adding columns never decreases F0 and never increases
    /// the maximum frequency (projection refines patterns).
    #[test]
    fn f0_monotone_under_column_growth(
        rows in proptest::collection::vec(0u64..(1 << 9), 1..100),
        small_mask in 0u64..(1 << 9),
        extra in 0u64..(1 << 9),
    ) {
        let d = 9;
        let data = Dataset::Binary(BinaryMatrix::from_rows(d, rows));
        let small = ColumnSet::from_mask(d, small_mask).expect("valid");
        let large = ColumnSet::from_mask(d, small_mask | extra).expect("valid");
        let f_small = FrequencyVector::compute(&data, &small).expect("fits");
        let f_large = FrequencyVector::compute(&data, &large).expect("fits");
        prop_assert!(f_large.f0() >= f_small.f0());
        let max_small = f_small.iter().map(|(_, c)| c).max().unwrap_or(0);
        let max_large = f_large.iter().map(|(_, c)| c).max().unwrap_or(0);
        prop_assert!(max_large <= max_small);
    }

    /// F_p interleaves correctly with the exact summary facade, and the
    /// norms obey ||f||_1 <= ||f||_p for p < 1 (the Corollary 5.2 step).
    #[test]
    fn norm_ordering_for_small_p(
        rows in proptest::collection::vec(0u64..(1 << 8), 2..100),
        mask in 1u64..(1 << 8),
        p_pct in 10u32..99,
    ) {
        let d = 8;
        let data = Dataset::Binary(BinaryMatrix::from_rows(d, rows));
        let exact = ExactSummary::build(&data);
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let p = p_pct as f64 / 100.0;
        let f = exact.freq_vector(&cols).expect("ok");
        let l1 = f.lp_norm(1.0);
        let lp = f.lp_norm(p);
        prop_assert!(l1 <= lp + 1e-9, "||f||_1 = {l1} > ||f||_{p} = {lp}");
    }

    /// The α-net size is always within Lemma 6.2's bound, and strictly
    /// sublinear in 2^d whenever the net actually excludes a middle size
    /// (for αd below ~1 the net degenerates to the full power set — the
    /// trivial exhaustive scheme, still correct with distortion 1).
    #[test]
    fn net_size_lemma62(d in 4u32..24, alpha_pct in 2u32..48) {
        let alpha = alpha_pct as f64 / 100.0;
        let net = AlphaNet::new(d, alpha).expect("valid");
        let size = net.size() as f64;
        prop_assert!(size.log2() <= net.size_bound_log2() + 1e-9);
        prop_assert!(net.size() <= (1u128 << d));
        if net.large_size() - net.small_size() >= 2 {
            prop_assert!(net.size() < (1u128 << d), "non-degenerate net not sublinear");
        }
    }

    /// Rounded queries always land in the net with symmetric difference at
    /// most ceil((large-small)/2) <= alpha*d + 1.
    #[test]
    fn rounding_always_lands_in_net(d in 4u32..30, alpha_pct in 2u32..48, mask in any::<u64>()) {
        let alpha = alpha_pct as f64 / 100.0;
        let net = AlphaNet::new(d, alpha).expect("valid");
        let mask = mask & ((1u64 << d) - 1);
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let r = net.round(&cols).expect("ok");
        prop_assert!(net.contains(&r.target));
        prop_assert!(r.sym_diff <= (alpha * d as f64).ceil() as u32 + 1);
        prop_assert_eq!(r.target.symmetric_difference(&cols).len(), r.sym_diff);
    }
}
