//! Integration: the full Index-reduction pipeline for every lower-bound
//! theorem, at parameters small enough for CI but large enough to separate.

use subspace_exploration::codes::random_code::RandomCodeParams;
use subspace_exploration::lowerbounds::f0::{ExactF0Oracle, F0Protocol};
use subspace_exploration::lowerbounds::fp::{ExactFpOracle, FpLargeProtocol, FpSmallProtocol};
use subspace_exploration::lowerbounds::heavy_hitters::{ExactHhOracle, HhProtocol};
use subspace_exploration::lowerbounds::index_problem::run_trials;
use subspace_exploration::lowerbounds::sampling::{SamplerLargeProtocol, SamplerSmallProtocol};

fn lemma32_params(seed: u64) -> RandomCodeParams {
    RandomCodeParams {
        d: 32,
        epsilon: 0.25,
        gamma: 0.03,
        target_size: 12,
        seed,
    }
}

#[test]
fn theorem_4_1_reduction_exact() {
    let p: F0Protocol<ExactF0Oracle> = F0Protocol::new(14, 3, 9, 24, 1);
    let r = run_trials(&p, 40, 2);
    assert_eq!(r.accuracy(), 1.0);
    assert!(r.mean_summary_bytes > 0.0);
}

#[test]
fn theorem_5_3_reduction_exact() {
    let p: HhProtocol<ExactHhOracle> = HhProtocol::new(lemma32_params(3), 2.0, 0.25);
    let r = run_trials(&p, 16, 4);
    assert_eq!(r.accuracy(), 1.0);
}

#[test]
fn theorem_5_4_small_p_reduction_exact() {
    let p: FpSmallProtocol<ExactFpOracle> = FpSmallProtocol::new(lemma32_params(5), 0.25);
    let r = run_trials(&p, 16, 6);
    assert_eq!(r.accuracy(), 1.0);
}

#[test]
fn theorem_5_4_large_p_reduction_exact() {
    let p: FpLargeProtocol<ExactFpOracle> = FpLargeProtocol::new(lemma32_params(7), 2.0);
    let r = run_trials(&p, 16, 8);
    assert_eq!(r.accuracy(), 1.0);
}

#[test]
fn theorem_5_5_sampling_reductions() {
    let large = SamplerLargeProtocol::new(lemma32_params(9), 2.0, 200, 10);
    assert_eq!(run_trials(&large, 12, 11).accuracy(), 1.0);
    let small = SamplerSmallProtocol::new(lemma32_params(12), 0.5, 200, 13);
    assert_eq!(run_trials(&small, 12, 14).accuracy(), 1.0);
}

#[test]
fn greedy_code_drives_protocols_deterministically() {
    // The deterministic greedy construction (no sampling, no seed) feeds
    // the same protocols as the Lemma 3.2 random codes; results must be
    // perfect and reproducible.
    use subspace_exploration::codes::greedy_code::GreedyCode;
    use subspace_exploration::codes::random_code::RandomCode;
    let params = lemma32_params(0);
    let greedy = GreedyCode::generate(32, 8, params.intersection_cap(), 12);
    assert!(greedy.len() >= 12, "greedy produced only {}", greedy.len());
    let code = RandomCode::from_verified_words(params, greedy.words()[..12].to_vec())
        .expect("greedy words satisfy Lemma 3.2 invariants");
    let hh: HhProtocol<ExactHhOracle> = HhProtocol::with_code(code.clone(), 2.0, 0.25);
    assert_eq!(run_trials(&hh, 12, 30).accuracy(), 1.0);
    let fp: FpSmallProtocol<ExactFpOracle> = FpSmallProtocol::with_code(code, 0.25);
    assert_eq!(run_trials(&fp, 12, 31).accuracy(), 1.0);
}

#[test]
fn reductions_accuracy_across_p_values() {
    // The dichotomy holds for several p on both sides of 1.
    for p_small in [0.2, 0.4] {
        let proto: FpSmallProtocol<ExactFpOracle> =
            FpSmallProtocol::new(lemma32_params(20), p_small);
        assert_eq!(
            run_trials(&proto, 10, 21).accuracy(),
            1.0,
            "p={p_small} failed"
        );
    }
    for p_large in [1.5, 3.0] {
        let proto: HhProtocol<ExactHhOracle> = HhProtocol::new(lemma32_params(22), p_large, 0.25);
        assert_eq!(
            run_trials(&proto, 10, 23).accuracy(),
            1.0,
            "p={p_large} failed"
        );
    }
}
