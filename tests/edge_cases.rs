//! Boundary and failure-injection tests: the representation limits
//! (d = 63, u128 pattern capacity), degenerate inputs, and the StableFp
//! plug-in driving an α-net at p = 0.5.

use subspace_exploration::core::alpha_net::{AlphaNet, AlphaNetFp, NetMode};
use subspace_exploration::core::{ExactSummary, QueryError, UniformSampleSummary};
use subspace_exploration::row::{
    BinaryMatrix, ColumnSet, Dataset, FrequencyVector, PatternCodec, PatternKey, QaryMatrix,
};
use subspace_exploration::sketch::stable_fp::StableFp;
use subspace_exploration::stream::gen::uniform_binary;

#[test]
fn d63_boundary_binary() {
    // The maximum representable dimension end to end.
    let d = 63;
    let rows = vec![u64::MAX >> 1, 0, 1, 1 << 62, (1 << 62) | 1];
    let data = Dataset::Binary(BinaryMatrix::from_rows(d, rows));
    let full = ColumnSet::full(d).expect("valid");
    let f = FrequencyVector::compute(&data, &full).expect("fits");
    assert_eq!(f.f0(), 5);
    // Projection onto the top bit alone.
    let top = ColumnSet::from_indices(d, &[62]).expect("valid");
    let f = FrequencyVector::compute(&data, &top).expect("fits");
    // Bit 62 is set in u64::MAX>>1, 1<<62, and (1<<62)|1 — three rows.
    assert_eq!(f.frequency(PatternKey::new(1)), 3);
    assert_eq!(f.frequency(PatternKey::new(0)), 2);
    // Exact summary and sampling still work at the boundary.
    let exact = ExactSummary::build(&data);
    assert_eq!(exact.f0(&full).expect("ok").value, 5.0);
    let sample = UniformSampleSummary::build(&data, 16, 1);
    assert_eq!(sample.frequency(&top, PatternKey::new(1)).expect("ok"), 3.0);
}

#[test]
fn pattern_capacity_at_the_u128_edge() {
    // Binary, |C| = 63: domain 2^63 fits comfortably.
    assert!(PatternCodec::new(2, 63).is_ok());
    // |C| = 127 is the last binary width that packs bijectively.
    assert!(PatternCodec::new(2, 127).is_ok());
    assert!(PatternCodec::new(2, 128).is_err());
    // Large alphabet: Q = 2^16 - 1 at width 7 (112 bits within budget);
    // width 8 crosses 127.
    let q = u16::MAX as u32;
    assert!(PatternCodec::new(q, 7).is_ok());
    assert!(PatternCodec::new(q, 8).is_err());
}

#[test]
fn empty_and_single_row_datasets() {
    let empty = Dataset::Binary(BinaryMatrix::new(8));
    let cols = ColumnSet::full(8).expect("valid");
    let f = FrequencyVector::compute(&empty, &cols).expect("fits");
    assert_eq!(f.f0(), 0);
    assert_eq!(f.total(), 0);
    let exact = ExactSummary::build(&empty);
    // Sampling from an empty frequency vector is a typed error, not a panic.
    assert!(matches!(
        exact.lp_sampler(&cols, 1.0, 0),
        Err(QueryError::EmptyData)
    ));

    let single = Dataset::Binary(BinaryMatrix::from_rows(8, vec![0b1010_1010]));
    let f = FrequencyVector::compute(&single, &cols).expect("fits");
    assert_eq!(f.f0(), 1);
    assert_eq!(f.fp(2.0), 1.0);
}

#[test]
fn qary_single_symbol_alphabet() {
    // Q = 1: every row is all-zeros; every projection has F0 = 1.
    let m = QaryMatrix::from_rows(1, 5, &vec![vec![0u16; 5]; 7]);
    let data = Dataset::Qary(m);
    for mask in [0u64, 0b1, 0b11111] {
        let cols = ColumnSet::from_mask(5, mask).expect("valid");
        let f = FrequencyVector::compute(&data, &cols).expect("fits");
        assert_eq!(f.f0(), 1);
        assert_eq!(f.total(), 7);
    }
}

#[test]
fn alpha_net_fp_with_stable_sketch_p_half() {
    // The 0 < p < 2, p != 1 plug-in (Indyk stable projections) inside
    // Algorithm 1, with the Lemma 6.4 distortion honored at p = 0.5.
    let d = 8;
    let data = uniform_binary(d, 400, 3);
    let exact = ExactSummary::build(&data);
    let net = AlphaNet::new(d, 0.3).expect("valid");
    let summary = AlphaNetFp::build(&data, net, NetMode::Full, 1 << 16, |m| {
        StableFp::new(41, 0.5, m)
    })
    .expect("build");
    assert_eq!(summary.p(), 0.5);
    for mask in [0b1111u64, 0b10101010, 0b11111111] {
        let cols = ColumnSet::from_mask(d, mask).expect("valid");
        let ans = summary.fp(&cols, 0.5).expect("ok");
        let truth = exact.fp(&cols, 0.5).expect("ok").value;
        let ratio = (ans.estimate / truth).max(truth / ans.estimate);
        // Distortion bound at p=0.5 is 2^{|delta|/2}; allow 2x sketch slack.
        assert!(
            ratio <= ans.distortion_bound * 2.0,
            "mask {mask:#b}: F0.5 ratio {ratio} above {} x slack",
            ans.distortion_bound
        );
    }
}

#[test]
fn zero_width_and_full_width_queries() {
    let d = 10;
    let data = uniform_binary(d, 500, 5);
    let exact = ExactSummary::build(&data);
    // Empty projection: one pattern, frequency n.
    let empty = ColumnSet::empty(d).expect("valid");
    assert_eq!(exact.f0(&empty).expect("ok").value, 1.0);
    assert_eq!(
        exact.frequency(&empty, PatternKey::new(0)).expect("ok"),
        500.0
    );
    // Full projection: F1 still n.
    let full = ColumnSet::full(d).expect("valid");
    assert_eq!(exact.fp(&full, 1.0).expect("ok").value, 500.0);
}

#[test]
fn hostile_parameters_are_typed_errors_not_panics() {
    let data = uniform_binary(8, 100, 7);
    let exact = ExactSummary::build(&data);
    let cols = ColumnSet::full(8).expect("valid");
    for bad_p in [f64::NAN, f64::INFINITY, -1.0] {
        assert!(exact.fp(&cols, bad_p).is_err(), "p={bad_p} not rejected");
    }
    for bad_phi in [0.0, -0.5, 1.5, f64::NAN] {
        assert!(
            exact.heavy_hitters(&cols, bad_phi, 1.0).is_err(),
            "phi={bad_phi} not rejected"
        );
    }
    let sample = UniformSampleSummary::build(&data, 32, 8);
    assert!(sample.heavy_hitters(&cols, 0.1, 1.0, 1.0).is_err()); // c must be > 1
    assert!(sample.heavy_hitters(&cols, 0.1, 1.0, f64::NAN).is_err());
}
